"""Setuptools shim.

Kept alongside ``pyproject.toml`` so ``pip install -e .`` works on
environments that lack the ``wheel`` package (legacy editable installs via
``--no-use-pep517`` need a ``setup.py``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
