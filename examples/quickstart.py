"""Quickstart: predict a GPU's ray-tracing performance with Zatel.

Runs the full seven-step pipeline on the PARK scene (the paper's hardest
workload) for the Mobile SoC configuration, then compares the prediction
against a ground-truth cycle-level simulation of every pixel.

Usage::

    python examples/quickstart.py [--scene PARK] [--size 96]
"""

from __future__ import annotations

import argparse

from repro import (
    METRICS,
    MOBILE_SOC,
    CycleSimulator,
    RenderSettings,
    Zatel,
    compile_kernel,
    make_scene,
    trace_frame,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="PARK", help="library scene name")
    parser.add_argument("--size", type=int, default=96, help="plane side length")
    args = parser.parse_args()

    # 1. Build the workload: a scene and a functional trace of its frame.
    scene = make_scene(args.scene)
    print(scene.describe())
    settings = RenderSettings(width=args.size, height=args.size)
    print(f"tracing {settings.pixel_count()} pixels (functional mode)...")
    frame = trace_frame(scene, settings)

    # 2. Ground truth: the full cycle-level simulation (what Zatel avoids).
    print("running the full cycle-level simulation (ground truth)...")
    warps = compile_kernel(frame, settings.all_pixels(), scene.addresses)
    full = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)

    # 3. Zatel's prediction from downscaled, pixel-sampled instances.
    print("running Zatel (downscale + representative pixels)...\n")
    result = Zatel(MOBILE_SOC).predict(scene, frame)

    print(
        f"Zatel on {scene.name} / {MOBILE_SOC.name}: "
        f"K={result.downscale_factor} groups, "
        f"mean traced fraction {result.mean_fraction():.0%}, "
        f"simulation speedup {result.speedup_vs(full):.1f}x "
        "(groups in parallel)\n"
    )
    from repro.harness import RATE_METRICS, metric_errors

    errors = metric_errors(result.metrics, full)
    header = f"{'metric':<16} {'full sim':>12} {'Zatel':>12} {'error':>9}"
    print(header)
    print("-" * len(header))
    for name in METRICS:
        unit = "pp" if name in RATE_METRICS else "%"
        print(
            f"{name:<16} {full.metric(name):>12.3f} "
            f"{result.metrics[name]:>12.3f} {errors[name]:>7.1f}{unit}"
        )


if __name__ == "__main__":
    main()
