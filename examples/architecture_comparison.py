"""Design-space exploration: compare GPU architectures with Zatel.

The paper's motivating use case (Fig. 11): an architect wants to know how
a new configuration performs on a ray-tracing workload *without* waiting
for full cycle-level simulations.  This example evaluates three designs —
the Mobile SoC, the RTX 2060, and a hypothetical "RT-heavy" variant with
doubled RT-unit warp capacity — on the PARK scene, using Zatel for every
design point and validating two of them against full simulations.

Usage::

    python examples/architecture_comparison.py [--size 96]
"""

from __future__ import annotations

import argparse
import dataclasses

from repro import (
    METRICS,
    MOBILE_SOC,
    RTX_2060,
    CycleSimulator,
    RenderSettings,
    Zatel,
    compile_kernel,
    make_scene,
    trace_frame,
)

#: A design-space candidate: Mobile SoC with beefier RT units.  Zatel needs
#: no changes to evaluate it — the simulator captures the difference.
RT_HEAVY = dataclasses.replace(
    MOBILE_SOC, name="MobileSoC-RTx2", rt_max_warps=8, rt_mshr_size=128
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=96)
    args = parser.parse_args()

    scene = make_scene("PARK")
    settings = RenderSettings(width=args.size, height=args.size)
    print(f"tracing {scene.name} at {args.size}x{args.size}...")
    frame = trace_frame(scene, settings)

    designs = (MOBILE_SOC, RT_HEAVY, RTX_2060)
    predictions = {}
    for gpu in designs:
        print(f"Zatel predicting {gpu.name}...")
        predictions[gpu.name] = Zatel(gpu).predict(scene, frame)

    # Validate the two Table II designs against ground truth.
    print("validating against full simulations (Mobile SoC, RTX 2060)...\n")
    warps = compile_kernel(frame, settings.all_pixels(), scene.addresses)
    truth = {
        gpu.name: CycleSimulator(gpu, scene.addresses).run(warps)
        for gpu in (MOBILE_SOC, RTX_2060)
    }

    baseline = predictions[MOBILE_SOC.name].metrics
    print(f"{'design':<16} {'pred cycles':>12} {'vs Mobile':>10} {'full-sim cycles':>16}")
    print("-" * 58)
    for gpu in designs:
        predicted = predictions[gpu.name].metrics
        actual = truth[gpu.name].cycles if gpu.name in truth else None
        print(
            f"{gpu.name:<16} {predicted['cycles']:>12.0f} "
            f"{baseline['cycles'] / predicted['cycles']:>9.2f}x "
            f"{actual if actual is not None else '(not simulated)':>16}"
        )

    print("\nper-metric predictions:")
    header = f"{'metric':<16}" + "".join(f"{g.name:>16}" for g in designs)
    print(header)
    print("-" * len(header))
    for name in METRICS:
        row = f"{name:<16}"
        for gpu in designs:
            row += f"{predictions[gpu.name].metrics[name]:>16.3f}"
        print(row)

    speedup = predictions[MOBILE_SOC.name].speedup_vs(truth[MOBILE_SOC.name])
    print(
        f"\neach Zatel design point cost ~{1 / speedup:.0%} of a full "
        f"simulation ({speedup:.1f}x faster), so the RT-heavy variant was "
        "evaluated without any full run at all."
    )


if __name__ == "__main__":
    main()
