"""Heatmap gallery: renders, heatmaps, quantization and division overlays.

Reproduces the paper's visualization figures as PPM images:

* Fig. 4 — a raw execution-time heatmap and its K-Means quantization;
* Fig. 7 — the pixels of fine-grained group 0 at two chunk heights;
* Fig. 9 — per-scene heatmaps across the library;
* Fig. 12 — SHIP / WKND / BUNNY under one shared temperature scale.

Writes ``examples/out/*.ppm`` (viewable with any image tool; PPM needs no
third-party encoder).

Usage::

    python examples/heatmap_visualization.py [--size 96]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import Heatmap, RenderSettings, make_scene, quantize_heatmap, trace_frame
from repro.core import fine_partition
from repro.scene import TUNING_SCENES


def write_ppm(path: Path, image: np.ndarray) -> None:
    """Write an (H, W, 3) float image in [0, 1] as a binary PPM."""
    data = (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)
    height, width, _ = data.shape
    with path.open("wb") as f:
        f.write(f"P6 {width} {height} 255\n".encode())
        f.write(data.tobytes())


def group_overlay(heatmap: Heatmap, k: int, chunk_height: int) -> np.ndarray:
    """Fig. 7: show only group 0's pixels of a fine-grained division."""
    groups = fine_partition(
        heatmap.width, heatmap.height, k, chunk_width=32, chunk_height=chunk_height
    )
    image = np.zeros((heatmap.height, heatmap.width, 3))
    colors = heatmap.to_colors()
    for px, py in groups[0]:
        image[py, px] = colors[py, px]
    return image


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=96)
    args = parser.parse_args()
    out = Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    settings = RenderSettings(width=args.size, height=args.size)

    # Fig. 9: all scenes' heatmaps (self-normalized, as the paper shows).
    frames = {}
    for name in ("SPNZA", "BUNNY", "CHSNT", "SPRNG", "PARK", "BATH", "SHIP", "WKND"):
        scene = make_scene(name)
        print(f"tracing {name}...")
        frame = trace_frame(scene, settings)
        frames[name] = frame
        heatmap = Heatmap.from_frame(frame)
        write_ppm(out / f"fig9_heatmap_{name}.ppm", heatmap.to_colors())

    # Fig. 4: PARK raw heatmap vs its quantized version.
    park = Heatmap.from_frame(frames["PARK"])
    write_ppm(out / "fig4_raw.ppm", park.to_colors())
    quantized = quantize_heatmap(park, num_colors=6, seed=0)
    write_ppm(out / "fig4_quantized.ppm", quantized.to_colors())
    print(
        "fig4: quantized PARK to "
        f"{quantized.num_colors} colors; coolness values "
        f"{np.round(quantized.coolness, 2).tolist()}"
    )

    # Fig. 7: fine-grained group 0 at chunk heights 2 and 8.
    write_ppm(out / "fig7_group0_h2.ppm", group_overlay(park, k=4, chunk_height=2))
    write_ppm(out / "fig7_group0_h8.ppm", group_overlay(park, k=4, chunk_height=8))

    # Fig. 12: the tuning triplet under one shared scale ("generated
    # relative to each other by using the same scaling value").
    shared_peak = max(
        float(np.percentile(frames[name].cost_map(), 99.5))
        for name in TUNING_SCENES
    )
    for name in TUNING_SCENES:
        costs = frames[name].cost_map()
        shared = Heatmap(
            temperatures=np.clip(costs / shared_peak, 0.0, 1.0), raw_costs=costs
        )
        write_ppm(out / f"fig12_shared_{name}.ppm", shared.to_colors())
        print(
            f"fig12 {name}: shared-scale mean temperature "
            f"{shared.mean_temperature():.3f}"
        )

    print(f"\nwrote {len(list(out.glob('*.ppm')))} images to {out}")


if __name__ == "__main__":
    main()
