"""Bring-your-own-workload: build a custom scene and predict it with Zatel.

Shows the full public surface a downstream user touches: procedural
meshes, materials, lights, camera, scene assembly, functional tracing,
heatmap inspection, and the Zatel prediction — plus how to pin the
methodology's knobs (division method, distribution, traced-fraction cap).

Usage::

    python examples/custom_scene.py [--size 96]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    MOBILE_SOC,
    Heatmap,
    RenderSettings,
    Scene,
    Zatel,
    ZatelConfig,
    trace_frame,
)
from repro.scene import Camera, MaterialTable, PointLight, diffuse, mirror
from repro.scene.meshes import box, fractal_tree, ground_plane, icosphere
from repro.scene.vecmath import vec3


def build_museum() -> Scene:
    """A small "museum hall": exhibits on pedestals under a point light."""
    materials = MaterialTable()
    marble = materials.add(diffuse(0.85, 0.83, 0.8, shade_cost=14))
    bronze = materials.add(diffuse(0.6, 0.4, 0.2, shade_cost=18))
    glass = materials.add(mirror(0.85))
    plant = materials.add(diffuse(0.25, 0.5, 0.2, shade_cost=20))

    tris = ground_plane(8.0, material_id=marble, divisions=8)
    # Three exhibits: a bronze sphere, a glass sphere, a bonsai.
    for x, material, radius in ((-3.0, bronze, 0.9), (0.0, glass, 1.0)):
        tris += box(vec3(x, 0.4, 0.0), vec3(0.8, 0.4, 0.8), material_id=marble)
        tris += icosphere(
            vec3(x, 1.6, 0.0), radius, subdivisions=3, material_id=material
        )
    tris += box(vec3(3.0, 0.4, 0.0), vec3(0.8, 0.4, 0.8), material_id=marble)
    tris += fractal_tree(
        vec3(3.0, 0.8, 0.0), height=0.9, depth=3,
        rng=np.random.default_rng(4), trunk_material=bronze,
        leaf_material=plant,
    )

    camera = Camera(
        position=vec3(0.0, 2.2, 6.5), look_at=vec3(0.0, 1.3, 0.0),
        fov_degrees=58.0,
    )
    lights = [PointLight(position=vec3(0.0, 6.0, 3.0))]
    return Scene(tris, camera, lights, materials, name="MUSEUM", max_bounces=3)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=96)
    args = parser.parse_args()

    scene = build_museum()
    print(scene.describe())

    settings = RenderSettings(width=args.size, height=args.size)
    print("profiling (functional trace)...")
    frame = trace_frame(scene, settings)

    heatmap = Heatmap.from_frame(frame)
    print(
        f"heatmap: mean temperature {heatmap.mean_temperature():.2f} "
        f"(0 = everything cheap, 1 = everything at the hot ceiling)"
    )

    # Pin the methodology knobs explicitly (these are the paper's picks,
    # but a user studying RT-unit metrics would switch to 'exptmp').
    config = ZatelConfig(division="fine", distribution="uniform")
    result = Zatel(MOBILE_SOC, config).predict(scene, frame)

    print(
        f"\nZatel on {scene.name}: K={result.downscale_factor}, "
        f"traced {result.mean_fraction():.0%} of pixels per group"
    )
    for name, value in result.metrics.items():
        print(f"  {name:16s} {value:12.3f}")
    print(
        "\nper-group audit (fraction traced, simulated pixels, cycles):"
    )
    for group in result.groups:
        print(
            f"  group {group.index}: {group.fraction:.0%} of "
            f"{group.pixel_count} px -> {group.stats.cycles:.0f} cycles"
        )


if __name__ == "__main__":
    main()
