"""Accuracy/speedup trade-off study for representative-pixel sampling.

Sweeps the traced-pixel percentage on one scene (Section IV-D style, Figs.
13/15 in miniature) and prints the error and speedup at each point plus
the fitted power-law speedup curve (equation 4), helping a user pick the
Zatel operating point for their study.

Usage::

    python examples/sampling_study.py [--scene BUNNY] [--size 96]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    MOBILE_SOC,
    CycleSimulator,
    RenderSettings,
    SamplingPredictor,
    compile_kernel,
    make_scene,
    trace_frame,
)
from repro.core import fit_power_law


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="BUNNY")
    parser.add_argument("--size", type=int, default=96)
    args = parser.parse_args()

    scene = make_scene(args.scene)
    settings = RenderSettings(width=args.size, height=args.size)
    print(f"tracing {scene.name} at {args.size}x{args.size}...")
    frame = trace_frame(scene, settings)

    print("full simulation for ground truth...")
    warps = compile_kernel(frame, settings.all_pixels(), scene.addresses)
    full = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)

    predictor = SamplingPredictor(MOBILE_SOC)
    percentages = list(range(10, 100, 10))
    speedups = []
    print(f"\n{'traced':>7} {'cycles err':>11} {'IPC err':>8} {'speedup':>8}")
    print("-" * 38)
    for perc in percentages:
        prediction = predictor.predict(scene, frame, perc / 100.0)
        cycles_err = (
            abs(prediction.metrics["cycles"] - full.cycles) / full.cycles * 100
        )
        ipc_err = abs(prediction.metrics["ipc"] - full.ipc) / full.ipc * 100
        speedup = prediction.speedup_vs(full)
        speedups.append(speedup)
        print(f"{perc:>6}% {cycles_err:>10.1f}% {ipc_err:>7.1f}% {speedup:>7.1f}x")

    a, b = fit_power_law(np.array(percentages, float), np.array(speedups))
    print(
        f"\nfitted speedup(perc) = {a:.1f} * perc^{b:.2f}"
        "  (paper eq. 4: 181 * perc^-1.15)"
    )
    print(
        "pick the lowest percentage whose error is tolerable for your "
        "study; the paper's equation (1) automates this per group from "
        "the heatmap."
    )


if __name__ == "__main__":
    main()
