"""Observability-dashboard smoke test, run by CI's dashboard-smoke job.

Boots the real service (via :mod:`smoke_common`) as a fleet coordinator
with two workers, drives the golden SPRNG 24x24 predict through it, and
checks the dashboard contract from the outside, over plain HTTP:

1. ``GET /dashboard`` returns 200 with the expected page marker — the
   stdlib-served HTML actually shipped;
2. after a real predict, ``GET /api/timeline`` has non-empty lanes whose
   windows are monotonically ordered by start cycle, and the paginated
   range echo is coherent;
3. ``GET /api/fleet`` shows both fleet workers live with active lease
   accounting fields present;
4. ``GET /api/metrics`` is the structured view (nested counter groups,
   not a flat dump) and counts the dashboard hits this very smoke made;
5. a malformed time-range query (``start`` >= ``end``) is refused
   with 400.

Run locally with::

    PYTHONPATH=src python .github/scripts/dashboard_smoke.py
"""

from __future__ import annotations

import sys
import tempfile

from smoke_common import (
    GOLDEN_REQUEST,
    SmokeServer,
    assert_golden_metrics,
    http_get,
    http_get_raw,
    http_post,
)

from repro.service.dashboard import DASHBOARD_MARKER  # noqa: E402


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir, SmokeServer(
        "dashboard-smoke",
        ["--cache-dir", cache_dir, "--workers", "1",
         "--fleet", "2", "--min-workers", "2"],
    ) as server:
        base = server.base

        # 1. the dashboard page is served with its marker
        status, page = http_get_raw(base, "/dashboard")
        assert status == 200, status
        assert DASHBOARD_MARKER.encode() in page, (
            f"dashboard page missing marker {DASHBOARD_MARKER!r}"
        )

        # ... and the timeline API 404s while no prediction has run yet
        status, empty = http_get(base, "/api/timeline")
        assert status == 404, (status, empty)

        # 2. a real predict (instrumented by default) populates the
        # timeline with monotonically-ordered windows per lane
        status, served = http_post(base, "/predict", GOLDEN_REQUEST)
        assert status == 200, (status, served)
        assert_golden_metrics(served["metrics"])

        status, timeline = http_get(base, "/api/timeline")
        assert status == 200, (status, timeline)
        lanes = timeline["lanes"]
        assert lanes, "timeline has no lanes after a real predict"
        assert timeline["total_cycles"] > 0, timeline["total_cycles"]
        for lane in lanes:
            assert lane["windows"], f"lane {lane['component']} has no windows"
            starts = [start for start, _ in lane["windows"]]
            assert starts == sorted(starts), (
                f"lane {lane['component']}.{lane['kind']} windows not "
                f"monotonic: {starts}"
            )
            for start, end in lane["windows"]:
                assert 0.0 <= start < end, (start, end)
        assert timeline["range"]["start"] == 0.0, timeline["range"]
        assert timeline["window_count"] == sum(
            len(lane["windows"]) for lane in lanes
        ), timeline

        # 3. the fleet view shows both workers live
        status, fleet = http_get(base, "/api/fleet")
        assert status == 200, (status, fleet)
        assert fleet["live_workers"] == 2, fleet
        workers = fleet["workers"]
        assert len(workers) == 2, workers
        assert all(w["state"] == "live" for w in workers), workers
        assert "counters" in fleet and "leases" in fleet, fleet

        # 4. /api/metrics is structured and self-observing
        status, metrics = http_get(base, "/api/metrics")
        assert status == 200, (status, metrics)
        assert metrics["mode"] == "service", metrics["mode"]
        service_group = metrics["counters"]["service"]
        assert service_group["dashboard_hits"] >= 1, service_group
        assert service_group["api_hits"] >= 3, service_group
        assert service_group["predicts"] >= 1, service_group

        # 5. malformed time ranges are refused loudly
        status, error = http_get(base, "/api/timeline?start=50&end=10")
        assert status == 400, (status, error)
        assert "error" in error, error
        status, error = http_get(base, "/api/timeline?start=abc")
        assert status == 400, (status, error)

        print(
            "dashboard smoke OK: page served with marker, "
            f"{len(lanes)} timeline lanes over "
            f"{timeline['total_cycles']:.0f} cycles, 2 fleet workers "
            "live, structured metrics counting, 400 on bad ranges"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
