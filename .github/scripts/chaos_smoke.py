"""Fleet chaos smoke test, run by CI's chaos-smoke job.

Boots the real service (via :mod:`smoke_common`) as a coordinator with
two supervised worker processes and a seeded chaos schedule, then checks
the failover contract from the outside, over plain HTTP:

1. ``zatel serve --fleet 2 --chaos ...`` comes up with two live fleet
   workers (``--min-workers 2`` makes ``/readyz`` gate on exactly that,
   so entering the server context already proves it) visible on
   ``/healthz``;
2. a ``POST /predict`` survives a worker being chaos-killed mid-run
   (the lease re-dispatches; the supervisor respawns the process) and
   a permanently-corrupted group (result validation rejects it every
   dispatch until the budget exhausts): the response is
   degraded-with-quorum — exactly one failed group in the audit, plane
   coverage renormalized over the survivors — and the coordinator
   never goes down;
3. ``GET /metrics`` shows the failover happened: re-dispatches, a lost
   worker, and rejected corrupt results;
4. the fleet *heals*: the supervisor respawns the killed worker and
   ``/readyz`` (quorum-gated at 2) recovers within 30 seconds.

Run locally with::

    PYTHONPATH=src python .github/scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time

from smoke_common import GOLDEN_REQUEST, SmokeServer, http_get, http_post

# Group 2's first dispatch kills its worker (crash failover: the lease
# re-dispatches, the supervisor respawns the process, the result is
# unchanged).  Group 0's result is tampered on *every* dispatch, so its
# lease exhausts the dispatch budget and the combine degrades with
# quorum — the PR-1 semantics, now across process boundaries.
CHAOS = json.dumps(
    {
        "hang_seconds": 3600.0,
        "slow_seconds": 0.25,
        "specs": [
            {"kind": "kill", "group": 2, "attempts": 1, "worker": None},
            {"kind": "corrupt", "group": 0, "attempts": -1, "worker": None},
        ],
    },
    sort_keys=True,
)


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir, SmokeServer(
        "chaos-smoke",
        ["--cache-dir", cache_dir, "--workers", "1",
         "--fleet", "2", "--min-workers", "2", "--chaos", CHAOS],
    ) as server:
        base = server.base

        # 1. coordinator up, with both fleet workers connected (readyz
        # gated on --min-workers 2, so this is a re-check, not a wait)
        status, health = http_get(base, "/healthz")
        assert status == 200 and health["status"] == "ok", health
        assert health["fleet"]["live_workers"] >= 2, health["fleet"]

        # 2. the chaos-riddled predict degrades with quorum, service up
        status, served = http_post(base, "/predict", GOLDEN_REQUEST)
        assert status == 200, (status, served)
        assert served["degraded"] is True, served
        assert 0.0 < served["coverage"] < 1.0, served["coverage"]
        failed_groups = [f["group"] for f in served["failures"]]
        assert failed_groups == [0], served["failures"]
        assert served["failures"][0]["error"] == "ResultValidationError", (
            served["failures"]
        )

        # 3. /metrics shows the failover actually happened
        status, metrics = http_get(base, "/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["fleet.redispatches"] >= 1, counters
        assert counters["fleet.workers_lost"] >= 1, counters
        assert counters["fleet.results_corrupt"] >= 1, counters

        # 4. the coordinator survived the chaos and the fleet heals: the
        # supervisor respawns the killed worker, so /readyz (gated on
        # the 2-worker quorum) comes back within the recovery window
        assert server.process.poll() is None, "serve process died under chaos"
        status, health = http_get(base, "/healthz")
        assert status == 200 and health["status"] == "ok", health
        deadline = time.monotonic() + 30.0
        while True:
            status, ready = http_get(base, "/readyz")
            if status == 200:
                break
            assert time.monotonic() < deadline, (
                f"fleet never recovered quorum after chaos: {ready}"
            )
            time.sleep(0.25)

        print(
            "chaos smoke OK: degraded-with-quorum served "
            f"(coverage {served['coverage']:.3f}, failed groups "
            f"{failed_groups}), redispatches "
            f"{counters['fleet.redispatches']:.0f}, workers lost "
            f"{counters['fleet.workers_lost']:.0f}, corrupt results "
            f"rejected {counters['fleet.results_corrupt']:.0f}"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
