"""Fleet chaos smoke test, run by CI's chaos-smoke job.

Boots the real service as a coordinator with two supervised worker
processes and a seeded chaos schedule, then checks the failover
contract from the outside, over plain HTTP:

1. ``zatel serve --fleet 2 --chaos ...`` comes up with two live fleet
   workers visible on ``/healthz``;
2. a ``POST /predict`` survives a worker being chaos-killed mid-run
   (the lease re-dispatches; the supervisor respawns the process) and
   a permanently-corrupted group (result validation rejects it every
   dispatch until the budget exhausts): the response is
   degraded-with-quorum — exactly one failed group in the audit, plane
   coverage renormalized over the survivors — and the coordinator
   never goes down;
3. ``GET /metrics`` shows the failover happened: re-dispatches, a lost
   worker, and rejected corrupt results;
4. the service is still alive and ready afterwards.

Run locally with::

    PYTHONPATH=src python .github/scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

REQUEST = {
    "scene": "SPRNG", "size": 24, "spp": 1, "seed": 0,
    "backend": "packet", "gpu": "mobile",
}

# Group 2's first dispatch kills its worker (crash failover: the lease
# re-dispatches, the supervisor respawns the process, the result is
# unchanged).  Group 0's result is tampered on *every* dispatch, so its
# lease exhausts the dispatch budget and the combine degrades with
# quorum — the PR-1 semantics, now across process boundaries.
CHAOS = json.dumps(
    {
        "hang_seconds": 3600.0,
        "slow_seconds": 0.25,
        "specs": [
            {"kind": "kill", "group": 2, "attempts": 1, "worker": None},
            {"kind": "corrupt", "group": 0, "attempts": -1, "worker": None},
        ],
    },
    sort_keys=True,
)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _post(base: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base}/predict", data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> int:
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    with tempfile.TemporaryDirectory() as cache_dir:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--cache-dir", cache_dir, "--workers", "1",
             "--fleet", "2", "--chaos", CHAOS],
            env=env, cwd=REPO,
        )
        try:
            # 1. coordinator up, with both fleet workers connected
            deadline = time.monotonic() + 60
            health: dict = {}
            while time.monotonic() < deadline:
                if server.poll() is not None:
                    raise SystemExit("serve process died during startup")
                try:
                    _, health = _get(base, "/healthz")
                    if health.get("fleet", {}).get("live_workers", 0) >= 2:
                        break
                except (urllib.error.URLError, ConnectionError):
                    pass
                time.sleep(0.2)
            else:
                raise SystemExit(
                    f"fleet did not reach 2 live workers within 60s: {health}"
                )
            assert health["status"] == "ok", health

            # 2. the chaos-riddled predict degrades with quorum, service up
            status, served = _post(base, REQUEST)
            assert status == 200, (status, served)
            assert served["degraded"] is True, served
            assert 0.0 < served["coverage"] < 1.0, served["coverage"]
            failed_groups = [f["group"] for f in served["failures"]]
            assert failed_groups == [0], served["failures"]
            assert served["failures"][0]["error"] == "ResultValidationError", (
                served["failures"]
            )

            # 3. /metrics shows the failover actually happened
            status, metrics = _get(base, "/metrics")
            assert status == 200
            counters = metrics["counters"]
            assert counters["fleet.redispatches"] >= 1, counters
            assert counters["fleet.workers_lost"] >= 1, counters
            assert counters["fleet.results_corrupt"] >= 1, counters

            # 4. the coordinator survived the chaos and still takes traffic
            assert server.poll() is None, "serve process died under chaos"
            status, health = _get(base, "/healthz")
            assert status == 200 and health["status"] == "ok", health
            status, ready = _get(base, "/readyz")
            assert status == 200, (status, ready)

            print(
                "chaos smoke OK: degraded-with-quorum served "
                f"(coverage {served['coverage']:.3f}, failed groups "
                f"{failed_groups}), redispatches "
                f"{counters['fleet.redispatches']:.0f}, workers lost "
                f"{counters['fleet.workers_lost']:.0f}, corrupt results "
                f"rejected {counters['fleet.results_corrupt']:.0f}"
            )
            return 0
        finally:
            server.terminate()
            try:
                server.wait(timeout=60)
            except subprocess.TimeoutExpired:
                server.kill()


if __name__ == "__main__":
    sys.exit(main())
