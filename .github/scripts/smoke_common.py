"""Shared plumbing for the CI smoke scripts.

Every smoke job boots the real ``zatel serve`` as a subprocess and talks
to it over plain HTTP; this module is the one copy of that plumbing
(the five scripts used to carry near-identical port-pick / boot-loop /
teardown blocks each):

* :class:`SmokeServer` — boot ``zatel serve`` with ``--port 0``, read
  the kernel-chosen port from the ``ZATEL_SERVE_READY`` startup line
  (no free-port race), wait for ``/readyz``, tee all server output to
  ``smoke-logs/<name>.log`` (uploaded as a CI artifact on failure), and
  terminate/kill on exit;
* :func:`http_get` / :func:`http_post` / :func:`http_get_raw` — JSON
  and raw HTTP helpers that surface error bodies instead of raising;
* :func:`load_golden` / :data:`GOLDEN_REQUEST` /
  :func:`assert_golden_metrics` — the golden-file compare the byte
  identity gates share.

Run any smoke locally with ``PYTHONPATH=src python .github/scripts/<x>.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.service.protocol import parse_ready_line  # noqa: E402

GOLDEN = REPO / "tests" / "data" / "golden_predict.json"

#: The golden workload every byte-identity gate runs (matches the
#: ``meta`` block pinned in golden_predict.json; verified at load time).
GOLDEN_REQUEST = {
    "scene": "SPRNG", "size": 24, "spp": 1, "seed": 0,
    "backend": "packet", "gpu": "mobile",
}

#: Where SmokeServer tees server output; CI uploads this directory as an
#: artifact when a smoke job fails.
LOG_DIR = REPO / "smoke-logs"


def load_golden() -> dict:
    """The golden prediction file, with its meta cross-checked against
    :data:`GOLDEN_REQUEST` so the two cannot drift apart silently."""
    golden = json.loads(GOLDEN.read_text())
    meta = golden["meta"]
    pinned = (meta["size"], meta["spp"], meta["seed"], meta["backend"])
    requested = (
        GOLDEN_REQUEST["size"], GOLDEN_REQUEST["spp"],
        GOLDEN_REQUEST["seed"], GOLDEN_REQUEST["backend"],
    )
    assert pinned == requested, (
        f"GOLDEN_REQUEST drifted from golden meta: {meta}"
    )
    return golden


def assert_golden_metrics(served: dict, scene: str = "SPRNG") -> None:
    """Served metrics must equal the pinned golden metrics exactly."""
    expected = load_golden()["metrics"][scene]
    assert served == expected, (
        "served metrics drifted from tests/data/golden_predict.json:\n"
        f"served: {json.dumps(served, sort_keys=True)}\n"
        f"golden: {json.dumps(expected, sort_keys=True)}"
    )


def http_post(
    base: str, path: str, body: dict, timeout: float = 300.0
) -> tuple[int, dict]:
    """POST JSON; returns (status, parsed body) even for error statuses."""
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_get(base: str, path: str, timeout: float = 30.0) -> tuple[int, dict]:
    """GET JSON; returns (status, parsed body) even for error statuses."""
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_get_raw(base: str, path: str, timeout: float = 30.0) -> tuple[int, bytes]:
    """GET anything; returns (status, raw bytes) even for error statuses."""
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class SmokeServer:
    """Boot/teardown of a ``zatel serve`` subprocess for one smoke run.

    ::

        with SmokeServer("service", ["--workers", "1",
                                     "--cache-dir", cache_dir]) as server:
            status, body = http_post(server.base, "/predict", request)

    The server binds ``--port 0``; the chosen port is read from the
    ``ZATEL_SERVE_READY`` line the service prints once its socket is
    bound — no pre-picked free port, so parallel CI jobs cannot race
    each other for one.  All output is teed to ``smoke-logs/<name>.log``
    for the failure artifact.  Entering the context blocks until
    ``/readyz`` answers 200 (which also covers fleet quorum when the
    smoke passes ``--min-workers``), so callers never see a
    half-started service.
    """

    def __init__(
        self,
        name: str,
        serve_args: list[str] | None = None,
        ready_timeout: float = 90.0,
    ) -> None:
        self.name = name
        self.serve_args = list(serve_args or [])
        self.ready_timeout = ready_timeout
        self.base = ""
        self.port: int | None = None
        self.process: subprocess.Popen | None = None
        self._log_handle = None
        self._reader: threading.Thread | None = None
        self._ready = threading.Event()
        self.log_path = LOG_DIR / f"{name}.log"

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "SmokeServer":
        LOG_DIR.mkdir(exist_ok=True)
        self._log_handle = self.log_path.open("w")
        env = dict(os.environ)
        src = str(REPO / "src")
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src}{os.pathsep}{existing}" if existing else src
            )
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             *self.serve_args],
            cwd=REPO, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, bufsize=1,
        )
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        try:
            self._await_ready()
        except BaseException:
            self._teardown()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._teardown()

    def _pump(self) -> None:
        """Reader thread: tee server output to the log, spot the ready line."""
        assert self.process is not None and self.process.stdout is not None
        for line in self.process.stdout:
            self._log_handle.write(line)
            self._log_handle.flush()
            if not self._ready.is_set():
                parsed = parse_ready_line(line)
                if parsed is not None:
                    host, self.port = parsed
                    self.base = f"http://{host}:{self.port}"
                    self._ready.set()

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.ready_timeout
        while not self._ready.wait(timeout=0.2):
            if self.process.poll() is not None:
                raise SystemExit(
                    f"serve process died during startup (exit "
                    f"{self.process.returncode}); see {self.log_path}"
                )
            if time.monotonic() > deadline:
                raise SystemExit(
                    f"no ZATEL_SERVE_READY line within "
                    f"{self.ready_timeout:g}s; see {self.log_path}"
                )
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise SystemExit(
                    f"serve process died after binding; see {self.log_path}"
                )
            try:
                status, _ = http_get(self.base, "/readyz", timeout=5.0)
                if status == 200:
                    return
            except (urllib.error.URLError, ConnectionError, TimeoutError):
                pass
            time.sleep(0.2)
        raise SystemExit(
            f"service on {self.base} never became ready within "
            f"{self.ready_timeout:g}s; see {self.log_path}"
        )

    def _teardown(self) -> None:
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)
        if self._reader is not None:
            self._reader.join(timeout=10)
        if self._log_handle is not None:
            self._log_handle.close()
