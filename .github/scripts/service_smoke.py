"""End-to-end smoke test of ``zatel serve``, run by CI's service-smoke job.

Boots the real service as a subprocess (via :mod:`smoke_common`), then
checks the acceptance contract from the outside, over plain HTTP:

1. a ``POST /predict`` for the golden workload (SPRNG, 24x24, spp 1,
   seed 0, packet backend, mobile GPU) returns metrics **exactly**
   equal to ``tests/data/golden_predict.json`` — the served path and
   the CLI path must be the same computation;
2. repeating the identical request is an observable cache hit: the
   response carries ``"cached": true`` and the telemetry-bus
   ``service.cache_hits`` counter on ``GET /metrics`` increments;
3. a malformed request is refused with 400, and ``GET /healthz`` says ok.

Run locally with::

    PYTHONPATH=src python .github/scripts/service_smoke.py
"""

from __future__ import annotations

import sys
import tempfile

from smoke_common import (
    GOLDEN_REQUEST,
    SmokeServer,
    assert_golden_metrics,
    http_get,
    http_post,
)


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir, SmokeServer(
        "service-smoke", ["--cache-dir", cache_dir, "--workers", "1"]
    ) as server:
        base = server.base
        status, health = http_get(base, "/healthz")
        assert status == 200 and health["status"] == "ok", (status, health)

        # 1. served metrics are byte-identical to the golden CLI run
        status, first = http_post(base, "/predict", GOLDEN_REQUEST)
        assert status == 200, (status, first)
        assert first["cached"] is False, first
        assert_golden_metrics(first["metrics"])
        assert first["degraded"] is False

        _, metrics = http_get(base, "/metrics")
        hits_before = metrics["counters"]["service.cache_hits"]

        # 2. the repeat is an observable cache hit with equal payload
        status, second = http_post(base, "/predict", GOLDEN_REQUEST)
        assert status == 200, (status, second)
        assert second["cached"] is True, second
        assert_golden_metrics(second["metrics"])
        _, metrics = http_get(base, "/metrics")
        hits_after = metrics["counters"]["service.cache_hits"]
        assert hits_after == hits_before + 1, (hits_before, hits_after)

        # 3. malformed requests are refused loudly
        status, error = http_post(
            base, "/predict", {"scene": "SPRNG", "sizzle": 1}
        )
        assert status == 400, (status, error)
        _, metrics = http_get(base, "/metrics")
        assert metrics["counters"]["service.invalid"] >= 1

        print(
            f"service smoke OK: golden metrics served byte-identical, "
            f"cache hits {hits_before} -> {hits_after}, 400 on bad input"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
