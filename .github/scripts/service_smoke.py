"""End-to-end smoke test of ``zatel serve``, run by CI's service-smoke job.

Boots the real service as a subprocess, then checks the acceptance
contract from the outside, over plain HTTP:

1. a ``POST /predict`` for the golden workload (SPRNG, 24x24, spp 1,
   seed 0, packet backend, mobile GPU) returns metrics **exactly**
   equal to ``tests/data/golden_predict.json`` — the served path and
   the CLI path must be the same computation;
2. repeating the identical request is an observable cache hit: the
   response carries ``"cached": true`` and the telemetry-bus
   ``service.cache_hits`` counter on ``GET /metrics`` increments;
3. a malformed request is refused with 400, and ``GET /healthz`` says ok.

Run locally with::

    PYTHONPATH=src python .github/scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
GOLDEN = REPO / "tests" / "data" / "golden_predict.json"
SCENE = "SPRNG"

REQUEST = {
    "scene": SCENE, "size": 24, "spp": 1, "seed": 0,
    "backend": "packet", "gpu": "mobile",
}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _post(base: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base}/predict", data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
        return json.loads(response.read())


def main() -> int:
    golden = json.loads(GOLDEN.read_text())
    expected = golden["metrics"][SCENE]
    meta = golden["meta"]
    assert (meta["size"], meta["spp"], meta["seed"], meta["backend"]) == (
        REQUEST["size"], REQUEST["spp"], REQUEST["seed"], REQUEST["backend"],
    ), f"smoke request drifted from golden meta {meta}"

    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    with tempfile.TemporaryDirectory() as cache_dir:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--cache-dir", cache_dir, "--workers", "1"],
            env=env, cwd=REPO,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            for _ in range(150):
                try:
                    health = _get(base, "/healthz")
                    break
                except (urllib.error.URLError, ConnectionError):
                    if server.poll() is not None:
                        print(server.communicate()[0], file=sys.stderr)
                        raise SystemExit("serve process died during startup")
                    time.sleep(0.2)
            else:
                raise SystemExit("service did not come up within 30s")
            assert health["status"] == "ok", health

            # 1. served metrics are byte-identical to the golden CLI run
            status, first = _post(base, REQUEST)
            assert status == 200, (status, first)
            assert first["cached"] is False, first
            assert first["metrics"] == expected, (
                "served metrics drifted from tests/data/golden_predict.json:\n"
                f"served: {json.dumps(first['metrics'], sort_keys=True)}\n"
                f"golden: {json.dumps(expected, sort_keys=True)}"
            )
            assert first["degraded"] is False

            hits_before = _get(base, "/metrics")["counters"][
                "service.cache_hits"
            ]

            # 2. the repeat is an observable cache hit with equal payload
            status, second = _post(base, REQUEST)
            assert status == 200, (status, second)
            assert second["cached"] is True, second
            assert second["metrics"] == expected
            hits_after = _get(base, "/metrics")["counters"][
                "service.cache_hits"
            ]
            assert hits_after == hits_before + 1, (hits_before, hits_after)

            # 3. malformed requests are refused loudly
            status, error = _post(base, {"scene": SCENE, "sizzle": 1})
            assert status == 400, (status, error)
            invalid = _get(base, "/metrics")["counters"]["service.invalid"]
            assert invalid >= 1

            print(
                f"service smoke OK: golden metrics served byte-identical, "
                f"cache hits {hits_before} -> {hits_after}, 400 on bad input"
            )
            return 0
        finally:
            server.terminate()
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()


if __name__ == "__main__":
    sys.exit(main())
