"""End-to-end smoke test of ``POST /campaigns``, run by CI's campaign-smoke job.

Boots the real service as a subprocess (via :mod:`smoke_common`) and
drives a small campaign — a 2-frame procedural saturation sequence —
through it over plain HTTP, checking the campaign-engine acceptance
contract from the outside:

1. the campaign completes and the report carries one verdict per frame;
2. a deliberately untrippable-by-this-sampler QC gate
   (``max_ci_half_width`` on a point-estimate run) degrades the frames
   instead of failing the campaign — the report says ``degraded`` with
   the violation spelled out, and ``succeeded`` stays true;
3. the cross-frame prediction-cache carry-over is visible on
   ``GET /metrics``: ``service.seq_cache_lookups`` is nonzero and
   ``service.seq_cache_carried_hits`` recorded carried confirmations;
4. an invalid samplesheet is refused with 400 naming the bad row.

Run locally with::

    PYTHONPATH=src python .github/scripts/campaign_smoke.py
"""

from __future__ import annotations

import sys
import tempfile

from smoke_common import SmokeServer, http_get, http_post

SAMPLESHEET = {
    "campaign": {
        "name": "ci-smoke",
        "size": 16,
        "spp": 1,
        "seed": 0,
        "backend": "packet",
        "gpus": ["mobile"],
    },
    "points": [
        {
            "scene": {
                "sequence": "saturation",
                "frames": 2,
                "knobs": {"level": 0.4},
                "seed": 2,
                "orbit_degrees": 10.0,
            },
            # Tripped on purpose: the default sampler returns point
            # estimates with no confidence intervals, so any CI-width
            # demand is unsatisfiable and must degrade the point.
            "qc": {"max_ci_half_width": 0.05},
        }
    ],
}

BAD_SHEET = {
    "campaign": {"name": "bad", "size": 16},
    "points": [{"scene": "SPRNG", "gppu": "mobile"}],
}


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir, SmokeServer(
        "campaign-smoke", ["--cache-dir", cache_dir, "--workers", "1"]
    ) as server:
        base = server.base

        # 1. + 2. the sequence campaign completes, degraded-not-failed
        status, report = http_post(base, "/campaigns", SAMPLESHEET)
        assert status == 200, (status, report)
        assert report["campaign"] == "ci-smoke", report
        points = report["points"]
        assert len(points) == 2, points
        assert all(p["verdict"] == "degraded" for p in points), points
        assert any(
            "confidence" in v
            for p in points
            for v in p.get("violations", [])
        ), points
        assert report["succeeded"] is True, report

        # 3. frame 1 reused frame 0's prediction cache, observably
        _, metrics = http_get(base, "/metrics")
        counters = metrics["counters"]
        lookups = counters.get("service.seq_cache_lookups", 0)
        carried = counters.get("service.seq_cache_carried_hits", 0)
        assert counters.get("service.campaigns") == 1, counters
        assert counters.get("service.campaign_points") == 2, counters
        assert lookups > 0, counters
        assert carried > 0, (
            "no carried prediction-cache hits recorded across frames: "
            f"{counters}"
        )

        # 4. invalid samplesheets are refused loudly, naming the row
        status, error = http_post(base, "/campaigns", BAD_SHEET)
        assert status == 400, (status, error)
        assert "points[0]" in error["error"], error

        print(
            "campaign smoke OK: 2-frame sequence served, QC gate "
            f"degraded both frames as designed, seq cache lookups="
            f"{lookups} carried_hits={carried}, 400 on bad samplesheet"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
