"""Sampler-parity gate, run by CI's sampler-parity job.

Two contracts of the pluggable sampling engine, checked on the golden
workload (SPRNG 24x24, spp 1, seed 0, packet backend, Mobile SoC):

1. **Byte identity.** The default ``heatmap`` sampler is the paper's
   pipeline — its prediction must equal every metric pinned in
   ``tests/data/golden_predict.json`` exactly (``==`` on floats, not
   approx).  The refactor moved selection behind the Sampler protocol;
   this is the proof that the default path did not move.

2. **Statistical consistency.** Each replicate sampler (``ranked_set``,
   ``two_phase``) must report a strictly positive cycles variance, and
   its 95% confidence interval must bracket the *golden predicted*
   cycles value.  The golden prediction is the right reference — all
   samplers share the linear-extrapolation model and its documented
   Section IV-D bias, so a sound replicate estimator is an unbiased
   estimate of the *pipeline's* prediction, not of the full simulation
   (``results/sampler_frontier.txt`` tracks the full-sim error
   separately).

Run locally with::

    PYTHONPATH=src python .github/scripts/sampler_parity.py
"""

from __future__ import annotations

import sys

from smoke_common import load_golden

from repro.core.pipeline import Zatel, ZatelConfig  # noqa: E402
from repro.gpu.config import MOBILE_SOC  # noqa: E402
from repro.scene.library import make_scene  # noqa: E402
from repro.tracer.tracer import FunctionalTracer, RenderSettings  # noqa: E402

SCENE = "SPRNG"
REPLICATE_SAMPLERS = ("ranked_set", "two_phase")


def main() -> int:
    golden = load_golden()
    meta = golden["metrics"][SCENE]
    settings = golden["meta"]

    scene = make_scene(SCENE)
    frame = FunctionalTracer(
        scene,
        RenderSettings(
            width=settings["size"],
            height=settings["size"],
            samples_per_pixel=settings["spp"],
            seed=settings["seed"],
            tracing_backend=settings["backend"],
        ),
    ).trace_frame()

    # Contract 1: the default sampler reproduces the golden prediction
    # byte-for-byte.
    default = Zatel(MOBILE_SOC).predict(scene, frame)
    for name, pinned in meta.items():
        got = default.metrics[name]
        assert got == pinned, (
            f"default sampler drifted from golden on {name}: "
            f"got {got!r}, pinned {pinned!r}"
        )
    assert not default.variances, "default sampler must be a point prediction"
    print(f"ok: heatmap reproduces golden_predict.json ({len(meta)} metrics)")

    # Contract 2: replicate samplers report genuine uncertainty that is
    # consistent with the pinned prediction.
    golden_cycles = meta["cycles"]
    failures = []
    for sampler in REPLICATE_SAMPLERS:
        config = ZatelConfig(sampler=sampler, replicates=5)
        result = Zatel(MOBILE_SOC, config).predict(scene, frame)
        variance = result.variances.get("cycles", 0.0)
        lo, hi = result.confidence_intervals()["cycles"]
        brackets = lo <= golden_cycles <= hi
        print(
            f"{sampler}: cycles={result.metrics['cycles']:.2f} "
            f"var={variance:.2f} CI=[{lo:.2f}, {hi:.2f}] "
            f"golden={golden_cycles:.2f} brackets={brackets}"
        )
        if variance <= 0.0:
            failures.append(f"{sampler}: cycles variance is not positive")
        if not brackets:
            failures.append(
                f"{sampler}: 95% CI [{lo:.2f}, {hi:.2f}] misses golden "
                f"cycles {golden_cycles:.2f}"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: replicate sampler CIs bracket the golden prediction")
    return 0


if __name__ == "__main__":
    sys.exit(main())
