"""§IV-B baseline discussion — Zatel vs analytical and PKA-style models.

Two comparisons the paper makes in prose:

* **GCoM-style analytical model** — fast but coarse (GCoM: 26.7% MAE),
  and structurally unable to expose most Table I metrics faithfully.
* **PKA-style projection** — stops simulating once the monitored metric
  stabilizes; on divergent ray-tracing workloads the early stop locks in
  a biased estimate ("might stop the simulation too early, outputting a
  value with high error").

Expected shapes: Zatel's MAE beats the analytical model's on the hard
scenes; the PKA projection stops early (< 100%) on at least one divergent
scene and its cycles error there exceeds Zatel's.
"""

from repro.gpu import MOBILE_SOC
from repro.harness import format_table, mae, metric_errors, save_result
from repro.models import AnalyticalModel, PKAProjection

from common import workload_for

SCENES = ("PARK", "BUNNY", "BATH", "SPRNG")


def test_baseline_comparison(benchmark, runner):
    def experiment():
        rows = []
        summary = {}
        for scene_name in SCENES:
            workload = workload_for(scene_name)
            scene = runner.scene(scene_name)
            frame = runner.frame(workload)
            full = runner.full_sim(workload, MOBILE_SOC)

            zatel = runner.zatel(workload, MOBILE_SOC)
            zatel_mae = mae(metric_errors(zatel.metrics, full))

            analytical = AnalyticalModel(MOBILE_SOC).predict(scene, frame)
            analytical_mae = mae(metric_errors(analytical.metrics, full))

            pka = PKAProjection(MOBILE_SOC).predict(scene, frame)
            pka_cycles_err = metric_errors(pka.metrics, full)["cycles"]
            zatel_cycles_err = metric_errors(zatel.metrics, full)["cycles"]

            summary[scene_name] = {
                "zatel_mae": zatel_mae,
                "analytical_mae": analytical_mae,
                "pka_stop": pka.stopped_fraction,
                "pka_cycles_err": pka_cycles_err,
                "zatel_cycles_err": zatel_cycles_err,
            }
            rows.append(
                [scene_name, zatel_mae, analytical_mae,
                 f"{pka.stopped_fraction:.0%}", pka_cycles_err,
                 zatel_cycles_err]
            )
        return (
            format_table(
                ["scene", "Zatel MAE %", "analytical MAE %",
                 "PKA stopped at", "PKA cycles err %", "Zatel cycles err %"],
                rows,
                title="Baselines: Zatel vs GCoM-style analytical vs "
                "PKA-style projection (Mobile SoC)",
                precision=1,
            ),
            summary,
        )

    report, summary = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("baselines", report)
    print("\n" + report)

    # Shape 1: on the hardest workload Zatel's cycles error beats the
    # analytical model's overall MAE family (paper: 4.5% vs 26.7%).
    assert summary["PARK"]["zatel_cycles_err"] < summary["PARK"]["analytical_mae"]
    # Shape 2: PKA's projection stops before 100% on at least one scene and
    # pays for it in cycles error relative to Zatel somewhere.
    stops = [s["pka_stop"] for s in summary.values()]
    assert min(stops) < 1.0
    assert any(
        s["pka_cycles_err"] > s["zatel_cycles_err"] for s in summary.values()
    )
