"""Fig. 14 — Zatel's running time vs. percentage of pixels traced.

The paper plots wall-clock hours per scene (BATH the longest-running by a
margin, with its slope quoted per percentage point).  Our deterministic
equivalent is simulator work units (events processed), reported per scene
and percentage, plus the measured host seconds for reference.

Expected shapes: running time grows ~linearly with the traced percentage;
BATH is the most expensive scene; the cheap under-saturating scenes
(SPRNG, SHIP) cost an order of magnitude less.
"""

import numpy as np

from repro.harness import format_table, save_result
from repro.scene import SCENE_NAMES

from common import PERCENTAGES


def test_fig14_running_time_per_scene(benchmark, sampling_sweeps):
    sweep = sampling_sweeps["RTX2060"]

    def experiment():
        rows = []
        work = {}
        for scene_name in SCENE_NAMES:
            row = [scene_name]
            for perc in PERCENTAGES:
                prediction = sweep.points[scene_name][perc]
                work[(scene_name, perc)] = prediction.stats.work_units
                row.append(prediction.stats.work_units / 1000.0)
            host = sum(
                sweep.points[scene_name][p].stats.host_seconds
                for p in PERCENTAGES
            )
            row.append(host)
            rows.append(row)
        return (
            format_table(
                ["scene"] + [f"{p}%" for p in PERCENTAGES] + ["host s (sum)"],
                rows,
                title=(
                    "Fig 14: running time (kilo work-units) per scene vs "
                    "pixels traced (RTX 2060)"
                ),
                precision=1,
            ),
            work,
        )

    report, work = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig14_running_time", report)
    print("\n" + report)

    # Shape 1: work grows monotonically (within noise) with the percentage.
    for scene_name in SCENE_NAMES:
        series = [work[(scene_name, p)] for p in PERCENTAGES]
        assert series[-1] > series[0]
        # Roughly linear: correlation with the percentages is strong.
        corr = np.corrcoef(PERCENTAGES, series)[0, 1]
        assert corr > 0.95
    # Shape 2: BATH is the most expensive scene at full load (paper: the
    # longest-running scene "by a high margin").
    at_90 = {s: work[(s, 90)] for s in SCENE_NAMES}
    assert at_90["BATH"] == max(at_90.values())
    assert at_90["BATH"] > 4 * at_90["SPRNG"]
