"""Fig. 18 — metric error vs. downscaling factor, all used scenes.

Extending Fig. 17's sweep from the representative subset to every scene
raises the IPC / simulation-cycles errors: scenes like SPRNG "do not
adequately stress the downscaled GPU, leading to higher errors".

Expected shapes: mean errors on the full scene set are at least as high as
on the representative subset; fine-grained remains the more stable
division method.
"""

from repro.harness import save_result
from repro.scene import REPRESENTATIVE_SUBSET, SCENE_NAMES

from bench_fig17_downscale_error_subset import render, summarize


def test_fig18_downscale_error_all_scenes(
    benchmark, downscale_sweeps_subset, downscale_sweeps_all
):
    sweep_all = downscale_sweeps_all["RTX2060"]
    sweep_subset = downscale_sweeps_subset["RTX2060"]

    def experiment():
        table_all = summarize(sweep_all, SCENE_NAMES)
        table_subset = summarize(sweep_subset, REPRESENTATIVE_SUBSET)
        report = render(
            table_all,
            sweep_all,
            "Fig 18: metric error (%) per downscaling factor, all scenes "
            "(RTX 2060, all group pixels traced)",
        )
        return report, table_all, table_subset

    report, table_all, table_subset = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("fig18_downscale_error_all", report)
    print("\n" + report)

    largest_k = max(sweep_all.factors)
    # Shape 1: including the under-saturating scenes raises the cycles
    # error relative to the representative subset (paper's observation).
    assert (
        table_all[("fine", largest_k)]["cycles"]
        >= table_subset[("fine", largest_k)]["cycles"] * 0.8
    )
    # Shape 2: fine-grained division is at least as accurate as coarse on
    # the headline cycles metric when averaged over the sweep.
    fine_mean = sum(
        table_all[("fine", k)]["cycles"] for k in sweep_all.factors
    )
    coarse_mean = sum(
        table_all[("coarse", k)]["cycles"] for k in sweep_all.factors
    )
    assert fine_mean <= coarse_mean * 1.2
