"""Fig. 17 — metric error vs. downscaling factor, representative subset.

Section IV-E isolates the scale-model optimization: the GPU is downscaled
by K, the plane split into K groups, and *every* pixel of each group is
traced (no representative-pixel sampling).  Errors are averaged over
LumiBench's representative subset — the scenes that adequately stress a
downscaled GPU.

Expected shapes (paper): fine-grained division keeps cycles/IPC errors
moderate even at the largest K; DRAM efficiency degrades with fewer memory
partitions ("read and write requests to DRAM ... do not scale linearly as
we hoped"); fine-grained is more stable than coarse-grained.
"""

from repro.gpu import METRICS
from repro.harness import format_table, metric_errors, save_result
from repro.scene import REPRESENTATIVE_SUBSET

KEY_METRICS = ("cycles", "ipc", "l2_miss_rate", "dram_efficiency")


def summarize(sweep, scenes):
    """mean error per (division, K, metric) over ``scenes``."""
    table = {}
    for division in ("fine", "coarse"):
        for k in sweep.factors:
            sums = {name: 0.0 for name in METRICS}
            for scene_name in scenes:
                result = sweep.results[(scene_name, division, k)]
                errors = metric_errors(result.metrics, sweep.full[scene_name])
                for name in METRICS:
                    sums[name] += errors[name] / len(scenes)
            table[(division, k)] = sums
    return table


def render(table, sweep, title):
    rows = []
    for (division, k), sums in sorted(table.items()):
        rows.append([division, k] + [sums[name] for name in METRICS])
    return format_table(
        ["division", "K"] + list(METRICS),
        rows,
        title=title,
        precision=1,
    )


def test_fig17_downscale_error_representative(benchmark, downscale_sweeps_subset):
    sweep = downscale_sweeps_subset["RTX2060"]

    def experiment():
        table = summarize(sweep, REPRESENTATIVE_SUBSET)
        return (
            render(
                table,
                sweep,
                "Fig 17: metric error (%) per downscaling factor, "
                "representative subset (RTX 2060, all group pixels traced)",
            ),
            table,
        )

    report, table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig17_downscale_error_subset", report)
    print("\n" + report)

    largest_k = max(sweep.factors)
    fine = table[("fine", largest_k)]
    # Shape 1: fine-grained cycles error stays moderate at the largest K
    # (paper: under 12% at K=6; our scale model allows a wider band).
    assert fine["cycles"] < 40.0
    # Shape 2: group splitting over-predicts the L2 miss rate (the §III-G
    # bias) — check the prediction errs on the high side for most scenes.
    over = 0
    for scene_name in REPRESENTATIVE_SUBSET:
        result = sweep.results[(scene_name, "fine", largest_k)]
        if result.metrics["l2_miss_rate"] >= sweep.full[scene_name].l2_miss_rate:
            over += 1
    assert over >= len(REPRESENTATIVE_SUBSET) - 1
