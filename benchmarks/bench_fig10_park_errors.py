"""Fig. 10 + §IV-B headline — fully optimized Zatel on PARK.

Reproduces, for both Table II configurations:

* the per-metric absolute error of the fully optimized pipeline on PARK
  (paper: Mobile SoC 0.7% cycles error / 4.5% MAE at ~9.2x; RTX 2060
  15.1% MAE at ~11.6x);
* the "trace only up to 10% of pixels" variant (paper: ~50x speedup at
  5.2% MAE on the Mobile SoC);
* the GCoM comparison row (paper quotes 26.7% MAE at 7.6x for a single
  design point) using our analytical baseline.

Expected shapes: cycles error small on the Mobile SoC and larger on the
RTX 2060; both configurations around an order of magnitude faster than the
full simulation; the analytical model cheaper but far less accurate.
"""

from repro.core import ZatelConfig
from repro.gpu import METRICS, MOBILE_SOC, RTX_2060
from repro.harness import format_table, mae, metric_errors, save_result
from repro.models import AnalyticalModel

from common import workload_for


def test_fig10_fully_optimized_park(benchmark, runner):
    workload = workload_for("PARK")

    def experiment():
        lines = []
        rows = []
        for gpu in (MOBILE_SOC, RTX_2060):
            full = runner.full_sim(workload, gpu)
            result = runner.zatel(workload, gpu)
            errors = metric_errors(result.metrics, full)
            rows.extend(
                [gpu.name, name, full.metric(name), result.metrics[name],
                 errors[name]]
                for name in METRICS
            )
            lines.append(
                f"{gpu.name}: K={result.downscale_factor}, "
                f"mean traced fraction {result.mean_fraction():.2f}, "
                f"MAE {mae(errors):.1f}%, "
                f"speedup {result.speedup_vs(full):.1f}x "
                f"(paper: {'4.5% MAE, ~9.2x' if gpu is MOBILE_SOC else '15.1% MAE, ~11.6x'})"
            )

        # The 10%-cap variant on the Mobile SoC (paper: 50x, 5.2% MAE).
        full = runner.full_sim(workload, MOBILE_SOC)
        capped = runner.zatel(
            workload, MOBILE_SOC, ZatelConfig(fraction_override=0.10)
        )
        capped_errors = metric_errors(capped.metrics, full)
        lines.append(
            f"MobileSoC @ 10% cap: MAE {mae(capped_errors):.1f}%, "
            f"speedup {capped.speedup_vs(full):.1f}x (paper: 5.2% MAE, ~50x)"
        )

        # GCoM-style analytical comparison (paper: 26.7% MAE, 7.6x).
        scene = runner.scene("PARK")
        frame = runner.frame(workload)
        analytical = AnalyticalModel(MOBILE_SOC).predict(scene, frame)
        analytical_errors = metric_errors(analytical.metrics, full)
        lines.append(
            f"Analytical (GCoM-style) on MobileSoC: MAE "
            f"{mae(analytical_errors):.1f}% (paper quotes GCoM at 26.7%)"
        )

        table = format_table(
            ["config", "metric", "full sim", "Zatel", "abs err %"],
            rows,
            title="Fig 10: fully optimized Zatel errors on PARK",
        )
        return table + "\n\n" + "\n".join(lines)

    report = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig10_park_errors", report)
    print("\n" + report)

    # Shape assertions: the headline metric (cycles) stays tight on the
    # Mobile SoC and Zatel is substantially faster than full simulation.
    full = runner.full_sim(workload, MOBILE_SOC)
    result = runner.zatel(workload, MOBILE_SOC)
    cycles_err = metric_errors(result.metrics, full)["cycles"]
    assert cycles_err < 15.0
    assert result.speedup_vs(full) > 2.0
