"""Table I — the metrics Zatel evaluates.

Prints every Table I metric with its description and the value a full
ground-truth simulation reports for it (PARK on the Mobile SoC), verifying
that each metric is live end-to-end.
"""

from repro.gpu import MOBILE_SOC, METRIC_DESCRIPTIONS, METRICS
from repro.harness import format_table, save_result

from common import workload_for


def test_table1_metric_inventory(benchmark, runner):
    def experiment():
        full = runner.full_sim(workload_for("PARK"), MOBILE_SOC)
        rows = [
            [name, f"{full.metric(name):.4f}", METRIC_DESCRIPTIONS[name]]
            for name in METRICS
        ]
        return format_table(
            ["metric", "PARK/Mobile value", "description"],
            rows,
            title="Table I: metrics evaluated (value from one full simulation)",
        )

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("table1_metrics", table)
    print("\n" + table)
    assert "ipc" in table and "bw_utilization" in table
