"""Tracing-backend benchmark: scalar vs packet (wavefront) throughput.

Times both backends on library scenes — ``trace_frame`` (records on, the
profiling path) and ``render_image`` (records off, path-prediction cache
on) — verifies their outputs are *identical*, and measures the cold
end-to-end ``Zatel.predict`` wall-clock (functional trace + prediction)
per backend.  Results are written to ``BENCH_tracer.json``.

Run as a script (what CI's perf-smoke step does):

.. code-block:: bash

    PYTHONPATH=src python benchmarks/bench_tracer.py --quick

The exit code reflects *divergence only* — a slow machine never fails
the benchmark, different pixels/images/metrics do.  Under pytest the
same experiment runs once and asserts equivalence the same way.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import Zatel
from repro.gpu import MOBILE_SOC
from repro.scene import make_scene
from repro.tracer import FunctionalTracer, RenderSettings

#: The headline scene/plane of the acceptance target (>= 5x rays/sec).
HEADLINE_SCENE = "SPRNG"
SIZE = 128
#: Traversal-heavy scenes added in full (non ``--quick``) mode.
FULL_SCENES = ("BUNNY", "SPNZA")

BACKENDS = ("scalar", "packet")


def _total_rays(frame) -> int:
    return sum(len(t.segments) for t in frame.pixels.values())


def _settings(backend: str, size: int) -> RenderSettings:
    return RenderSettings(
        width=size, height=size, samples_per_pixel=1, seed=0,
        tracing_backend=backend,
    )


def _check_identical(scene, size: int) -> bool:
    """Exact scalar-vs-packet equivalence of one untimed trace + render."""
    frames = {}
    images = {}
    for backend in BACKENDS:
        tracer = FunctionalTracer(scene, _settings(backend, size))
        frames[backend] = tracer.trace_frame()
        images[backend] = tracer.render_image()
    return bool(
        set(frames["scalar"].pixels) == set(frames["packet"].pixels)
        and all(
            frames["scalar"].pixels[k] == frames["packet"].pixels[k]
            for k in frames["scalar"].pixels
        )
        and np.array_equal(images["scalar"], images["packet"])
    )


def bench_scene(name: str, size: int, repeats: int) -> dict:
    """Trace and render one scene with both backends; best-of-N timings.

    The equivalence check runs first so the timed region retains no
    stale frame (hundreds of thousands of live segment objects would
    skew the garbage collector against whichever backend runs second).
    """
    import gc

    scene = make_scene(name)
    scene.packed_bvh  # build the SoA arrays outside the timed region
    entry: dict = {"scene": name, "width": size, "height": size, "spp": 1}
    entry["identical"] = _check_identical(scene, size)
    for backend in BACKENDS:
        tracer = FunctionalTracer(scene, _settings(backend, size))
        gc.collect()
        trace_best = float("inf")
        rays = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            frame = tracer.trace_frame()
            trace_best = min(trace_best, time.perf_counter() - t0)
            rays = _total_rays(frame)
            del frame
        render_best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            image = tracer.render_image()
            render_best = min(render_best, time.perf_counter() - t0)
            del image
        entry[backend] = {
            "trace_seconds": trace_best,
            "render_seconds": render_best,
            "rays": rays,
            "rays_per_sec": rays / trace_best,
        }
    entry["trace_speedup"] = (
        entry["scalar"]["trace_seconds"] / entry["packet"]["trace_seconds"]
    )
    entry["render_speedup"] = (
        entry["scalar"]["render_seconds"] / entry["packet"]["render_seconds"]
    )
    entry["rays_per_sec_speedup"] = (
        entry["packet"]["rays_per_sec"] / entry["scalar"]["rays_per_sec"]
    )
    return entry


def bench_predict(name: str, size: int) -> dict:
    """Cold end-to-end prediction: functional trace + Zatel.predict."""
    out: dict = {"scene": name, "width": size, "height": size}
    metrics = {}
    for backend in BACKENDS:
        scene = make_scene(name)
        scene.packed_bvh
        t0 = time.perf_counter()
        frame = FunctionalTracer(scene, _settings(backend, size)).trace_frame()
        result = Zatel(MOBILE_SOC).predict(scene, frame)
        out[backend] = {"seconds": time.perf_counter() - t0}
        metrics[backend] = {k: result.metrics[k] for k in result.metrics}
    out["metrics"] = metrics["packet"]
    out["identical_metrics"] = metrics["scalar"] == metrics["packet"]
    out["speedup"] = out["scalar"]["seconds"] / out["packet"]["seconds"]
    return out


def run(quick: bool) -> dict:
    """The whole experiment; ``quick`` trims scenes and repeats for CI."""
    scenes = (HEADLINE_SCENE,) if quick else (HEADLINE_SCENE,) + FULL_SCENES
    repeats = 1 if quick else 3
    payload = {
        "benchmark": "tracer_backends",
        "quick": quick,
        "scenes": [bench_scene(name, SIZE, repeats) for name in scenes],
        "predict": bench_predict(HEADLINE_SCENE, SIZE),
    }
    payload["identical"] = bool(
        all(e["identical"] for e in payload["scenes"])
        and payload["predict"]["identical_metrics"]
    )
    return payload


def _report(payload: dict) -> str:
    lines = []
    for e in payload["scenes"]:
        lines.append(
            f"{e['scene']} {e['width']}x{e['height']}: "
            f"scalar {e['scalar']['rays_per_sec']:,.0f} rays/s, "
            f"packet {e['packet']['rays_per_sec']:,.0f} rays/s "
            f"({e['rays_per_sec_speedup']:.1f}x trace, "
            f"{e['render_speedup']:.1f}x render, "
            f"identical={e['identical']})"
        )
    p = payload["predict"]
    lines.append(
        f"cold Zatel.predict on {p['scene']}: "
        f"scalar {p['scalar']['seconds']:.2f}s, "
        f"packet {p['packet']['seconds']:.2f}s "
        f"({p['speedup']:.1f}x, zero metric drift="
        f"{p['identical_metrics']})"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="headline scene only, single repeat (the CI perf-smoke mode)",
    )
    parser.add_argument(
        "--out", default="BENCH_tracer.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    payload = run(args.quick)
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(_report(payload))
    print(f"wrote {args.out}")
    if not payload["identical"]:
        print("DIVERGENCE: backends disagree", file=sys.stderr)
        return 1
    return 0


def test_tracer_backends(benchmark):
    """Pytest entry: run once in quick mode and require exact equivalence."""
    payload = benchmark.pedantic(lambda: run(quick=True), rounds=1, iterations=1)
    assert all(e["identical"] for e in payload["scenes"])
    assert payload["predict"]["identical_metrics"]
    # Shape, not absolute timing: batching must not be slower than scalar.
    assert payload["scenes"][0]["rays_per_sec_speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
