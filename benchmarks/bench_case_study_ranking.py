"""Case study — does Zatel rank early-stage design points correctly?

The paper's motivating workflow (§I, §IV-B): an architect proposes several
hardware variants and needs to "quickly evaluate different hardware ideas
and choose the most optimal subset to investigate further".  What matters
is not absolute cycle counts but the *ranking* (and rough spacing) of the
design points.

This bench builds a four-point design space around the Mobile SoC —
halved RT-unit capacity, the baseline, doubled RT warps, and doubled RT
warps + doubled MSHR — evaluates every point with both the full simulator
and Zatel on PARK, and checks that Zatel preserves the full simulator's
cycle-count ranking.  Zatel needs *zero* code changes per design point:
the variants differ only in their ``GPUConfig`` (contribution 2 of the
paper).
"""

import dataclasses

from repro.gpu import MOBILE_SOC, CycleSimulator, compile_kernel
from repro.harness import format_table, save_result

from common import workload_for

DESIGN_SPACE = {
    "rt-starved": dataclasses.replace(
        MOBILE_SOC, name="MobileSoC-rt1", rt_max_warps=1
    ),
    "baseline": MOBILE_SOC,
    "lrr-scheduler": dataclasses.replace(
        MOBILE_SOC, name="MobileSoC-lrr", warp_scheduler="lrr"
    ),
    "rt-x2": dataclasses.replace(
        MOBILE_SOC, name="MobileSoC-rt8", rt_max_warps=8
    ),
    "rt-x2+mshr-x2": dataclasses.replace(
        MOBILE_SOC, name="MobileSoC-rt8m128", rt_max_warps=8, rt_mshr_size=128
    ),
}


def test_case_study_design_point_ranking(benchmark, runner):
    workload = workload_for("PARK")

    def experiment():
        scene = runner.scene("PARK")
        frame = runner.frame(workload)
        pixels = workload.settings().all_pixels()
        warps = compile_kernel(frame, pixels, scene.addresses)

        rows = []
        full_cycles = {}
        zatel_cycles = {}
        speedups = {}
        for label, gpu in DESIGN_SPACE.items():
            full = CycleSimulator(gpu, scene.addresses).run(warps)
            prediction = runner.zatel(workload, gpu)
            full_cycles[label] = full.cycles
            zatel_cycles[label] = prediction.metrics["cycles"]
            speedups[label] = prediction.speedup_vs(full)
            rows.append(
                [label, full.cycles, prediction.metrics["cycles"],
                 speedups[label]]
            )
        table = format_table(
            ["design point", "full-sim cycles", "Zatel cycles", "speedup x"],
            rows,
            title=(
                "Case study: ranking four Mobile SoC RT-unit variants on "
                "PARK — full simulation vs Zatel"
            ),
            precision=0,
        )
        full_rank = sorted(full_cycles, key=full_cycles.get)
        zatel_rank = sorted(zatel_cycles, key=zatel_cycles.get)
        note = (
            f"\nfull-sim ranking : {' < '.join(full_rank)}"
            f"\nZatel ranking    : {' < '.join(zatel_rank)}"
        )
        return table + note, full_cycles, zatel_cycles, speedups

    report, full_cycles, zatel_cycles, speedups = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("case_study_ranking", report)
    print("\n" + report)

    # The decisions an architect would take must match:
    # 1. the starved design is identified as the worst by both;
    worst_full = max(full_cycles, key=full_cycles.get)
    worst_zatel = max(zatel_cycles, key=zatel_cycles.get)
    assert worst_full == worst_zatel == "rt-starved"
    # 2. both agree that adding RT capacity over the baseline helps;
    assert full_cycles["rt-x2"] <= full_cycles["baseline"]
    assert zatel_cycles["rt-x2"] <= zatel_cycles["baseline"] * 1.05
    # 3. each Zatel evaluation is several times cheaper than the full run.
    assert min(speedups.values()) > 2.0
