"""Session-scoped fixtures shared by the benchmark suite.

The pixel-fraction sweep feeds Figs. 13-16 and the downscale sweep feeds
Figs. 17-19, so both are computed once per session and handed to every
benchmark that needs them.
"""

from __future__ import annotations

import pytest

from repro.harness import shared_runner
from repro.scene import REPRESENTATIVE_SUBSET, SCENE_NAMES

from repro.gpu import RTX_2060

from common import (
    CONFIGS,
    run_downscale_sweep,
    run_sampling_sweep,
)


@pytest.fixture(scope="session")
def runner():
    return shared_runner()


@pytest.fixture(scope="session")
def sampling_sweeps(runner):
    """Section IV-D sweep on both GPU configurations."""
    return {gpu.name: run_sampling_sweep(runner, gpu) for gpu in CONFIGS}


@pytest.fixture(scope="session")
def downscale_sweeps_subset(runner):
    """Section IV-E sweep on LumiBench's representative subset (Fig. 17).

    Computed for the RTX 2060 only — the figures report that configuration
    and the sweep is the suite's most expensive fixture.
    """
    return {RTX_2060.name: run_downscale_sweep(runner, RTX_2060, REPRESENTATIVE_SUBSET)}


@pytest.fixture(scope="session")
def downscale_sweeps_all(runner):
    """Section IV-E sweep on all used scenes (Fig. 18), RTX 2060 only."""
    return {RTX_2060.name: run_downscale_sweep(runner, RTX_2060, SCENE_NAMES)}
