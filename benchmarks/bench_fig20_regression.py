"""Fig. 20 + §IV-F — exponential regression vs. linear extrapolation.

The regression variant simulates each group at 20/30/40% of pixels, fits a
saturating exponential per metric and reads it out at 100%; the baseline
simply traces 40% once and extrapolates linearly.  The paper's verdict:
"regression does not provide a clear advantage over using one data point
while requiring running the simulator three times" (~62% of metrics get
*worse* on the RTX 2060).

Expected shapes: regression loses (or at best ties) on a majority of
(scene, metric) pairs, while costing roughly 2-3x the simulation work.
"""

from repro.gpu import METRICS, RTX_2060
from repro.harness import format_table, mae, metric_errors, save_result
from repro.models import SamplingPredictor
from repro.core import exponential_regression
from repro.scene import SCENE_NAMES

from common import workload_for

REGRESSION_FRACTIONS = (0.2, 0.3, 0.4)


def test_fig20_exponential_regression(benchmark, runner):
    def experiment():
        rows = []
        worse = 0
        total = 0
        work_ratio_sum = 0.0
        mae_pairs = []
        for scene_name in SCENE_NAMES:
            workload = workload_for(scene_name)
            scene = runner.scene(scene_name)
            frame = runner.frame(workload)
            full = runner.full_sim(workload, RTX_2060)
            predictor = SamplingPredictor(RTX_2060)

            samples = []
            regression_work = 0
            for fraction in REGRESSION_FRACTIONS:
                prediction = predictor.predict(scene, frame, fraction)
                samples.append((fraction, prediction.metrics))
                regression_work += prediction.stats.work_units
            regression_metrics = exponential_regression(samples)
            baseline = predictor.predict(scene, frame, 0.4)

            reg_errors = metric_errors(regression_metrics, full)
            base_errors = metric_errors(baseline.metrics, full)
            for name in METRICS:
                total += 1
                if reg_errors[name] > base_errors[name]:
                    worse += 1
            work_ratio_sum += regression_work / baseline.stats.work_units
            mae_pairs.append((mae(reg_errors), mae(base_errors)))
            rows.append(
                [scene_name, mae(reg_errors), mae(base_errors),
                 regression_work / baseline.stats.work_units]
            )

        table = format_table(
            ["scene", "regression MAE %", "40% baseline MAE %", "work ratio"],
            rows,
            title=(
                "Fig 20: exponential regression (20/30/40% runs) vs direct "
                "40% linear extrapolation (RTX 2060)"
            ),
            precision=1,
        )
        share_worse = worse / total * 100.0
        note = (
            f"\nregression worse on {share_worse:.0f}% of (scene, metric) "
            "pairs (paper: 62% on RTX 2060) at "
            f"{work_ratio_sum / len(SCENE_NAMES):.1f}x the simulation work"
        )
        mean_ratio = sum(r / max(b, 1e-9) for r, b in mae_pairs) / len(mae_pairs)
        return (
            table + note,
            share_worse,
            work_ratio_sum / len(SCENE_NAMES),
            mean_ratio,
        )

    report, share_worse, work_ratio, mean_ratio = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("fig20_regression", report)
    print("\n" + report)

    # Shape 1: "regression does not provide a clear advantage" — it loses
    # on a noticeable share of (scene, metric) pairs and never transforms
    # accuracy.  (Our deterministic substrate yields smoother error curves
    # than the paper's noisy testbed, so the worse-share lands below their
    # 62% — see EXPERIMENTS.md.)
    assert share_worse > 10.0
    assert mean_ratio > 0.5  # MAE not even halved on average
    # Shape 2: it costs clearly more simulation work than the baseline
    # ("while requiring running the simulator three times").
    assert work_ratio > 1.8
