"""Controlled test of the paper's central accuracy hypothesis.

Sections IV-C/IV-D repeatedly tie Zatel's accuracy to GPU saturation:
"the better the scene saturates the GPU, the more accurate Zatel
estimates performance metrics" (from Fig. 14's running-time correlation)
and "the uniformly warmer the heatmap is ... the more accurate Zatel will
be" (Table III).  The library scenes support this anecdotally; the
parametric :func:`~repro.scene.generators.saturation_scene` family turns
it into a controlled sweep: one knob scales geometry density, frame
coverage and path depth together.

Expected shapes: workload size (full-sim work units) grows monotonically
with the level, and Zatel's cycles error at high saturation is several
times lower than at the under-saturated end.
"""

import numpy as np

from repro.core import Zatel
from repro.gpu import MOBILE_SOC, CycleSimulator, compile_kernel
from repro.harness import format_table, metric_errors, save_result
from repro.scene.generators import saturation_scene
from repro.tracer import FunctionalTracer, RenderSettings

LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)
SIZE = 96  # smaller plane: five fresh workloads are traced in-bench


def test_saturation_accuracy_hypothesis(benchmark):
    def experiment():
        settings = RenderSettings(width=SIZE, height=SIZE)
        rows = []
        work = {}
        cycle_errors = {}
        for level in LEVELS:
            scene = saturation_scene(level, seed=3)
            frame = FunctionalTracer(scene, settings).trace_frame()
            warps = compile_kernel(
                frame, settings.all_pixels(), scene.addresses
            )
            full = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)
            result = Zatel(MOBILE_SOC).predict(scene, frame)
            errors = metric_errors(result.metrics, full)
            work[level] = full.work_units
            cycle_errors[level] = errors["cycles"]
            rows.append(
                [level, scene.triangle_count(), full.work_units / 1000.0,
                 result.mean_fraction(), errors["cycles"], errors["ipc"]]
            )
        table = format_table(
            ["level", "triangles", "kilo work", "traced frac",
             "cycles err %", "ipc err %"],
            rows,
            title=(
                "Saturation hypothesis: Zatel accuracy vs controlled GPU "
                "saturation (Mobile SoC, parametric clutter scenes)"
            ),
            precision=2,
        )
        return table, work, cycle_errors

    report, work, cycle_errors = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("saturation_hypothesis", report)
    print("\n" + report)

    # Shape 1: the knob actually scales the workload monotonically.
    sizes = [work[level] for level in LEVELS]
    assert all(a < b for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] > 10 * sizes[0]
    # Shape 2: accuracy improves with saturation — the top half of the
    # sweep is predicted clearly better than the under-saturated floor.
    low = np.mean([cycle_errors[l] for l in LEVELS[:2]])
    high = np.mean([cycle_errors[l] for l in LEVELS[-2:]])
    assert high < low
