"""Fig. 11 — RTX 2060 performance improvement over the Mobile SoC.

For every metric, the paper normalizes the RTX 2060 value to the Mobile
SoC baseline twice — once from full Vulkan-Sim runs and once from Zatel's
predictions — and shows the two bars track each other (max divergence
37.6% for L2 miss rate, min 0.6% for L1D).  The design-space use case:
Zatel preserves *relative* trends across architectures.

Expected shape: the Zatel-predicted ratio and the full-simulation ratio
agree in direction for the headline metrics (cycles drop on RTX 2060, IPC
rises).
"""

from repro.gpu import METRICS, MOBILE_SOC, RTX_2060
from repro.harness import format_table, percent_error, save_result

from common import workload_for


def test_fig11_rtx_over_mobile(benchmark, runner):
    workload = workload_for("PARK")

    def experiment():
        full_mobile = runner.full_sim(workload, MOBILE_SOC)
        full_rtx = runner.full_sim(workload, RTX_2060)
        zatel_mobile = runner.zatel(workload, MOBILE_SOC)
        zatel_rtx = runner.zatel(workload, RTX_2060)

        rows = []
        for name in METRICS:
            sim_ratio = _ratio(full_rtx.metric(name), full_mobile.metric(name))
            zatel_ratio = _ratio(
                zatel_rtx.metrics[name], zatel_mobile.metrics[name]
            )
            rows.append(
                [name, sim_ratio, zatel_ratio,
                 percent_error(zatel_ratio, sim_ratio)]
            )
        return format_table(
            ["metric", "sim RTX/Mobile", "Zatel RTX/Mobile", "divergence %"],
            rows,
            title=(
                "Fig 11: RTX 2060 normalized to Mobile SoC on PARK — "
                "full simulation vs Zatel prediction"
            ),
        )

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig11_arch_comparison", table)
    print("\n" + table)

    # Direction-preservation shape: both the simulator and Zatel agree the
    # RTX 2060 finishes PARK in fewer cycles with higher aggregate IPC.
    full_mobile = runner.full_sim(workload, MOBILE_SOC)
    full_rtx = runner.full_sim(workload, RTX_2060)
    zatel_mobile = runner.zatel(workload, MOBILE_SOC)
    zatel_rtx = runner.zatel(workload, RTX_2060)
    assert full_rtx.cycles < full_mobile.cycles
    assert zatel_rtx.metrics["cycles"] < zatel_mobile.metrics["cycles"]
    assert full_rtx.ipc > full_mobile.ipc
    assert zatel_rtx.metrics["ipc"] > zatel_mobile.metrics["ipc"]


def _ratio(rtx_value: float, mobile_value: float) -> float:
    if mobile_value == 0.0:
        return float("inf") if rtx_value else 1.0
    return rtx_value / mobile_value
