"""Table II — the GPU configurations for evaluation.

Prints both Table II configurations side by side together with the
downscaled forms Zatel derives from them (Mobile SoC / K4, RTX 2060 / K6),
demonstrating §III-C's automatic shared-resource scaling.
"""

from repro.core import choose_downscale_factor
from repro.gpu import MOBILE_SOC, RTX_2060
from repro.harness import format_table, save_result


def test_table2_gpu_configurations(benchmark):
    def experiment():
        rows = []
        for gpu in (MOBILE_SOC, RTX_2060):
            k = choose_downscale_factor(gpu)
            small = gpu.downscale(k)
            for label, cfg in ((gpu.name, gpu), (small.name, small)):
                rows.append(
                    [
                        label,
                        cfg.num_sms,
                        cfg.num_mem_partitions,
                        cfg.registers_per_sm,
                        cfg.resident_warps_per_sm,
                        cfg.rt_max_warps,
                        cfg.l1d.size_bytes // 1024,
                        cfg.l2_total_bytes // 1024,
                        cfg.num_mem_partitions
                        * cfg.dram_bytes_per_cycle_per_channel,
                    ]
                )
        return format_table(
            [
                "config", "SMs", "mem parts", "regs/SM", "res.warps",
                "RT warps", "L1D KB", "L2 KB total", "DRAM B/cyc",
            ],
            rows,
            title=(
                "Table II: GPU configurations (plus Zatel's downscaled "
                "derivations; L2 and DRAM bandwidth shrink automatically)"
            ),
        )

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("table2_configs", table)
    print("\n" + table)
    # The downscaled Mobile SoC must have 2 SMs / 1 partition (8/4 by K=4).
    assert "MobileSoC/K4" in table
    assert "RTX2060/K6" in table
