"""Gate a benchmark run against its committed baseline.

Dispatches on the payload's ``benchmark`` field:

* ``tracer_backends`` (``bench_tracer.py``) — CI's ``bench-regression``
  job runs::

      PYTHONPATH=src python benchmarks/bench_tracer.py --quick --out BENCH_tracer.json
      python benchmarks/check_bench_regression.py --current BENCH_tracer.json

* ``sim_backends`` (``bench_sim.py``) — CI's ``sim-bench`` job runs the
  same pattern against
  ``benchmarks/baselines/BENCH_sim.baseline.json``; correctness
  (fast-loop identity, exact counters, drift tolerance, deterministic
  work-unit speedup) gates, wall-clock only ever warns.

For the tracer payload the build fails on anything that cannot be
timing noise:

**Gating (exit 1):**

* correctness drift — a backend pair stops producing identical
  traces/images, or the end-to-end prediction metrics change from the
  baseline's (the model is deterministic: same spec, same numbers, on
  any machine);
* ray-count drift — the traced workload itself changed size;
* a *relative* slowdown beyond ``--max-slowdown`` (default 30%): the
  packet-vs-scalar speedup ratios are same-machine ratios, so a CI
  runner being slow overall cancels out — only a real regression in the
  batched backend moves them.

**Non-gating (warning only):** speedup wobble inside the tolerance
band.  Absolute seconds are never compared — they measure the runner,
not the code.

The baseline is regenerated on purpose (never silently) with::

    PYTHONPATH=src python benchmarks/bench_tracer.py --quick \
        --out benchmarks/baselines/BENCH_tracer.baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).parent / "baselines"
DEFAULT_BASELINE = BASELINE_DIR / "BENCH_tracer.baseline.json"

#: ``benchmark`` field -> committed baseline for that payload kind.
BASELINES_BY_KIND = {
    "tracer_backends": BASELINE_DIR / "BENCH_tracer.baseline.json",
    "sim_backends": BASELINE_DIR / "BENCH_sim.baseline.json",
}

#: Speedup ratios compared against the baseline, per scene entry.
SCENE_RATIOS = ("rays_per_sec_speedup", "render_speedup")


class _Report:
    """Collects PASS/WARN/FAIL lines; FAIL is what gates."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.failed = False
        self.warned = False

    def ok(self, message: str) -> None:
        self.lines.append(f"PASS  {message}")

    def warn(self, message: str) -> None:
        self.warned = True
        self.lines.append(f"WARN  {message}")

    def fail(self, message: str) -> None:
        self.failed = True
        self.lines.append(f"FAIL  {message}")


def _check_ratio(
    report: _Report, label: str, current: float, baseline: float,
    max_slowdown: float,
) -> None:
    """Gate on a relative speedup ratio dropping out of the band."""
    floor = baseline * (1.0 - max_slowdown)
    if current < floor:
        report.fail(
            f"{label}: {current:.2f}x is >{max_slowdown:.0%} below "
            f"baseline {baseline:.2f}x (floor {floor:.2f}x)"
        )
    elif current < baseline:
        report.warn(
            f"{label}: {current:.2f}x below baseline {baseline:.2f}x "
            f"(within {max_slowdown:.0%} tolerance; timing noise)"
        )
    else:
        report.ok(f"{label}: {current:.2f}x (baseline {baseline:.2f}x)")


def compare(current: dict, baseline: dict, max_slowdown: float) -> _Report:
    """All checks for one current-vs-baseline payload pair."""
    report = _Report()

    # -- correctness: exact, machine-independent, always gating ---------
    if not current.get("identical", False):
        report.fail("backends diverged (current payload identical=false)")
    else:
        report.ok("scalar and packet backends byte-identical")

    base_scenes = {e["scene"]: e for e in baseline.get("scenes", [])}
    for entry in current.get("scenes", []):
        name = entry["scene"]
        base = base_scenes.get(name)
        if base is None:
            report.warn(f"{name}: no baseline entry; skipping comparison")
            continue
        for backend in ("scalar", "packet"):
            rays, base_rays = entry[backend]["rays"], base[backend]["rays"]
            if rays != base_rays:
                report.fail(
                    f"{name}/{backend}: traced {rays} rays, baseline "
                    f"{base_rays} — workload drifted"
                )
            else:
                report.ok(f"{name}/{backend}: {rays} rays (unchanged)")
        for ratio in SCENE_RATIOS:
            _check_ratio(
                report, f"{name} {ratio}", entry[ratio], base[ratio],
                max_slowdown,
            )

    predict, base_predict = current.get("predict"), baseline.get("predict")
    if predict and base_predict:
        if not predict.get("identical_metrics", False):
            report.fail("predict: scalar/packet metric drift within the run")
        if predict["metrics"] != base_predict["metrics"]:
            drifted = sorted(
                k for k in predict["metrics"]
                if predict["metrics"].get(k) != base_predict["metrics"].get(k)
            )
            report.fail(
                f"predict: metrics drifted from baseline ({', '.join(drifted)})"
            )
        else:
            report.ok("predict: metrics match the committed baseline exactly")
        _check_ratio(
            report, "predict end-to-end speedup", predict["speedup"],
            base_predict["speedup"], max_slowdown,
        )
    return report


def _warn_ratio(
    report: _Report, label: str, current: float, baseline: float
) -> None:
    """Wall-clock ratio drift: informational only, never gates.

    The sim benchmark's wall-clock numbers measure the runner (CI
    containers may expose a single core, making parallel wall speedup
    structurally unreachable); the deterministic work-unit speedup is
    what gates instead.
    """
    if current < baseline * 0.7:
        report.warn(
            f"{label}: {current:.2f}x well below baseline {baseline:.2f}x "
            f"(non-gating: wall clock measures the runner)"
        )
    else:
        report.ok(f"{label}: {current:.2f}x (baseline {baseline:.2f}x)")


def compare_sim(current: dict, baseline: dict) -> _Report:
    """Checks for a ``bench_sim.py`` payload pair.

    Everything the simulator computes is deterministic, so determinism
    checks are *exact* comparisons against the committed baseline (JSON
    round-trips binary64 exactly); only wall-clock entries are treated
    as noise.
    """
    report = _Report()

    if not current.get("identical", False):
        report.fail(
            "sim backends diverged (fast!=reference, counter drift, or "
            "speedup below target; see bench_sim.py output)"
        )
    else:
        report.ok("fast loop identical, counters exact, drift in tolerance")

    target = current.get("target_work_unit_speedup", 2.0)
    headline = current.get("headline_work_unit_speedup", 0.0)
    if headline < target:
        report.fail(
            f"headline work-unit speedup {headline:.2f}x below the "
            f"{target:.1f}x target"
        )
    else:
        report.ok(
            f"headline work-unit speedup {headline:.2f}x (target {target:.1f}x)"
        )

    base_scenes = {e["scene"]: e for e in baseline.get("scenes", [])}
    for entry in current.get("scenes", []):
        name = entry["scene"]
        base = base_scenes.get(name)
        if base is None:
            report.warn(f"{name}: no baseline entry; skipping comparison")
            continue
        # Deterministic serial results: exact or the model changed.
        for field in ("cycles", "work_units"):
            ours, theirs = entry["serial"][field], base["serial"][field]
            if ours != theirs:
                report.fail(
                    f"{name}/serial: {field} {ours} != baseline {theirs} "
                    f"— simulator output drifted"
                )
            else:
                report.ok(f"{name}/serial: {field} unchanged")
        _warn_ratio(
            report, f"{name} fast-loop speedup", entry["fast_speedup"],
            base["fast_speedup"],
        )
        for shards, sharded in sorted(entry.get("sharded", {}).items()):
            base_sharded = base.get("sharded", {}).get(shards)
            if base_sharded is None:
                report.warn(f"{name} x{shards}: no baseline entry; skipping")
                continue
            for field in (
                "cycles", "work_units", "shard_work_units", "epochs",
                "work_unit_speedup", "drift",
            ):
                ours, theirs = sharded[field], base_sharded[field]
                if ours != theirs:
                    report.fail(
                        f"{name} x{shards}: {field} {ours} != baseline "
                        f"{theirs} — sharded backend no longer deterministic"
                    )
                else:
                    report.ok(f"{name} x{shards}: {field} unchanged")
            _warn_ratio(
                report, f"{name} x{shards} wall speedup",
                sharded["wall_speedup"], base_sharded["wall_speedup"],
            )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", required=True,
        help="fresh bench_tracer.py output JSON to check",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=(
            "committed baseline JSON (default: picked from baselines/ by "
            "the current payload's 'benchmark' field)"
        ),
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=0.30, metavar="FRACTION",
        help=(
            "gating threshold for relative speedup-ratio drops "
            "(default 0.30 = 30%%; smaller drops only warn)"
        ),
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())
    kind = current.get("benchmark", "tracer_backends")
    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else BASELINES_BY_KIND.get(kind, DEFAULT_BASELINE)
    )
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("benchmark", kind) != kind:
        print(
            f"baseline {baseline_path} is for "
            f"{baseline.get('benchmark')!r}, current payload is {kind!r}",
            file=sys.stderr,
        )
        return 2
    if kind == "sim_backends":
        report = compare_sim(current, baseline)
    else:
        report = compare(current, baseline, args.max_slowdown)
    print("\n".join(report.lines))
    if report.failed:
        print("\nbench-regression: FAILED (see FAIL lines above)",
              file=sys.stderr)
        return 1
    suffix = " (with warnings)" if report.warned else ""
    print(f"\nbench-regression: OK{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
