"""Shared experiment drivers for the benchmark suite.

Each ``bench_*`` module reproduces one table or figure from the paper's
evaluation (Section IV); the sweeps several figures share are computed here
once per session (see ``conftest.py``).  All speedups are reported from the
simulator's deterministic ``work_units`` (see DESIGN.md's substitution
table); host seconds are tracked alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SweepPoint, ZatelConfig
from repro.core.stages.sweep import SweepResult
from repro.gpu import MOBILE_SOC, RTX_2060, GPUConfig, SimulationStats
from repro.harness import Runner, Workload
from repro.scene import SCENE_NAMES

__all__ = [
    "CONFIGS",
    "PERCENTAGES",
    "SamplingSweep",
    "DownscaleSweep",
    "run_sampling_sweep",
    "run_downscale_sweep",
    "workload_for",
]

#: The two Table II configurations every experiment runs on.
CONFIGS: tuple[GPUConfig, ...] = (MOBILE_SOC, RTX_2060)

#: Section IV-D's sweep: {10%, 20%, ..., 90%} of pixels traced.
PERCENTAGES: tuple[int, ...] = tuple(range(10, 100, 10))


def workload_for(scene_name: str) -> Workload:
    """The canonical benchmark workload for a scene."""
    return Workload(scene_name)


@dataclass
class SamplingSweep:
    """Results of the pixel-fraction sweep for one GPU configuration.

    ``points[scene][perc]`` holds the sampling-only prediction at ``perc``
    percent of pixels; ``full[scene]`` the ground truth.
    """

    gpu: GPUConfig
    points: dict[str, dict[int, object]]
    full: dict[str, SimulationStats]
    #: Planner execution audit (stage counters, dedup stats); ``None``
    #: only for hand-built sweeps.
    sweep: SweepResult | None = None


def run_sampling_sweep(
    runner: Runner,
    gpu: GPUConfig,
    scenes: tuple[str, ...] = SCENE_NAMES,
    percentages: tuple[int, ...] = PERCENTAGES,
    seed: int = 0,
) -> SamplingSweep:
    """Section IV-D's experiment: sample without downscaling, extrapolate.

    The whole grid executes as one deduplicated stage DAG: every
    percentage of a scene shares that scene's profile and quantization,
    so those stages run once per scene instead of once per point.
    """
    config = ZatelConfig(seed=seed)
    grid = [
        (scene_name, perc)
        for scene_name in scenes
        for perc in percentages
    ]
    sweep_points = [
        SweepPoint(
            scene_name, gpu, config=config, mode="sampling", fraction=perc / 100.0
        )
        for scene_name, perc in grid
    ]
    sweep = runner.sweep(sweep_points)
    points: dict[str, dict[int, object]] = {}
    for (scene_name, perc), point in zip(grid, sweep_points):
        points.setdefault(scene_name, {})[perc] = sweep.value(point)
    full = {
        scene_name: runner.full_sim(workload_for(scene_name), gpu)
        for scene_name in scenes
    }
    return SamplingSweep(gpu=gpu, points=points, full=full, sweep=sweep)


@dataclass
class DownscaleSweep:
    """Results of the downscale-factor sweep for one GPU configuration.

    ``results[(scene, division, k)]`` holds the Zatel result with *all*
    pixels of each group traced (isolating the downscaling optimization,
    Section IV-E); ``full[scene]`` the ground truth.
    """

    gpu: GPUConfig
    results: dict[tuple[str, str, int], object]
    full: dict[str, SimulationStats]
    factors: tuple[int, ...]
    #: Planner execution audit (stage counters, dedup stats); ``None``
    #: only for hand-built sweeps.
    sweep: SweepResult | None = None


def run_downscale_sweep(
    runner: Runner,
    gpu: GPUConfig,
    scenes: tuple[str, ...],
    divisions: tuple[str, ...] = ("fine", "coarse"),
) -> DownscaleSweep:
    """Section IV-E's experiment: groups on downscaled GPUs, no sampling.

    Planned as one stage DAG: the (division, K) grid of a scene shares
    one profile/quantize, and the two divisions share them too — only
    partition/select/simulate/combine differ per cell.
    """
    from repro.core import valid_factors

    factors = tuple(k for k in valid_factors(gpu) if k > 1)
    grid = [
        (scene_name, division, k)
        for scene_name in scenes
        for division in divisions
        for k in factors
    ]
    sweep_points = [
        SweepPoint(
            scene_name,
            gpu,
            config=ZatelConfig(
                division=division,
                fraction_override=1.0,  # trace every pixel of each group
                downscale_factor=k,
            ),
        )
        for scene_name, division, k in grid
    ]
    sweep = runner.sweep(sweep_points)
    results: dict[tuple[str, str, int], object] = {
        cell: sweep.value(point) for cell, point in zip(grid, sweep_points)
    }
    full = {
        scene_name: runner.full_sim(workload_for(scene_name), gpu)
        for scene_name in scenes
    }
    return DownscaleSweep(
        gpu=gpu, results=results, full=full, factors=factors, sweep=sweep
    )
