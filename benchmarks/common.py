"""Shared experiment drivers for the benchmark suite.

Each ``bench_*`` module reproduces one table or figure from the paper's
evaluation (Section IV); the sweeps several figures share are computed here
once per session (see ``conftest.py``).  All speedups are reported from the
simulator's deterministic ``work_units`` (see DESIGN.md's substitution
table); host seconds are tracked alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import Zatel, ZatelConfig
from repro.gpu import MOBILE_SOC, RTX_2060, GPUConfig, SimulationStats
from repro.harness import Runner, Workload
from repro.models import SamplingPredictor
from repro.scene import SCENE_NAMES

__all__ = [
    "CONFIGS",
    "PERCENTAGES",
    "SamplingSweep",
    "DownscaleSweep",
    "run_sampling_sweep",
    "run_downscale_sweep",
    "workload_for",
]

#: The two Table II configurations every experiment runs on.
CONFIGS: tuple[GPUConfig, ...] = (MOBILE_SOC, RTX_2060)

#: Section IV-D's sweep: {10%, 20%, ..., 90%} of pixels traced.
PERCENTAGES: tuple[int, ...] = tuple(range(10, 100, 10))


def workload_for(scene_name: str) -> Workload:
    """The canonical benchmark workload for a scene."""
    return Workload(scene_name)


@dataclass
class SamplingSweep:
    """Results of the pixel-fraction sweep for one GPU configuration.

    ``points[scene][perc]`` holds the sampling-only prediction at ``perc``
    percent of pixels; ``full[scene]`` the ground truth.
    """

    gpu: GPUConfig
    points: dict[str, dict[int, object]]
    full: dict[str, SimulationStats]


def run_sampling_sweep(
    runner: Runner,
    gpu: GPUConfig,
    scenes: tuple[str, ...] = SCENE_NAMES,
    percentages: tuple[int, ...] = PERCENTAGES,
    seed: int = 0,
) -> SamplingSweep:
    """Section IV-D's experiment: sample without downscaling, extrapolate."""
    points: dict[str, dict[int, object]] = {}
    full: dict[str, SimulationStats] = {}
    for scene_name in scenes:
        workload = workload_for(scene_name)
        scene = runner.scene(scene_name)
        frame = runner.frame(workload)
        full[scene_name] = runner.full_sim(workload, gpu)
        predictor = SamplingPredictor(gpu, seed=seed)
        points[scene_name] = {
            perc: predictor.predict(scene, frame, perc / 100.0)
            for perc in percentages
        }
    return SamplingSweep(gpu=gpu, points=points, full=full)


@dataclass
class DownscaleSweep:
    """Results of the downscale-factor sweep for one GPU configuration.

    ``results[(scene, division, k)]`` holds the Zatel result with *all*
    pixels of each group traced (isolating the downscaling optimization,
    Section IV-E); ``full[scene]`` the ground truth.
    """

    gpu: GPUConfig
    results: dict[tuple[str, str, int], object]
    full: dict[str, SimulationStats]
    factors: tuple[int, ...]


def run_downscale_sweep(
    runner: Runner,
    gpu: GPUConfig,
    scenes: tuple[str, ...],
    divisions: tuple[str, ...] = ("fine", "coarse"),
) -> DownscaleSweep:
    """Section IV-E's experiment: groups on downscaled GPUs, no sampling."""
    from repro.core import valid_factors

    factors = tuple(k for k in valid_factors(gpu) if k > 1)
    results: dict[tuple[str, str, int], object] = {}
    full: dict[str, SimulationStats] = {}
    for scene_name in scenes:
        workload = workload_for(scene_name)
        full[scene_name] = runner.full_sim(workload, gpu)
        for division in divisions:
            for k in factors:
                config = ZatelConfig(
                    division=division,
                    fraction_override=1.0,  # trace every pixel of each group
                    downscale_factor=k,
                )
                results[(scene_name, division, k)] = runner.zatel(
                    workload, gpu, config
                )
    return DownscaleSweep(gpu=gpu, results=results, full=full, factors=factors)
