"""Cycle-simulator benchmark: fast serial loop vs reference vs sharded.

Times the cycle simulation *alone* (tracing and kernel compilation happen
once per scene outside the timed region) for three engines:

* ``reference`` — the original straight-line event loop
  (:meth:`~repro.gpu.simulator.CycleSimulator.run_reference`);
* ``serial`` — the fast dispatch-table loop behind the default backend;
* ``sharded`` — the epoch-synchronized parallel backend at each
  requested shard count.

Correctness rides along with the timings and is what gates CI:

* the fast loop must be *byte-identical* to the reference loop;
* sharding must keep the additive counters exact and hold every
  timing-derived metric inside the documented drift tolerance
  (:data:`repro.gpu.parallel.DRIFT_TOLERANCE`);
* the deterministic **work-unit speedup** (serial work over the largest
  shard's work) must reach 2x at four shards on the headline scene —
  the machine-independent stand-in for parallel speedup, since CI
  containers may expose a single core.

Wall-clock seconds and ratios are recorded but never gate.  Results are
written to ``BENCH_sim.json``; CI compares them against
``benchmarks/baselines/BENCH_sim.baseline.json`` via
``check_bench_regression.py``.

.. code-block:: bash

    PYTHONPATH=src python benchmarks/bench_sim.py --quick
    PYTHONPATH=src python benchmarks/bench_sim.py --profile sim_profile.txt
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.gpu import MOBILE_SOC, CycleSimulator, ShardedCycleSimulator, compile_kernel
from repro.gpu.parallel import DRIFT_TOLERANCE, EXACT_COUNTERS, plan_shards
from repro.scene import make_scene
from repro.tracer import FunctionalTracer, RenderSettings

#: The headline scene/plane of the acceptance target (>= 2x work-unit
#: speedup at four shards).
HEADLINE_SCENE = "SPRNG"
SIZE = 128
#: Traversal-heavy scenes added in full (non ``--quick``) mode.
FULL_SCENES = ("BUNNY", "SPNZA")

#: Shard counts exercised in full mode; quick mode keeps only the last.
SHARD_COUNTS = (2, 4)

#: Work-unit speedup the headline scene must reach at four shards.
TARGET_WORK_UNIT_SPEEDUP = 2.0


def _compile(name: str, size: int):
    scene = make_scene(name)
    settings = RenderSettings(
        width=size, height=size, samples_per_pixel=1, seed=0
    )
    frame = FunctionalTracer(scene, settings).trace_frame()
    return scene, compile_kernel(frame, settings.all_pixels(), scene.addresses)


def _best_of(repeats: int, fn, warps):
    """Best-of-N wall clock plus the (deterministic) final stats."""
    best = float("inf")
    stats = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        stats = fn(list(warps))
        best = min(best, time.perf_counter() - t0)
    return best, stats


def _stats_equal(a, b) -> bool:
    return replace(a, host_seconds=0.0) == replace(b, host_seconds=0.0)


def _drift(sharded, exact) -> dict:
    return {
        name: abs(getattr(sharded, name) - getattr(exact, name))
        / max(abs(getattr(exact, name)), 1e-12)
        for name in DRIFT_TOLERANCE
    }


def bench_scene(name: str, size: int, shard_counts, repeats: int) -> dict:
    """One scene: fast vs reference identity, then each shard count."""
    scene, warps = _compile(name, size)
    sim = CycleSimulator(MOBILE_SOC, scene.addresses)

    ref_seconds, ref_stats = _best_of(repeats, sim.run_reference, warps)
    fast_seconds, fast_stats = _best_of(repeats, sim.run, warps)
    entry: dict = {
        "scene": name,
        "width": size,
        "height": size,
        "warps": len(warps),
        "reference": {"seconds": ref_seconds},
        "serial": {
            "seconds": fast_seconds,
            "cycles": fast_stats.cycles,
            "work_units": fast_stats.work_units,
        },
        "fast_identical": _stats_equal(fast_stats, ref_stats),
        "fast_speedup": ref_seconds / fast_seconds,
        "sharded": {},
    }

    for shards in shard_counts:
        config = replace(MOBILE_SOC, sim_backend="sharded", sim_shards=shards)
        parallel = ShardedCycleSimulator(config, scene.addresses)
        seconds, stats = _best_of(repeats, parallel.run, warps)
        run = parallel.last_run
        drift = _drift(stats, fast_stats)
        entry["sharded"][str(shards)] = {
            "seconds": seconds,
            "planned_shards": run["shards"],
            "epochs": run["epochs"],
            "mode": run["mode"],
            "cycles": stats.cycles,
            "work_units": stats.work_units,
            "shard_work_units": run["shard_work_units"],
            # Deterministic parallel-speedup proxy: the serial work
            # divided by the critical path (the busiest shard).
            "work_unit_speedup": fast_stats.work_units
            / max(run["shard_work_units"]),
            "wall_speedup": fast_seconds / seconds,
            "exact_counters_match": all(
                getattr(stats, field) == getattr(fast_stats, field)
                for field in EXACT_COUNTERS
            ),
            "drift": drift,
            "drift_ok": all(
                drift[metric] <= DRIFT_TOLERANCE[metric] for metric in drift
            ),
        }
    return entry


def run(quick: bool) -> dict:
    """The whole experiment; ``quick`` trims scenes and repeats for CI."""
    scenes = (HEADLINE_SCENE,) if quick else (HEADLINE_SCENE,) + FULL_SCENES
    shard_counts = SHARD_COUNTS[-1:] if quick else SHARD_COUNTS
    repeats = 1 if quick else 3
    payload = {
        "benchmark": "sim_backends",
        "quick": quick,
        "gpu": MOBILE_SOC.name,
        "planned_shards_at_max": plan_shards(
            replace(MOBILE_SOC, sim_shards=SHARD_COUNTS[-1])
        ),
        "drift_tolerance": dict(DRIFT_TOLERANCE),
        "target_work_unit_speedup": TARGET_WORK_UNIT_SPEEDUP,
        "scenes": [
            bench_scene(name, SIZE, shard_counts, repeats) for name in scenes
        ],
    }
    headline = payload["scenes"][0]["sharded"][str(SHARD_COUNTS[-1])]
    payload["headline_work_unit_speedup"] = headline["work_unit_speedup"]
    payload["identical"] = bool(
        all(e["fast_identical"] for e in payload["scenes"])
        and all(
            s["exact_counters_match"] and s["drift_ok"]
            for e in payload["scenes"]
            for s in e["sharded"].values()
        )
        and payload["headline_work_unit_speedup"] >= TARGET_WORK_UNIT_SPEEDUP
    )
    return payload


def profile_serial(out_path: str) -> None:
    """cProfile the fast serial engine on the headline scene (nightly
    artifact: where do cycle-sim milliseconds go)."""
    import cProfile
    import io
    import pstats

    scene, warps = _compile(HEADLINE_SCENE, SIZE)
    sim = CycleSimulator(MOBILE_SOC, scene.addresses)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(list(warps))
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(40)
    stats.sort_stats("tottime").print_stats(40)
    Path(out_path).write_text(buffer.getvalue())
    print(f"wrote profile to {out_path}")


def _report(payload: dict) -> str:
    lines = []
    for e in payload["scenes"]:
        lines.append(
            f"{e['scene']} {e['width']}x{e['height']} ({e['warps']} warps): "
            f"reference {e['reference']['seconds'] * 1e3:.1f}ms, "
            f"fast {e['serial']['seconds'] * 1e3:.1f}ms "
            f"({e['fast_speedup']:.2f}x, identical={e['fast_identical']})"
        )
        for shards, s in sorted(e["sharded"].items(), key=lambda kv: int(kv[0])):
            lines.append(
                f"  sharded x{shards} ({s['mode']}, {s['epochs']} epochs): "
                f"{s['seconds'] * 1e3:.1f}ms wall, "
                f"work-unit speedup {s['work_unit_speedup']:.2f}x, "
                f"exact={s['exact_counters_match']}, "
                f"drift_ok={s['drift_ok']} "
                f"(cycles drift {s['drift']['cycles']:.3%})"
            )
    lines.append(
        f"headline work-unit speedup at {SHARD_COUNTS[-1]} shards: "
        f"{payload['headline_work_unit_speedup']:.2f}x "
        f"(target {payload['target_work_unit_speedup']:.1f}x)"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="headline scene, max shard count only (the CI gating mode)",
    )
    parser.add_argument(
        "--out", default="BENCH_sim.json", help="output JSON path"
    )
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="also cProfile the fast serial engine and write the hot-path "
             "report to PATH (nightly artifact)",
    )
    args = parser.parse_args(argv)
    payload = run(args.quick)
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(_report(payload))
    print(f"wrote {args.out}")
    if args.profile:
        profile_serial(args.profile)
    if not payload["identical"]:
        print("DIVERGENCE: simulator backends disagree", file=sys.stderr)
        return 1
    return 0


def test_sim_backends(benchmark):
    """Pytest entry: quick mode must hold every correctness gate."""
    payload = benchmark.pedantic(lambda: run(quick=True), rounds=1, iterations=1)
    assert all(e["fast_identical"] for e in payload["scenes"])
    for entry in payload["scenes"]:
        for s in entry["sharded"].values():
            assert s["exact_counters_match"]
            assert s["drift_ok"]
    assert payload["headline_work_unit_speedup"] >= TARGET_WORK_UNIT_SPEEDUP


if __name__ == "__main__":
    sys.exit(main())
