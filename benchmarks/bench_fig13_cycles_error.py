"""Fig. 13 — simulation-cycles error vs. percentage of pixels traced.

For each scene, the sampling-only model (no downscaling) runs at
{10%..90%} of pixels on the RTX 2060 and the absolute error of the
linearly extrapolated cycle count is reported.

Expected shapes (paper): errors decay roughly exponentially as the traced
percentage grows; errors vary widely across scenes at 10%; SPRNG is the
pathological outlier (its rays terminate early, the GPU never saturates,
so linear extrapolation grossly over-predicts — ">100% absolute error").
"""

from repro.harness import format_table, save_result
from repro.scene import SCENE_NAMES

from common import PERCENTAGES


def test_fig13_cycles_error_per_scene(benchmark, sampling_sweeps):
    sweep = sampling_sweeps["RTX2060"]
    mobile_sweep = sampling_sweeps["MobileSoC"]

    def cycles_errors(s):
        errors = {}
        for scene_name in SCENE_NAMES:
            full_cycles = s.full[scene_name].cycles
            for perc in PERCENTAGES:
                prediction = s.points[scene_name][perc]
                errors[(scene_name, perc)] = (
                    abs(prediction.metrics["cycles"] - full_cycles)
                    / full_cycles
                    * 100.0
                )
        return errors

    def render(errors, title):
        rows = [
            [scene_name] + [errors[(scene_name, p)] for p in PERCENTAGES]
            for scene_name in SCENE_NAMES
        ]
        return format_table(
            ["scene"] + [f"{p}%" for p in PERCENTAGES],
            rows,
            title=title,
            precision=1,
        )

    def experiment():
        from repro.viz import line_chart

        errors = cycles_errors(sweep)
        report = render(
            errors,
            "Fig 13: simulation cycles absolute error (%) per scene vs "
            "pixels traced (RTX 2060, no downscaling)",
        )
        report += "\n\n" + line_chart(
            list(PERCENTAGES),
            {
                scene: [max(errors[(scene, p)], 0.1) for p in PERCENTAGES]
                for scene in ("SPRNG", "BUNNY", "BATH")
            },
            log_y=True,
            title="error decay (log scale), selected scenes",
        )
        # The paper also quotes Mobile SoC numbers in prose; print both.
        report += "\n\n" + render(
            cycles_errors(mobile_sweep),
            "Fig 13 companion: same experiment on the Mobile SoC",
        )
        return report, errors

    report, errors = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig13_cycles_error", report)
    print("\n" + report)

    # Shape 1: for every scene the error at 90% is below the error at 10%.
    for scene_name in SCENE_NAMES:
        assert errors[(scene_name, 90)] <= errors[(scene_name, 10)]
    # Shape 2: SPRNG at 10% shows a large error (paper: >100%), and it is
    # among the worst scenes because the GPU never saturates.
    assert errors[("SPRNG", 10)] > 50.0
    # Shape 3: by 90% traced, every scene is within a tight band.
    assert max(errors[(s, 90)] for s in SCENE_NAMES) < 30.0
