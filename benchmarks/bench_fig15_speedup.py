"""Fig. 15 + equation (4) — running-time speedup vs. pixels traced.

Each scene's speedup over the full simulation is reported per percentage;
all scenes share similar speedups at a given percentage and converge
towards 1x at 100%.  The paper fits the power law
``speedup(perc) = 181 * perc**-1.15`` (eq. 4); we fit the same
two-parameter model to our measurements and print both.

Expected shapes: speedup decreases monotonically with percentage; a power
law with negative exponent fits well; scenes cluster (low spread).
"""

import numpy as np

from repro.core import fit_power_law, power_law
from repro.harness import format_table, save_result
from repro.scene import SCENE_NAMES

from common import PERCENTAGES


def test_fig15_speedup_per_scene(benchmark, sampling_sweeps):
    sweep = sampling_sweeps["RTX2060"]

    def experiment():
        rows = []
        speedups = {}
        for scene_name in SCENE_NAMES:
            full = sweep.full[scene_name]
            row = [scene_name]
            for perc in PERCENTAGES:
                s = sweep.points[scene_name][perc].speedup_vs(full)
                speedups[(scene_name, perc)] = s
                row.append(s)
            rows.append(row)

        # Fit eq.(4)'s model over every (perc, speedup) sample.
        xs = np.array([p for (_, p) in speedups], dtype=float)
        ys = np.array(list(speedups.values()), dtype=float)
        a, b = fit_power_law(xs, ys)
        fit_row = ["fit a*perc^b"] + [
            float(power_law(np.array([p]), a, b)[0]) for p in PERCENTAGES
        ]
        rows.append(fit_row)

        table = format_table(
            ["scene"] + [f"{p}%" for p in PERCENTAGES],
            rows,
            title="Fig 15: running-time speedup per scene (RTX 2060)",
            precision=2,
        )
        note = (
            f"\nfitted speedup(perc) = {a:.1f} * perc^{b:.2f}   "
            "(paper eq. 4: 181 * perc^-1.15)"
        )
        return table + note, speedups, (a, b)

    report, speedups, (a, b) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("fig15_speedup", report)
    print("\n" + report)

    # Shape 1: decreasing in percentage for every scene.
    for scene_name in SCENE_NAMES:
        series = [speedups[(scene_name, p)] for p in PERCENTAGES]
        assert series[0] > series[-1]
    # Shape 2: converges towards ~1x at high percentages.
    assert 0.7 < np.mean([speedups[(s, 90)] for s in SCENE_NAMES]) < 2.0
    # Shape 3: the fitted exponent is negative (power-law decay, eq. 4).
    assert b < -0.5
