"""Table III — tuning the distribution method and section-block size.

The paper tests four block sizes (32x1, 32x2, 32x16, 32x32) and three
distributions (uniform, lintmp, exptmp) on the SHIP / WKND / BUNNY
temperature triplet (Fig. 12), tracing only 2-4% of pixels and averaging
five runs.  For every metric it reports the best-performing combination
and its MAE, concluding that block size has negligible impact, uniform is
the overall pick and exptmp helps RT metrics.

Expected shapes: scene MAEs ordered SHIP (coldest, worst) > WKND > BUNNY
(warmest, best); no block size dominating.
"""

import itertools

from repro.gpu import METRICS, MOBILE_SOC
from repro.harness import format_table, mae, metric_errors, save_result
from repro.models import SamplingPredictor
from repro.scene import TUNING_SCENES

from common import workload_for

BLOCK_SIZES = ((32, 1), (32, 2), (32, 16), (32, 32))
DISTRIBUTIONS = ("uniform", "lintmp", "exptmp")
RUNS = 5
#: The paper traces 2-4% of 512x512 pixels (~5-10k pixels).  At this
#: repository's 128x128 experiment plane the same *fraction* would be a few
#: hundred pixels — far too few warps to exercise the GPU at all — so the
#: fraction is scale-adjusted to keep the absolute sample in the same
#: saturation regime (see EXPERIMENTS.md).
FRACTION = 0.10


def test_table3_distribution_and_block_tuning(benchmark, runner):
    def experiment():
        scene_rows = []
        scene_maes = {}
        rt_errors = {}
        cycles_errors = {}
        for scene_name in TUNING_SCENES:
            workload = workload_for(scene_name)
            scene = runner.scene(scene_name)
            frame = runner.frame(workload)
            full = runner.full_sim(workload, MOBILE_SOC)

            # errors[(distribution, block)][metric] = mean over RUNS seeds
            combo_errors = {}
            for distribution, block in itertools.product(
                DISTRIBUTIONS, BLOCK_SIZES
            ):
                accumulated = {name: 0.0 for name in METRICS}
                for seed in range(RUNS):
                    predictor = SamplingPredictor(
                        MOBILE_SOC,
                        distribution=distribution,
                        block_width=block[0],
                        block_height=block[1],
                        seed=seed,
                    )
                    prediction = predictor.predict(scene, frame, FRACTION)
                    errors = metric_errors(prediction.metrics, full)
                    for name in METRICS:
                        accumulated[name] += errors[name] / RUNS
                combo_errors[(distribution, block)] = accumulated

            best_per_metric = {}
            for name in METRICS:
                best = min(combo_errors, key=lambda c: combo_errors[c][name])
                values = sorted(combo_errors[c][name] for c in combo_errors)
                # "any" when the top options are within 10% of each other.
                spread_small = values[-1] <= values[0] * 1.10 + 1.0
                best_dist = "any" if spread_small else best[0]
                best_block = "any" if spread_small else f"{best[1][0]}x{best[1][1]}"
                best_per_metric[name] = (
                    best_dist, best_block, combo_errors[best][name]
                )
                scene_rows.append(
                    [scene_name, name, best_dist, best_block,
                     combo_errors[best][name]]
                )
            scene_maes[scene_name] = mae(
                {name: best_per_metric[name][2] for name in METRICS}
            )
            rt_errors[scene_name] = best_per_metric["rt_efficiency"][2]
            cycles_errors[scene_name] = best_per_metric["cycles"][2]

        table = format_table(
            ["scene", "metric", "best dist", "best section", "MAE %"],
            scene_rows,
            title=(
                "Table III: best distribution and section size per metric "
                f"({int(FRACTION * 100)}% pixels, {RUNS} runs averaged, Mobile SoC)"
            ),
        )
        summary = "\n".join(
            f"{scene}: best-combo MAE {value:.1f}%"
            for scene, value in scene_maes.items()
        )
        summary += (
            "\n(paper: SHIP 21.0%, WKND 13.9%, BUNNY 8.5% — warmer scenes "
            "predict better)"
        )
        return table + "\n\n" + summary, scene_maes, rt_errors, cycles_errors

    (report, scene_maes, rt_errors, cycles_errors) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("table3_tuning", report)
    print("\n" + report)

    # Shapes: the warmer the scene, the better its RT-unit efficiency is
    # predicted (paper: SHIP 19.9% > BUNNY 8.1% > WKND 3.9%, with warm
    # scenes clearly beating SHIP), and BUNNY's simulation cycles predict
    # far better than the cold SHIP's (paper: 13.6% vs 73.1%).
    assert rt_errors["BUNNY"] <= rt_errors["SHIP"]
    assert rt_errors["WKND"] <= rt_errors["SHIP"]
    assert cycles_errors["BUNNY"] <= cycles_errors["SHIP"]
