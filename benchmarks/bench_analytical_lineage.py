"""§II's analytical-model lineage on ray-tracing workloads.

The paper motivates Zatel by recounting how GPU analytical models evolved
(GPUMech -> MDM -> GCoM) and why even the newest generation struggles on
ray tracing (LumiBench "show[s] that current analytical models were not
able to capture the complexity of ray tracing workloads").

This bench evaluates reduced-form reconstructions of the three
generations plus Zatel on the saturated scenes and reports cycle errors.

Expected shapes: mean cycle error improves (or at worst holds) across the
generations, and Zatel beats the whole lineage — the paper's core claim.
"""

from repro.gpu import MOBILE_SOC
from repro.harness import format_table, percent_error, save_result
from repro.models import ANALYTICAL_LINEAGE

from common import workload_for

SCENES = ("PARK", "BUNNY", "BATH", "CHSNT")


def test_analytical_lineage(benchmark, runner):
    def experiment():
        models = [cls(MOBILE_SOC) for cls in ANALYTICAL_LINEAGE]
        rows = []
        mean_errors = {model.name: 0.0 for model in models}
        zatel_mean = 0.0
        for scene_name in SCENES:
            workload = workload_for(scene_name)
            scene = runner.scene(scene_name)
            frame = runner.frame(workload)
            full = runner.full_sim(workload, MOBILE_SOC)
            row = [scene_name]
            for model in models:
                prediction = model.predict(scene, frame)
                err = percent_error(prediction.cycles, full.cycles)
                mean_errors[model.name] += err / len(SCENES)
                row.append(err)
            zatel = runner.zatel(workload, MOBILE_SOC)
            zatel_err = percent_error(zatel.metrics["cycles"], full.cycles)
            zatel_mean += zatel_err / len(SCENES)
            row.append(zatel_err)
            rows.append(row)
        rows.append(
            ["MEAN"] + [mean_errors[m.name] for m in models] + [zatel_mean]
        )
        table = format_table(
            ["scene"] + [m.name for m in models] + ["Zatel"],
            rows,
            title=(
                "Analytical lineage: cycle error (%) per model generation "
                "vs Zatel (Mobile SoC)"
            ),
            precision=1,
        )
        return table, mean_errors, zatel_mean

    report, mean_errors, zatel_mean = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    save_result("analytical_lineage", report)
    print("\n" + report)

    # Shape 1: the divergence-aware generations beat divergence-blind
    # GPUMech on ray tracing (§II's critique of GPUMech).
    assert mean_errors["MDM-style"] <= mean_errors["GPUMech-style"]
    assert mean_errors["GCoM-style"] <= mean_errors["GPUMech-style"]
    # Shape 2: Zatel beats the entire analytical lineage (the paper's
    # headline comparison: 4.5% vs GCoM's 26.7%).
    assert zatel_mean < min(mean_errors.values())
