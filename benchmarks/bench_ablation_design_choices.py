"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — this bench isolates the knobs the reproduction (and
the paper) chose, measuring each one's contribution on PARK / Mobile SoC:

* division method (fine vs coarse — the paper picks fine, §IV-E);
* distribution (uniform vs exptmp — the paper picks uniform, §IV-C);
* heatmap warp flattening (this repo's scale adjustment, DESIGN.md §5);
* equation (1) adaptive fraction vs a fixed 60% fraction.

Expected shapes: the paper's final configuration is at least competitive
with each single-knob variant on the headline cycles metric, and no
variant degrades catastrophically (the methodology is robust to tuning).
"""

from repro.core import ZatelConfig
from repro.gpu import MOBILE_SOC
from repro.harness import format_table, mae, metric_errors, save_result

from common import workload_for

VARIANTS = {
    "paper-final": ZatelConfig(),
    "coarse-division": ZatelConfig(division="coarse"),
    "exptmp-distribution": ZatelConfig(distribution="exptmp"),
    "lintmp-distribution": ZatelConfig(distribution="lintmp"),
    "no-warp-flattening": ZatelConfig(heatmap_warp_width=0),
    "max-normalization": ZatelConfig(heatmap_percentile=100.0),
    "fixed-60pct": ZatelConfig(fraction_override=0.60),
    "tall-blocks-32x16": ZatelConfig(block_height=16),
    "regression-extrap": ZatelConfig(extrapolation="regression"),
}


def test_ablation_design_choices(benchmark, runner):
    workload = workload_for("PARK")

    def experiment():
        full = runner.full_sim(workload, MOBILE_SOC)
        rows = []
        outcomes = {}
        for label, config in VARIANTS.items():
            result = runner.zatel(workload, MOBILE_SOC, config)
            errors = metric_errors(result.metrics, full)
            outcomes[label] = {
                "cycles": errors["cycles"],
                "mae": mae(errors),
                "speedup": result.speedup_vs(full),
            }
            rows.append(
                [label, errors["cycles"], errors["ipc"], mae(errors),
                 result.speedup_vs(full), result.mean_fraction()]
            )
        return (
            format_table(
                ["variant", "cycles err %", "ipc err %", "MAE %",
                 "speedup x", "mean frac"],
                rows,
                title="Ablation: Zatel design choices on PARK (Mobile SoC)",
                precision=1,
            ),
            outcomes,
        )

    report, outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("ablation_design_choices", report)
    print("\n" + report)

    final = outcomes["paper-final"]
    # The paper's final tuning is competitive on the headline metric: no
    # single-knob variant beats it by a wide margin.
    for label, outcome in outcomes.items():
        assert final["cycles"] <= outcome["cycles"] + 25.0, label
    # And no variant explodes (the methodology is robust).
    assert max(o["cycles"] for o in outcomes.values()) < 120.0
