"""Fig. 16 — mean absolute error per metric over all scenes vs. pixels
traced, with min/max error bars.

Expected shapes (paper): every metric's MAE decays as more pixels are
traced; the quickly-saturating cache metrics (L1D/L2 miss rates) carry the
smallest errors; going from 10% to 30% cuts the worst errors several-fold.
"""

from repro.gpu import METRICS
from repro.harness import format_table, metric_errors, save_result
from repro.scene import SCENE_NAMES

from common import PERCENTAGES


def test_fig16_metric_mae_over_scenes(benchmark, sampling_sweeps):
    sweep = sampling_sweeps["RTX2060"]

    def experiment():
        # mae_by[(metric, perc)] plus min/max over scenes.
        rows = []
        summary = {}
        for name in METRICS:
            row = [name]
            for perc in PERCENTAGES:
                per_scene = []
                for scene_name in SCENE_NAMES:
                    errors = metric_errors(
                        sweep.points[scene_name][perc].metrics,
                        sweep.full[scene_name],
                    )
                    per_scene.append(errors[name])
                mean = sum(per_scene) / len(per_scene)
                summary[(name, perc)] = (mean, min(per_scene), max(per_scene))
                row.append(f"{mean:.0f} [{min(per_scene):.0f},{max(per_scene):.0f}]")
            rows.append(row)
        return (
            format_table(
                ["metric"] + [f"{p}%" for p in PERCENTAGES],
                rows,
                title=(
                    "Fig 16: MAE per metric over all scenes, with [min,max] "
                    "error bars (RTX 2060)"
                ),
            ),
            summary,
        )

    report, summary = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig16_metric_mae", report)
    print("\n" + report)

    # Shape 1: every metric improves from 10% to 90% traced.
    for name in METRICS:
        assert summary[(name, 90)][0] <= summary[(name, 10)][0]
    # Shape 2: the cache miss-rate metrics saturate quickest — their MAE at
    # 50% is below the throughput metrics' (paper's observation).
    cache_mae = max(summary[("l1d_miss_rate", 50)][0], summary[("l2_miss_rate", 50)][0])
    assert cache_mae <= summary[("cycles", 10)][0]
