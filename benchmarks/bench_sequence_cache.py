"""Cross-frame path-prediction cache carry-over (campaign engine).

The campaign engine threads the wavefront tracer's
``PathPredictionCache`` from frame ``k`` of an animated sequence into
frame ``k+1`` (rebound to the new BVH, stale leaves pruned).  This
benchmark quantifies what that buys: for each frame of an orbiting
procedural sequence it runs the occlusion pass twice — once with a cold
cache and once seeded with the previous frame's carried table — and
compares confirmed-hit rates.

Expected shapes: frame 0 is identical either way (nothing to carry);
on later frames the carried cache starts with the previous frame's
entries, so it confirms at least as many predictions as the cold cache
and a nonzero share of its hits come from carried entries.  Because
every prediction is validated against the real BVH before use, the
carry-over can only ever add confirmed hits — never wrong answers.
"""

from repro.scene.animation import SceneSequence
from repro.scene.bvh_packet import PathPredictionCache
from repro.scene.registry import resolve_scene
from repro.tracer.tracer import RenderSettings
from repro.tracer.wavefront import WavefrontTracer
from repro.harness import format_table, save_result

FRAMES = 4
SIZE = 32


def _settings() -> RenderSettings:
    return RenderSettings(
        width=SIZE, height=SIZE, samples_per_pixel=1, seed=0,
        tracing_backend="packet",
    )


def test_sequence_cache_carry(benchmark):
    sequence = SceneSequence.from_value(
        {
            "sequence": "saturation",
            "frames": FRAMES,
            "knobs": {"level": 0.5},
            "seed": 2,
            "orbit_degrees": 18.0,
        }
    )

    def experiment():
        rows = []
        stats = []
        carried_cache = None
        for spec in sequence.frame_specs():
            scene = resolve_scene(spec)
            tracer = WavefrontTracer(scene, _settings())

            cold = tracer.occlusion_pass(PathPredictionCache(scene.packed_bvh))
            # The carried cache is one object threaded across frames, so
            # its counters are cumulative — snapshot before the pass and
            # report per-frame deltas comparable to the cold run.
            before = (
                (carried_cache.lookups, carried_cache.hits,
                 carried_cache.carried_hits)
                if carried_cache is not None
                else (0, 0, 0)
            )
            carried_cache = tracer.occlusion_pass(carried_cache)
            lookups = carried_cache.lookups - before[0]
            carried_hits = carried_cache.hits - before[1]
            from_carry = carried_cache.carried_hits - before[2]

            stats.append(
                {
                    "frame": spec.frame,
                    "cold_hits": cold.hits,
                    "carried_hits": carried_hits,
                    "from_carry": from_carry,
                    "lookups": lookups,
                }
            )
            rows.append(
                [
                    spec.frame,
                    lookups,
                    cold.hits,
                    carried_hits,
                    from_carry,
                    from_carry / lookups if lookups else 0.0,
                ]
            )
        table = format_table(
            ["frame", "lookups", "cold hits", "carried hits",
             "from carry", "carry rate"],
            rows,
            title=(
                f"occlusion prediction cache across a {FRAMES}-frame "
                f"orbiting sequence ({SIZE}x{SIZE}, saturation recipe)"
            ),
            precision=3,
        )
        return table, stats

    report, stats = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("sequence_cache", report)
    print("\n" + report)

    # Shape 1: frame 0 has nothing to carry — both caches behave alike.
    assert stats[0]["from_carry"] == 0
    assert stats[0]["cold_hits"] == stats[0]["carried_hits"]
    # Shape 2: carry-over never loses confirmed hits on any frame.
    for frame in stats[1:]:
        assert frame["carried_hits"] >= frame["cold_hits"]
    # Shape 3: the measured win — pooled over frames 1.., a nonzero
    # number of confirmed predictions came from carried entries, and the
    # carried cache confirmed strictly more than the cold one somewhere.
    pooled_carry = sum(frame["from_carry"] for frame in stats[1:])
    assert pooled_carry > 0
    assert any(
        frame["carried_hits"] > frame["cold_hits"] for frame in stats[1:]
    )
