"""Extension — adaptive sample-complexity control (beyond the paper).

Equation (1) fixes each group's traced fraction from the heatmap alone,
but §IV-D shows the heatmap cannot reveal when linear extrapolation has
not converged (SPRNG, SHIP).  `repro.core.adaptive.AdaptiveZatel` closes
the loop: escalate the fraction geometrically until two consecutive
extrapolated cycle estimates agree, charging all pilot runs to the cost.

This is a *risk-bounding* trade: on well-saturated scenes the fixed
design is cheaper for similar accuracy, while on pathological scenes the
controller detects the divergence the fixed design silently mispredicts.

Expected shapes: on the under-saturated scenes (SHIP, SPRNG) at least one
group escalates past the pilot ladder's second rung; SHIP's cycles error
improves materially over the fixed baseline; saturated scenes stay in the
same accuracy band.
"""

from repro.core import AdaptiveConfig, AdaptiveZatel
from repro.gpu import MOBILE_SOC
from repro.harness import format_table, metric_errors, save_result

from common import workload_for

SCENES = ("SHIP", "SPRNG", "BUNNY", "BATH", "PARK")
CONTROLLER = AdaptiveConfig(pilot_fraction=0.2, growth=2.0, tolerance=0.15)


def test_extension_adaptive_fractions(benchmark, runner):
    def experiment():
        rows = []
        outcomes = {}
        for scene_name in SCENES:
            workload = workload_for(scene_name)
            scene = runner.scene(scene_name)
            frame = runner.frame(workload)
            full = runner.full_sim(workload, MOBILE_SOC)

            base = runner.zatel(workload, MOBILE_SOC)
            adaptive = AdaptiveZatel(MOBILE_SOC, adaptive=CONTROLLER).predict(
                scene, frame
            )
            base_err = metric_errors(base.metrics, full)["cycles"]
            adaptive_err = metric_errors(adaptive.metrics, full)["cycles"]
            fractions = [g.fraction for g in adaptive.groups]
            outcomes[scene_name] = {
                "base_err": base_err,
                "adaptive_err": adaptive_err,
                "max_fraction": max(fractions),
                "work_ratio": adaptive.total_work_units
                / max(1, base.total_work_units),
            }
            rows.append(
                [scene_name, base_err, adaptive_err,
                 " ".join(f"{f:.2f}" for f in fractions),
                 outcomes[scene_name]["work_ratio"]]
            )
        table = format_table(
            ["scene", "eq.(1) cycles err %", "adaptive cycles err %",
             "group fractions", "work ratio"],
            rows,
            title=(
                "Extension: adaptive sample-complexity control vs the "
                "paper's fixed equation-(1) fractions (Mobile SoC)"
            ),
            precision=1,
        )
        return table, outcomes

    report, outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("extension_adaptive", report)
    print("\n" + report)

    # Shape 1: the controller escalates on at least one under-saturated
    # scene's groups (the heatmap alone could not know to).
    second_rung = CONTROLLER.pilot_fraction * CONTROLLER.growth
    assert any(
        outcomes[s]["max_fraction"] > second_rung * 1.01
        for s in ("SHIP", "SPRNG")
    )
    # Shape 2: SHIP — the coldest scene — improves materially.
    assert outcomes["SHIP"]["adaptive_err"] < outcomes["SHIP"]["base_err"]
    # Shape 3: saturated scenes stay in the same accuracy band (the
    # extension is a safety net, not a regression).
    for scene_name in ("BUNNY", "BATH", "PARK"):
        assert (
            outcomes[scene_name]["adaptive_err"]
            <= outcomes[scene_name]["base_err"] + 10.0
        )
