"""Fig. 19 — running-time speedup gained from GPU downscaling.

Each group simulates 1/K of the pixels on a 1/K GPU; with the K instances
running in parallel (the paper's deployment), the speedup is the full
simulation's cost over the slowest group's.

Expected shapes (paper): speedup grows with K, roughly tracking the
pixel-reduction speedup of Fig. 15 at the equivalent percentage (1/K of
pixels), i.e. "downscaling the GPU configuration does not significantly
reduce the execution time of Zatel" beyond the workload split itself.
"""

from repro.harness import format_table, save_result
from repro.scene import SCENE_NAMES


def test_fig19_downscale_speedup(benchmark, downscale_sweeps_all):
    sweep = downscale_sweeps_all["RTX2060"]

    def experiment():
        rows = []
        speedups = {}
        for scene_name in SCENE_NAMES:
            full = sweep.full[scene_name]
            row = [scene_name]
            for k in sweep.factors:
                result = sweep.results[(scene_name, "fine", k)]
                s = result.speedup_vs(full)
                speedups[(scene_name, k)] = s
                row.append(s)
            rows.append(row)
        return (
            format_table(
                ["scene"] + [f"K={k}" for k in sweep.factors],
                rows,
                title=(
                    "Fig 19: speedup from GPU downscaling (fine-grained, "
                    "groups in parallel, RTX 2060)"
                ),
                precision=2,
            ),
            speedups,
        )

    report, speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("fig19_downscale_speedup", report)
    print("\n" + report)

    factors = sweep.factors
    # Shape 1: larger K never slows Zatel down (parallel groups shrink).
    for scene_name in SCENE_NAMES:
        assert speedups[(scene_name, max(factors))] >= speedups[
            (scene_name, min(factors))
        ] * 0.9
    # Shape 2: the speedup at the largest K is in the neighbourhood of K
    # (each instance handles ~1/K of the work).
    mean_speedup = sum(
        speedups[(s, max(factors))] for s in SCENE_NAMES
    ) / len(SCENE_NAMES)
    assert max(factors) * 0.4 < mean_speedup < max(factors) * 3.0
