"""Sampler accuracy-vs-cost frontier (pluggable sampling engine).

The sampling engine refactor makes step 5 a design space: the paper's
K-Means heatmap quotas (point predictions), ranked set sampling with
repeated subsampling, and two-phase stratified sampling with Neyman
allocation (both replicate-based, reporting confidence intervals).  This
benchmark sweeps sampler x scene as one deduplicated stage DAG — every
sampler of a scene shares the profile/quantize/partition artifacts — and
reports each cell's cycles error against ground truth next to its
simulation cost, i.e. the frontier a user trades along when picking
``predict --sampler``.

Expected shapes: the default sampler reproduces the plain pipeline
byte-for-byte; the replicate samplers report confidence intervals whose
half-width is finite and positive; each replicate draws the full nominal
budget (splitting it would amplify the Section IV-D extrapolation bias),
so a cell's cost is bounded by roughly R times the default sampler's.
"""

from repro.core import SweepPoint, ZatelConfig
from repro.gpu import MOBILE_SOC
from repro.harness import format_table, metric_errors, save_result

from common import workload_for

SCENES = ("SPRNG", "BUNNY", "BATH")
SAMPLERS = ("heatmap", "ranked_set", "two_phase")
REPLICATES = 5


def test_sampler_frontier(benchmark, runner):
    def experiment():
        grid = [
            (scene_name, sampler)
            for scene_name in SCENES
            for sampler in SAMPLERS
        ]
        points = [
            SweepPoint(
                scene_name,
                MOBILE_SOC,
                config=ZatelConfig(sampler=sampler, replicates=REPLICATES),
            )
            for scene_name, sampler in grid
        ]
        sweep = runner.sweep(points)
        rows = []
        outcomes = {}
        for (scene_name, sampler), point in zip(grid, points):
            result = sweep.value(point)
            full = runner.full_sim(workload_for(scene_name), MOBILE_SOC)
            error = metric_errors(result.metrics, full)["cycles"]
            intervals = result.confidence_intervals()
            if "cycles" in intervals:
                lo, hi = intervals["cycles"]
                ci_text = f"[{lo:.0f}, {hi:.0f}]"
                brackets = lo <= full.metric("cycles") <= hi
            else:
                ci_text, brackets = "-", None
            outcomes[(scene_name, sampler)] = {
                "result": result,
                "error": error,
                "work": result.total_work_units,
                "brackets": brackets,
            }
            rows.append(
                [
                    scene_name,
                    sampler,
                    error,
                    result.total_work_units,
                    ci_text,
                    {True: "yes", False: "no", None: "-"}[brackets],
                ]
            )
        table = format_table(
            ["scene", "sampler", "cycles err %", "work units",
             "cycles 95% CI", "CI brackets truth"],
            rows,
            title=(
                "Sampler accuracy-vs-cost frontier (Mobile SoC, "
                f"{REPLICATES} replicates); planner deduplicated "
                f"{sweep.plan.deduplicated_nodes} of "
                f"{sweep.plan.total_nodes} stages"
            ),
            precision=1,
        )
        return table, outcomes

    report, outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    save_result("sampler_frontier", report)
    print("\n" + report)

    for scene_name in SCENES:
        base = outcomes[(scene_name, "heatmap")]
        # Shape 1: the default sampler is the plain pipeline — point
        # prediction, no variance estimate, no interval.
        assert not base["result"].variances
        assert base["result"].confidence_intervals() == {}
        assert base["result"].sampler["name"] == "heatmap"
        for sampler in ("ranked_set", "two_phase"):
            cell = outcomes[(scene_name, sampler)]
            # Shape 2: replicate samplers report a genuine uncertainty
            # estimate — positive variance, finite interval.
            assert cell["result"].variances["cycles"] > 0.0
            assert cell["brackets"] is not None
            # Shape 3: full-budget replicates — cost scales roughly with
            # R.  The slack covers selection composition: Neyman
            # allocation deliberately concentrates on expensive strata,
            # so per-pixel work can exceed the default sampler's.
            assert base["work"] < cell["work"] < base["work"] * REPLICATES * 2
