"""Functional ray tracer producing per-pixel traces for the GPU simulator."""

from .ptx import (
    FILTER_EXIT_INSTRUCTIONS,
    InstructionClass,
    PTXInstruction,
    ShaderProgram,
    inject_filter_shader,
    raygen_shader,
)
from .trace import FrameTrace, PixelTrace, RaySegment, SegmentKind
from .serialization import FORMAT_VERSION, load_frame, save_frame
from .tracer import FunctionalTracer, RenderSettings, trace_frame

__all__ = [
    "FILTER_EXIT_INSTRUCTIONS",
    "FrameTrace",
    "FunctionalTracer",
    "InstructionClass",
    "PTXInstruction",
    "PixelTrace",
    "FORMAT_VERSION",
    "RaySegment",
    "RenderSettings",
    "SegmentKind",
    "ShaderProgram",
    "inject_filter_shader",
    "load_frame",
    "raygen_shader",
    "save_frame",
    "trace_frame",
]
