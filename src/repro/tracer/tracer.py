"""The functional ray tracer (Vulkan-Sim "functional mode" stand-in).

This tracer renders pixels *and* records, for every ray, the BVH nodes
visited and triangles tested (:class:`~repro.tracer.trace.RaySegment`).
Those traces serve two Zatel roles:

1. **Profiling** — per-pixel cost drives the execution-time heatmap
   (the paper profiles on a hardware GPU; functional-mode profiling "yields
   comparable results" per Section III-B).
2. **Workload definition** — the GPU timing simulator replays the traces;
   it never re-runs light transport.

The tracer is a Whitted-style renderer with optional diffuse path bounces:
primary ray, per-light shadow rays at each hit, mirror reflections, and
russian-roulette-limited cosine-weighted bounces up to the scene's
``max_bounces``.  All sampling is deterministic per (seed, pixel, sample).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..scene.bvh import TraversalRecord
from ..scene.geometry import Ray
from ..scene.scene import Scene
from ..scene.vecmath import dot, reflect, spherical_direction, vec3
from .trace import FrameTrace, PixelTrace, RaySegment, SegmentKind

__all__ = ["RenderSettings", "FunctionalTracer", "trace_frame"]

#: Shader instructions for a miss (environment lookup + blend).
_MISS_SHADE_COST = 6
#: Shader instructions to fold one shadow-ray result into the pixel colour.
_SHADOW_SHADE_COST = 5
#: Extra instructions to set up a continuation (reflection/bounce) ray.
_CONTINUATION_COST = 8


@dataclass(frozen=True)
class RenderSettings:
    """Immutable render parameters.

    The paper simulates LumiBench at 512x512 with 2 samples per pixel; our
    experiments default to smaller planes (the methodology is
    resolution-independent — see DESIGN.md) but the settings accept any size.
    """

    width: int = 64
    height: int = 64
    samples_per_pixel: int = 1
    seed: int = 0
    #: Which traversal implementation traces this frame: ``"packet"``
    #: (batched wavefront kernels) or ``"scalar"`` (one ray at a time).
    #: Both produce byte-identical traces; this only selects execution
    #: strategy.
    tracing_backend: str = "packet"

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.samples_per_pixel <= 0:
            raise ValueError("samples_per_pixel must be positive")
        if self.tracing_backend not in ("scalar", "packet"):
            raise ValueError(
                f"unknown tracing backend: {self.tracing_backend!r} "
                "(expected 'scalar' or 'packet')"
            )

    def pixel_count(self) -> int:
        return self.width * self.height

    @cached_property
    def _pixel_tuple(self) -> tuple[tuple[int, int], ...]:
        # cached_property stores into the instance __dict__, which is legal
        # on a frozen dataclass and keeps eq/hash (field-based) unaffected.
        return tuple(
            (x, y) for y in range(self.height) for x in range(self.width)
        )

    def all_pixels(self) -> tuple[tuple[int, int], ...]:
        """All plane coordinates in row-major order (cached, immutable)."""
        return self._pixel_tuple


def _sky_color(direction: np.ndarray) -> np.ndarray:
    """Simple vertical-gradient environment."""
    t = 0.5 * (float(direction[1]) + 1.0)
    return (1.0 - t) * vec3(0.9, 0.9, 0.95) + t * vec3(0.4, 0.6, 0.9)


class FunctionalTracer:
    """Traces pixels of one scene under fixed render settings."""

    def __init__(self, scene: Scene, settings: RenderSettings) -> None:
        self.scene = scene
        self.settings = settings

    def trace_pixel(self, px: int, py: int) -> tuple[PixelTrace, np.ndarray]:
        """Trace all samples of one pixel.

        Returns the pixel's trace and its averaged RGB radiance.
        """
        scene = self.scene
        settings = self.settings
        trace = PixelTrace(px=px, py=py)
        color = vec3(0.0, 0.0, 0.0)
        for sample in range(settings.samples_per_pixel):
            rng = random.Random(
                (settings.seed << 48)
                ^ (py << 28)
                ^ (px << 8)
                ^ sample
            )
            if sample == 0:
                jitter = (0.5, 0.5)
            else:
                jitter = (rng.random(), rng.random())
            ray = scene.camera.primary_ray(
                px, py, settings.width, settings.height, jitter
            )
            color = color + self._trace_path(ray, rng, trace)
        return trace, color / settings.samples_per_pixel

    def _trace_path(
        self, ray: Ray, rng: random.Random, trace: PixelTrace
    ) -> np.ndarray:
        """Follow one light path, appending its segments to ``trace``."""
        scene = self.scene
        bvh = scene.bvh
        color = vec3(0.0, 0.0, 0.0)
        throughput = vec3(1.0, 1.0, 1.0)
        kind = SegmentKind.PRIMARY

        for depth in range(scene.max_bounces + 1):
            record = TraversalRecord()
            hit = bvh.intersect(ray, record)
            if hit is None:
                trace.segments.append(
                    RaySegment(
                        kind=kind,
                        nodes=record.nodes_visited,
                        tris=record.tris_tested,
                        hit=False,
                        shade_instructions=_MISS_SHADE_COST,
                    )
                )
                color = color + throughput * _sky_color(ray.direction)
                break

            material = scene.materials[hit.material_id]
            shade = material.shade_cost
            trace.segments.append(
                RaySegment(
                    kind=kind,
                    nodes=record.nodes_visited,
                    tris=record.tris_tested,
                    hit=True,
                    shade_instructions=shade,
                )
            )
            if material.is_emissive():
                color = color + throughput * material.emission

            # Next-event estimation: one shadow ray per light (paper Fig. 1).
            for light in scene.lights:
                shadow_ray, distance = light.shadow_ray(
                    hit.point + hit.normal * 1e-4
                )
                shadow_record = TraversalRecord()
                occluded = bvh.occluded(shadow_ray, shadow_record)
                trace.segments.append(
                    RaySegment(
                        kind=SegmentKind.SHADOW,
                        nodes=shadow_record.nodes_visited,
                        tris=shadow_record.tris_tested,
                        hit=occluded,
                        shade_instructions=_SHADOW_SHADE_COST,
                    )
                )
                if not occluded:
                    cos_theta = max(0.0, dot(hit.normal, shadow_ray.direction))
                    color = color + (
                        throughput
                        * material.albedo
                        * light.irradiance_at(distance)
                        * cos_theta
                    )

            if depth == scene.max_bounces:
                break

            # Continuation: mirror reflection, else russian-roulette diffuse
            # bounce (only for path-traced scenes, max_bounces >= 2).
            if material.reflectivity > 0.0 and rng.random() < material.reflectivity:
                direction = reflect(ray.direction, hit.normal)
                kind = SegmentKind.REFLECTION
                throughput = throughput * material.albedo
            elif scene.max_bounces >= 2:
                survive = float(np.max(material.albedo))
                if rng.random() >= survive:
                    break
                direction = spherical_direction(
                    rng.random(), rng.random(), hit.normal
                )
                kind = SegmentKind.BOUNCE
                throughput = throughput * material.albedo / max(survive, 1e-6)
            else:
                break
            # The continuation ray's setup cost attaches to the segment we
            # just recorded (its shader issues the next traceRayEXT).
            trace.segments[-1].shade_instructions += _CONTINUATION_COST
            ray = Ray(
                origin=hit.point + hit.normal * 1e-4,
                direction=direction,
            )
        return color

    def trace_frame(
        self, pixels: list[tuple[int, int]] | None = None
    ) -> FrameTrace:
        """Trace a set of pixels (default: the whole plane).

        Returns a :class:`FrameTrace`; radiance values are discarded here —
        use :meth:`render_image` when colours are wanted.

        With ``settings.tracing_backend == "packet"`` the work is delegated
        to the wavefront driver, which produces a byte-identical trace.
        """
        settings = self.settings
        if settings.tracing_backend == "packet":
            from .wavefront import WavefrontTracer

            return WavefrontTracer(self.scene, settings).trace_frame(pixels)
        frame = FrameTrace(
            width=settings.width,
            height=settings.height,
            samples_per_pixel=settings.samples_per_pixel,
            scene_name=self.scene.name,
        )
        for px, py in pixels if pixels is not None else settings.all_pixels():
            trace, _ = self.trace_pixel(px, py)
            frame.pixels[(px, py)] = trace
        return frame

    def render_image(self) -> np.ndarray:
        """Render the full plane to an ``(H, W, 3)`` float RGB image."""
        settings = self.settings
        if settings.tracing_backend == "packet":
            from .wavefront import WavefrontTracer

            return WavefrontTracer(self.scene, settings).render_image()
        image = np.zeros((settings.height, settings.width, 3), dtype=np.float64)
        for px, py in settings.all_pixels():
            _, color = self.trace_pixel(px, py)
            image[py, px] = np.clip(color, 0.0, 1.0)
        return image


def trace_frame(
    scene: Scene,
    settings: RenderSettings,
    pixels: list[tuple[int, int]] | None = None,
) -> FrameTrace:
    """Convenience wrapper: trace ``pixels`` of ``scene`` under ``settings``."""
    return FunctionalTracer(scene, settings).trace_frame(pixels)
