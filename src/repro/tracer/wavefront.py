"""Wavefront tracing driver: whole-frame ray batches over the packet BVH.

Where :class:`~repro.tracer.tracer.FunctionalTracer` follows one path at a
time, :class:`WavefrontTracer` advances *every* live path of a frame one
bounce per iteration: primary rays are generated as one vectorized batch,
each depth's closest-hit queries run as one
:meth:`~repro.scene.bvh_packet.PackedBVH.intersect_arrays` call, and each
light's shadow rays as one ``occluded_arrays`` call.  Only the decisions
that are inherently sequential — per-path RNG draws and segment
bookkeeping — stay scalar, and they mirror
``FunctionalTracer._trace_path`` statement for statement.

Equivalence with the scalar tracer is exact, not approximate:

* every vectorized expression maps onto the scalar expression with the
  same operand order and grouping (camera ray setup, hit-point and
  normal finalization, shadow-ray construction, sky/shading radiance),
  so each lane computes the exact IEEE doubles the scalar code would;
* each path owns the same ``random.Random`` instance, seeded the same
  way, and consumes draws in the same order (jitter, then per depth the
  reflectivity / roulette / bounce draws).  Paths never share RNG state,
  so interleaving them across a wavefront cannot perturb any draw.  RNGs
  are created *lazily* — a path that never draws (the common case at one
  sample per pixel) never pays Mersenne seeding;
* segments are appended to each pixel's trace in the scalar order
  (samples in order; per sample: primary/continuation segment, then one
  shadow segment per light).

The :class:`~repro.scene.bvh_packet.PathPredictionCache` is wired into
the shadow batches only when traversal records are *not* collected
(i.e. :meth:`render_image`): a validated cache hit skips the traversal
walk, which would change the recorded node sequence but never the
occlusion answer.
"""

from __future__ import annotations

import random

import numpy as np

from ..scene.bvh_packet import PathPredictionCache
from ..scene.lights import DirectionalLight, PointLight
from ..scene.scene import Scene
from ..scene.vecmath import reflect, spherical_direction
from .trace import FrameTrace, PixelTrace, RaySegment, SegmentKind
from .tracer import (
    _CONTINUATION_COST,
    _MISS_SHADE_COST,
    _SHADOW_SHADE_COST,
    RenderSettings,
)

__all__ = ["WavefrontTracer"]

#: Paths advanced per wavefront; bounds the packet kernels' working set.
_DEFAULT_WAVE_SIZE = 16384

#: The two ends of ``tracer._sky_color``'s vertical gradient.
_SKY_LOW = np.array([0.9, 0.9, 0.95], dtype=np.float64)
_SKY_HIGH = np.array([0.4, 0.6, 0.9], dtype=np.float64)

#: Ray defaults (see :class:`~repro.scene.geometry.Ray`).
_RAY_T_MIN = 1e-6
_INF = float("inf")


class _ShadingTables:
    """Per-scene material properties unpacked into parallel arrays."""

    __slots__ = (
        "shade_cost",
        "reflectivity",
        "survive",
        "emissive",
        "albedo",
        "emission",
    )

    def __init__(self, scene: Scene) -> None:
        mats = [scene.materials[i] for i in range(len(scene.materials))]
        self.shade_cost = [m.shade_cost for m in mats]
        self.reflectivity = [m.reflectivity for m in mats]
        # Mirrors the scalar roulette's ``float(np.max(material.albedo))``.
        self.survive = [float(np.max(m.albedo)) for m in mats]
        self.emissive = [m.is_emissive() for m in mats]
        self.albedo = np.array([m.albedo for m in mats], dtype=np.float64)
        self.emission = np.array([m.emission for m in mats], dtype=np.float64)


class WavefrontTracer:
    """Batched drop-in for :class:`~repro.tracer.tracer.FunctionalTracer`.

    Produces byte-identical :class:`~repro.tracer.trace.FrameTrace`s and
    images; only the execution strategy (and wall-clock) differs.
    """

    def __init__(
        self,
        scene: Scene,
        settings: RenderSettings,
        wave_size: int = _DEFAULT_WAVE_SIZE,
    ) -> None:
        self.scene = scene
        self.settings = settings
        self.wave_size = wave_size
        self._tables = _ShadingTables(scene)

    # ------------------------------------------------------------------
    # batched primary-ray generation
    # ------------------------------------------------------------------

    def _primary_batch(self, pxs, pys, jx, jy):
        """Vectorized ``Camera.primary_ray``: same ops, same grouping.

        ``jx``/``jy`` are per-path jitter arrays (or scalars).  Returns
        ``(origins, dirs)`` whose rows are bit-identical to the scalar
        camera's rays.
        """
        settings = self.settings
        camera = self.scene.camera
        width = settings.width
        height = settings.height
        if pxs.size and (
            pxs.min() < 0 or pxs.max() >= width
            or pys.min() < 0 or pys.max() >= height
        ):
            raise ValueError(f"pixel outside {width}x{height} plane")
        aspect = width / height
        ndc_x = (2.0 * (pxs + jx) / width - 1.0) * aspect
        ndc_y = 1.0 - 2.0 * (pys + jy) / height
        thf = camera._tan_half_fov
        v = (
            camera._forward[None, :]
            + camera._right[None, :] * (ndc_x * thf)[:, None]
        ) + camera._up[None, :] * (ndc_y * thf)[:, None]
        norm = np.sqrt(
            v[:, 0] * v[:, 0] + v[:, 1] * v[:, 1] + v[:, 2] * v[:, 2]
        )
        dirs = v / norm[:, None]
        origins = np.broadcast_to(camera.position, dirs.shape)
        return origins, dirs

    # ------------------------------------------------------------------
    # batched shadow-ray construction
    # ------------------------------------------------------------------

    @staticmethod
    def _shadow_batch(light, shadow_org):
        """Vectorized ``light.shadow_ray`` for a batch of offset origins.

        Returns ``(dirs, t_min, t_max, dist)`` with rows bit-identical to
        the scalar construction.  Unknown light types fall back to the
        scalar method per ray.
        """
        n = shadow_org.shape[0]
        if isinstance(light, PointLight):
            to_light = light.position[None, :] - shadow_org
            dist = np.sqrt(
                to_light[:, 0] * to_light[:, 0]
                + to_light[:, 1] * to_light[:, 1]
                + to_light[:, 2] * to_light[:, 2]
            )
            dirs = to_light / dist[:, None]
            t_min = np.full(n, 1e-4)
            t_max = dist - 1e-4
        elif isinstance(light, DirectionalLight):
            dirs = np.broadcast_to(-light.direction, (n, 3))
            dist = np.full(n, _INF)
            t_min = np.full(n, 1e-4)
            t_max = np.full(n, _INF)
        else:
            dirs = np.empty((n, 3))
            dist = np.empty(n)
            t_min = np.empty(n)
            t_max = np.empty(n)
            for k in range(n):
                ray, d = light.shadow_ray(shadow_org[k])
                dirs[k] = ray.direction
                dist[k] = d
                t_min[k] = ray.t_min
                t_max[k] = ray.t_max
        return dirs, t_min, t_max, dist

    # ------------------------------------------------------------------
    # the wave loop
    # ------------------------------------------------------------------

    def _trace_wave(
        self,
        px_list: list[int],
        py_list: list[int],
        sample_list: list[int],
        collect_records: bool,
        compute_radiance: bool,
        cache: PathPredictionCache | None,
    ):
        """Advance one wave of (pixel, sample) paths to termination.

        Returns ``(seg_lists, colors)``: per-path segment lists (``None``
        unless ``collect_records``) and per-path radiance rows (``None``
        unless ``compute_radiance``).
        """
        scene = self.scene
        packed = scene.packed_bvh
        tables = self._tables
        lights = scene.lights
        max_bounces = scene.max_bounces
        seed = self.settings.seed
        n = len(px_list)

        kinds: list[SegmentKind] = [SegmentKind.PRIMARY] * n
        seg_lists = [[] for _ in range(n)] if collect_records else None
        rngs: list[random.Random | None] = [None] * n
        colors = np.zeros((n, 3)) if compute_radiance else None
        throughput = np.ones((n, 3)) if compute_radiance else None

        # Jittered samples draw from their RNG *now*, exactly like the
        # scalar ``trace_pixel`` prologue; sample 0 stays at (0.5, 0.5)
        # and leaves its RNG uncreated until a continuation needs it.
        pxs = np.array(px_list, dtype=np.float64)
        pys = np.array(py_list, dtype=np.float64)
        if self.settings.samples_per_pixel > 1:
            jx = np.full(n, 0.5)
            jy = np.full(n, 0.5)
            for i, sample in enumerate(sample_list):
                if sample != 0:
                    rng = random.Random(
                        (seed << 48)
                        ^ (py_list[i] << 28)
                        ^ (px_list[i] << 8)
                        ^ sample
                    )
                    rngs[i] = rng
                    jx[i] = rng.random()
                    jy[i] = rng.random()
        else:
            jx = 0.5
            jy = 0.5
        origins, dirs = self._primary_batch(pxs, pys, jx, jy)

        pids = np.arange(n)
        pid_list = list(range(n))
        t_min = np.full(n, _RAY_T_MIN)
        t_max = np.full(n, _INF)

        for depth in range(max_bounces + 1):
            if not pid_list:
                break
            res = packed.intersect_arrays(
                origins, dirs, t_min, t_max, want_records=collect_records
            )
            hit_mask = res.tri >= 0
            hit_rows = np.nonzero(hit_mask)[0]
            hit_rows_l = hit_rows.tolist()

            if collect_records:
                res_nodes = res.nodes
                res_tris = res.tris
                if depth == 0:
                    # Depth 0: pid == row and every kind is PRIMARY.
                    primary = SegmentKind.PRIMARY
                    for r in np.nonzero(~hit_mask)[0].tolist():
                        seg_lists[r].append(
                            RaySegment(
                                primary, res_nodes[r], res_tris[r],
                                False, _MISS_SHADE_COST,
                            )
                        )
                else:
                    for r in np.nonzero(~hit_mask)[0].tolist():
                        pid = pid_list[r]
                        seg_lists[pid].append(
                            RaySegment(
                                kinds[pid], res_nodes[r], res_tris[r],
                                False, _MISS_SHADE_COST,
                            )
                        )
            if compute_radiance:
                miss_rows = np.nonzero(~hit_mask)[0]
                if miss_rows.size:
                    d = dirs[miss_rows]
                    tsky = 0.5 * (d[:, 1] + 1.0)
                    sky = ((1.0 - tsky)[:, None] * _SKY_LOW) + (
                        tsky[:, None] * _SKY_HIGH
                    )
                    prows = pids[miss_rows]
                    colors[prows] = colors[prows] + throughput[prows] * sky

            if not hit_rows_l:
                break

            # Hit finalization: the scalar tail of ``BVH.intersect``.
            th = res.t[hit_rows]
            hd = dirs[hit_rows]
            pts = origins[hit_rows] + hd * th[:, None]
            tri = res.tri[hit_rows]
            nrm = packed.tri_normal[tri]
            flip = (
                nrm[:, 0] * hd[:, 0]
                + nrm[:, 1] * hd[:, 1]
                + nrm[:, 2] * hd[:, 2]
            ) > 0.0
            nrm = np.where(flip[:, None], -nrm, nrm)
            mids = packed.tri_material[tri].tolist()
            # Offset origin shared by shadow and continuation rays
            # (``hit.point + hit.normal * 1e-4`` in the scalar tracer).
            offset_org = pts + nrm * 1e-4
            hpids = pids[hit_rows]

            if collect_records:
                shade_cost = tables.shade_cost
                if depth == 0:
                    primary = SegmentKind.PRIMARY
                    for k, r in enumerate(hit_rows_l):
                        seg_lists[r].append(
                            RaySegment(
                                primary, res_nodes[r], res_tris[r],
                                True, shade_cost[mids[k]],
                            )
                        )
                else:
                    for k, r in enumerate(hit_rows_l):
                        pid = pid_list[r]
                        seg_lists[pid].append(
                            RaySegment(
                                kinds[pid], res_nodes[r], res_tris[r],
                                True, shade_cost[mids[k]],
                            )
                        )
            if compute_radiance:
                em = [k for k, m in enumerate(mids) if tables.emissive[m]]
                if em:
                    prows = hpids[em]
                    colors[prows] = colors[prows] + (
                        throughput[prows]
                        * tables.emission[[mids[k] for k in em]]
                    )

            # Next-event estimation: one batched shadow wave per light.
            for light in lights:
                sdir, stmin, stmax, dist = self._shadow_batch(
                    light, offset_org
                )
                occ = packed.occluded_arrays(
                    offset_org, sdir, stmin, stmax,
                    want_records=collect_records, cache=cache,
                )
                occluded = occ.occluded
                if collect_records:
                    occ_nodes = occ.nodes
                    occ_tris = occ.tris
                    occ_l = occluded.tolist()
                    shadow = SegmentKind.SHADOW
                    if depth == 0:
                        for k, r in enumerate(hit_rows_l):
                            seg_lists[r].append(
                                RaySegment(
                                    shadow, occ_nodes[k], occ_tris[k],
                                    occ_l[k], _SHADOW_SHADE_COST,
                                )
                            )
                    else:
                        for k, r in enumerate(hit_rows_l):
                            seg_lists[pid_list[r]].append(
                                RaySegment(
                                    shadow, occ_nodes[k], occ_tris[k],
                                    occ_l[k], _SHADOW_SHADE_COST,
                                )
                            )
                if compute_radiance:
                    lit = np.nonzero(~occluded)[0]
                    if lit.size:
                        cosv = (
                            nrm[lit, 0] * sdir[lit, 0]
                            + nrm[lit, 1] * sdir[lit, 1]
                            + nrm[lit, 2] * sdir[lit, 2]
                        )
                        cos_theta = np.where(cosv > 0.0, cosv, 0.0)
                        if isinstance(light, PointLight):
                            dd = dist[lit] * dist[lit]
                            irr = light.intensity[None, :] / np.where(
                                dd > 1e-6, dd, 1e-6
                            )[:, None]
                        else:
                            irr = light.intensity[None, :]
                        lmids = [mids[k] for k in lit.tolist()]
                        prows = hpids[lit]
                        colors[prows] = colors[prows] + (
                            throughput[prows]
                            * tables.albedo[lmids]
                            * irr
                            * cos_theta[:, None]
                        )

            if depth == max_bounces:
                break

            # Continuations: scalar RNG decisions, same draw order per path.
            reflectivity = tables.reflectivity
            survive_tab = tables.survive
            albedo_tab = tables.albedo
            next_rows: list[int] = []
            next_dirs: list[np.ndarray] = []
            next_pids: list[int] = []
            for k, r in enumerate(hit_rows_l):
                pid = pid_list[r]
                m = mids[k]
                refl = reflectivity[m]
                rng = rngs[pid]
                if refl > 0.0 or max_bounces >= 2:
                    if rng is None:
                        rng = random.Random(
                            (seed << 48)
                            ^ (py_list[pid] << 28)
                            ^ (px_list[pid] << 8)
                            ^ sample_list[pid]
                        )
                        rngs[pid] = rng
                if refl > 0.0 and rng.random() < refl:
                    direction = reflect(dirs[r], nrm[k])
                    kinds[pid] = SegmentKind.REFLECTION
                    if compute_radiance:
                        throughput[pid] = throughput[pid] * albedo_tab[m]
                elif max_bounces >= 2:
                    survive = survive_tab[m]
                    if rng.random() >= survive:
                        continue
                    direction = spherical_direction(
                        rng.random(), rng.random(), nrm[k]
                    )
                    kinds[pid] = SegmentKind.BOUNCE
                    if compute_radiance:
                        throughput[pid] = (
                            throughput[pid] * albedo_tab[m] / max(survive, 1e-6)
                        )
                else:
                    continue
                if collect_records:
                    # The continuation ray's setup cost attaches to the
                    # segment just recorded (the last shadow segment when
                    # lights exist, the hit segment otherwise).
                    seg_lists[pid][-1].shade_instructions += _CONTINUATION_COST
                next_rows.append(k)
                next_dirs.append(direction)
                next_pids.append(pid)

            if not next_rows:
                break
            origins = offset_org[next_rows]
            dirs = np.array(next_dirs, dtype=np.float64)
            pids = np.array(next_pids)
            pid_list = next_pids
            m2 = len(next_rows)
            t_min = np.full(m2, _RAY_T_MIN)
            t_max = np.full(m2, _INF)

        return seg_lists, colors

    # ------------------------------------------------------------------
    # public API (mirrors FunctionalTracer)
    # ------------------------------------------------------------------

    def _iter_waves(self, pixels):
        """Yield ``(px_list, py_list, sample_list)`` wave batches.

        Pixels are never split across waves so each pixel's samples stay
        contiguous and in order.
        """
        spp = self.settings.samples_per_pixel
        pixels_per_wave = max(1, self.wave_size // spp)
        pixels = list(pixels)
        samples = list(range(spp))
        for start in range(0, len(pixels), pixels_per_wave):
            chunk = pixels[start:start + pixels_per_wave]
            if spp == 1:
                px_l = [p[0] for p in chunk]
                py_l = [p[1] for p in chunk]
                s_l = [0] * len(chunk)
            else:
                px_l = [p[0] for p in chunk for _ in samples]
                py_l = [p[1] for p in chunk for _ in samples]
                s_l = samples * len(chunk)
            yield px_l, py_l, s_l

    def trace_frame(
        self, pixels: list[tuple[int, int]] | None = None
    ) -> FrameTrace:
        """Trace a set of pixels (default: the whole plane), batched.

        The returned :class:`FrameTrace` is byte-identical to the scalar
        tracer's, so traversal records are always collected and the
        path-prediction cache stays off.
        """
        settings = self.settings
        spp = settings.samples_per_pixel
        frame = FrameTrace(
            width=settings.width,
            height=settings.height,
            samples_per_pixel=spp,
            scene_name=self.scene.name,
            backend="packet",
        )
        if pixels is None:
            pixels = settings.all_pixels()
        frame_pixels = frame.pixels
        for px_l, py_l, s_l in self._iter_waves(pixels):
            seg_lists, _ = self._trace_wave(
                px_l, py_l, s_l,
                collect_records=True, compute_radiance=False, cache=None,
            )
            if spp == 1:
                for x, y, segments in zip(px_l, py_l, seg_lists):
                    frame_pixels[(x, y)] = PixelTrace(x, y, segments)
            else:
                for i in range(0, len(px_l), spp):
                    segments = seg_lists[i]
                    for s in range(1, spp):
                        segments.extend(seg_lists[i + s])
                    frame_pixels[(px_l[i], py_l[i])] = PixelTrace(
                        px_l[i], py_l[i], segments
                    )
        return frame

    def occlusion_pass(
        self,
        cache: "PathPredictionCache | None" = None,
        pixels: list[tuple[int, int]] | None = None,
    ) -> "PathPredictionCache":
        """Run a record-free pass that exercises the prediction cache.

        The sequence-aware simulate stages use this to *thread* a
        :class:`PathPredictionCache` across the frames of an animated
        sequence: pass the previous frame's cache and it is rebound to
        this tracer's BVH (stale leaves pruned) before the waves run, so
        coherent shadow rays hit entries learned one frame earlier.  The
        (re)trained cache is returned for the next frame.  No traversal
        records are collected, so the byte-identical ``trace_frame``
        output is untouched.
        """
        if cache is None:
            cache = PathPredictionCache(self.scene.packed_bvh)
        else:
            cache.rebind(self.scene.packed_bvh)
        if pixels is None:
            pixels = self.settings.all_pixels()
        for px_l, py_l, s_l in self._iter_waves(pixels):
            self._trace_wave(
                px_l, py_l, s_l,
                collect_records=False, compute_radiance=True, cache=cache,
            )
        return cache

    def render_image(self) -> np.ndarray:
        """Render the full plane to an ``(H, W, 3)`` float RGB image.

        No traces are kept, so shadow batches may use the path-prediction
        cache: validated hits skip whole traversal walks for coherent
        shadow rays without changing any occlusion answer.
        """
        settings = self.settings
        spp = settings.samples_per_pixel
        cache = PathPredictionCache(self.scene.packed_bvh)
        image = np.zeros((settings.height, settings.width, 3), dtype=np.float64)
        for px_l, py_l, s_l in self._iter_waves(settings.all_pixels()):
            _, colors = self._trace_wave(
                px_l, py_l, s_l,
                collect_records=False, compute_radiance=True, cache=cache,
            )
            # Sum each pixel's samples sequentially (scalar accumulation
            # order), then average.
            per_pixel = colors.reshape(-1, spp, 3)
            total = per_pixel[:, 0, :]
            for s in range(1, spp):
                total = total + per_pixel[:, s, :]
            total = total / spp
            xs = px_l[::spp]
            ys = py_l[::spp]
            image[ys, xs] = np.clip(total, 0.0, 1.0)
        return image
