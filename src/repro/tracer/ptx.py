"""PTX-like shader program model and the ``filter_shader`` injection.

Vulkan-Sim executes ray-tracing shaders as PTX; Zatel filters pixels by
injecting a custom ``filter_shader`` instruction at the top of the ray
generation shader (the paper's Listing 1)::

    filter_shader %p1;
    @!%p1 exit;

Threads whose pixel is filtered out execute those two instructions and exit,
so "their impact on the final performance statistics is negligible" but not
zero.  This module models shader programs at the granularity the timing
simulator needs: instruction classes and counts, not semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "InstructionClass",
    "PTXInstruction",
    "ShaderProgram",
    "raygen_shader",
    "inject_filter_shader",
    "FILTER_EXIT_INSTRUCTIONS",
]

#: Instructions a filtered-out thread executes before exiting
#: (``filter_shader`` + predicated ``exit``).
FILTER_EXIT_INSTRUCTIONS = 2


class InstructionClass(Enum):
    """Coarse PTX instruction classes with distinct timing behaviour."""

    ALU = "alu"            # int/fp arithmetic, moves, predicates
    SFU = "sfu"            # transcendental (rsqrt, sin, ...)
    LOAD = "load"          # global/local memory load
    STORE = "store"        # global memory store
    TRACE = "trace"        # hand-off to the RT unit (traceRayEXT)
    FILTER = "filter"      # Zatel's injected filter_shader
    EXIT = "exit"          # thread exit


@dataclass(frozen=True)
class PTXInstruction:
    """One (possibly repeated) PTX instruction.

    ``repeat`` collapses runs of same-class instructions so shader programs
    stay small while preserving exact instruction counts.
    """

    opcode: str
    klass: InstructionClass
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError("instruction repeat count must be >= 1")


@dataclass
class ShaderProgram:
    """An ordered list of PTX instructions forming one shader stage."""

    name: str
    instructions: list[PTXInstruction] = field(default_factory=list)

    def instruction_count(self, klass: InstructionClass | None = None) -> int:
        """Total dynamic instructions, optionally filtered by class."""
        return sum(
            inst.repeat
            for inst in self.instructions
            if klass is None or inst.klass is klass
        )

    def prepend(self, instructions: list[PTXInstruction]) -> "ShaderProgram":
        """New program with ``instructions`` injected at the top."""
        return ShaderProgram(self.name, list(instructions) + list(self.instructions))


def raygen_shader(setup_instructions: int = 20) -> ShaderProgram:
    """The ray-generation shader skeleton.

    Mirrors a typical Vulkan ray-gen shader: compute the pixel's camera ray
    (ALU + a reciprocal-sqrt normalize), call ``traceRayEXT``, then write the
    shaded result to the framebuffer.
    """
    return ShaderProgram(
        name="raygen",
        instructions=[
            PTXInstruction("mad.lo.s32", InstructionClass.ALU, 4),  # pixel coords
            PTXInstruction("cvt.rn.f32.s32", InstructionClass.ALU, 2),
            PTXInstruction("fma.rn.f32", InstructionClass.ALU, setup_instructions - 9),
            PTXInstruction("rsqrt.approx.f32", InstructionClass.SFU, 1),
            PTXInstruction("mul.f32", InstructionClass.ALU, 2),
            PTXInstruction("traceRayEXT", InstructionClass.TRACE, 1),
            PTXInstruction("st.global.v4.f32", InstructionClass.STORE, 1),
            PTXInstruction("exit", InstructionClass.EXIT, 1),
        ],
    )


def inject_filter_shader(program: ShaderProgram) -> ShaderProgram:
    """Inject Zatel's pixel filter at the top of a shader (paper Listing 1).

    The injected pair is::

        filter_shader %p1;   // %p1 <- 0 if the pixel is filtered out
        @!%p1 exit;

    Filtered threads execute exactly :data:`FILTER_EXIT_INSTRUCTIONS`
    instructions; surviving threads pay the same two-instruction overhead
    and continue.
    """
    return program.prepend(
        [
            PTXInstruction("filter_shader", InstructionClass.FILTER, 1),
            PTXInstruction("@!%p1 exit", InstructionClass.EXIT, 1),
        ]
    )
