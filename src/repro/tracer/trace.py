"""Trace data structures produced by the functional tracer.

A :class:`PixelTrace` is the contract between the ray tracer and everything
downstream:

* the **heatmap** (step 1 of Zatel) reads its :meth:`PixelTrace.cost` — the
  per-pixel runtime proxy;
* the **GPU timing simulator** replays its alternating compute/ray-trace
  *op pattern* through SMs, RT units and the cache hierarchy.

Every pixel's op pattern is strictly alternating::

    COMPUTE (ray-gen setup) , [ RT (traversal) , COMPUTE (shader) ] * N

which lets warps of 32 pixels execute in lock-step with a shrinking active
mask, exactly like SIMT reconvergence at shader exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["SegmentKind", "RaySegment", "PixelTrace", "FrameTrace"]


class SegmentKind(Enum):
    """What role a traced ray played in the light-transport path."""

    PRIMARY = "primary"
    SHADOW = "shadow"
    REFLECTION = "reflection"
    BOUNCE = "bounce"


@dataclass
class RaySegment:
    """One ray's walk through the scene.

    Attributes:
        kind: the ray's role (primary/shadow/reflection/diffuse bounce).
        nodes: BVH node indices visited, in order.
        tris: triangle indices whose intersection test executed.
        hit: whether the ray found an intersection (for shadow rays:
            whether it was occluded).
        shade_instructions: ALU instructions the shader runs after this
            segment returns (hit/miss shading, next-ray setup).
    """

    kind: SegmentKind
    nodes: list[int]
    tris: list[int]
    hit: bool
    shade_instructions: int

    def traversal_steps(self) -> int:
        """Number of BVH node visits (the RT unit's work for this ray)."""
        return len(self.nodes)


@dataclass
class PixelTrace:
    """Complete functional trace of one pixel across all its samples."""

    px: int
    py: int
    segments: list[RaySegment] = field(default_factory=list)
    #: Ray-generation setup instructions executed before the first trace.
    raygen_instructions: int = 24

    def total_nodes(self) -> int:
        """Total BVH node visits across all segments."""
        return sum(len(s.nodes) for s in self.segments)

    def total_tris(self) -> int:
        """Total triangle intersection tests across all segments."""
        return sum(len(s.tris) for s in self.segments)

    def total_instructions(self) -> int:
        """Total shader ALU instructions (excluding RT-unit work)."""
        return self.raygen_instructions + sum(
            s.shade_instructions for s in self.segments
        )

    def cost(self) -> float:
        """Per-pixel runtime proxy used to build the execution-time heatmap.

        Weights approximate relative hardware latencies: a node visit is a
        cache access + box test, a triangle test is heavier, and plain ALU
        instructions are cheap.  The heatmap only needs a monotone proxy of
        runtime (the paper profiles wall-clock on a hardware GPU), so the
        exact weights are not critical.
        """
        return (
            4.0 * self.total_nodes()
            + 6.0 * self.total_tris()
            + 1.0 * self.total_instructions()
        )


@dataclass
class FrameTrace:
    """Functional traces for (a subset of) an image plane.

    ``pixels`` maps ``(px, py)`` to that pixel's trace.  A frame trace over
    the full plane is the single most expensive artifact in the pipeline, so
    the harness caches one per (scene, resolution, spp) and every experiment
    replays it.
    """

    width: int
    height: int
    samples_per_pixel: int
    scene_name: str
    pixels: dict[tuple[int, int], PixelTrace] = field(default_factory=dict)
    #: Which tracer produced this trace ("scalar" or "packet").  Provenance
    #: only — both backends emit byte-identical traces, so it is excluded
    #: from equality.
    backend: str = field(default="scalar", compare=False)

    def get(self, px: int, py: int) -> PixelTrace:
        """Trace of pixel ``(px, py)``; raises ``KeyError`` if not traced."""
        return self.pixels[(px, py)]

    def cost_map(self):
        """Dense ``height x width`` array of per-pixel costs (0 = untraced).

        Imported lazily to keep this module numpy-free for the dataclasses.
        """
        import numpy as np

        grid = np.zeros((self.height, self.width), dtype=np.float64)
        for (px, py), trace in self.pixels.items():
            grid[py, px] = trace.cost()
        return grid

    def total_cost(self) -> float:
        """Sum of all traced pixels' costs."""
        return sum(t.cost() for t in self.pixels.values())
