"""Portable frame-trace serialization (the ``.ztrace`` format).

Frame traces are the repository's most expensive artifact (minutes of
functional tracing for large planes), and the natural unit to share
between machines or check into workload repositories.  Pickle works for
local caching, but is Python-version-bound and opaque; ``.ztrace`` is a
small, versioned, compressed binary format:

::

    magic   b"ZTRC"
    version u32
    header  zlib(json): width, height, spp, scene name, pixel count
    body    zlib(packed segments):
              per pixel:  px, py, raygen, segment count
              per segment: kind, hit, shade, node count, tri count,
                           node indices..., tri indices...

All integers are little-endian; indices are u32 (BVHs beyond 4G nodes are
beyond this simulator anyway).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

from .trace import FrameTrace, PixelTrace, RaySegment, SegmentKind

__all__ = ["save_frame", "load_frame", "FORMAT_VERSION"]

_MAGIC = b"ZTRC"
FORMAT_VERSION = 1

_KIND_CODES = {kind: code for code, kind in enumerate(SegmentKind)}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def save_frame(frame: FrameTrace, path: str | Path) -> Path:
    """Serialize ``frame`` to ``path`` in the ``.ztrace`` format."""
    header = json.dumps(
        {
            "width": frame.width,
            "height": frame.height,
            "spp": frame.samples_per_pixel,
            "scene": frame.scene_name,
            "pixels": len(frame.pixels),
            # Provenance only; older readers ignore unknown header keys.
            "backend": getattr(frame, "backend", "scalar"),
        }
    ).encode()

    chunks: list[bytes] = []
    for (px, py), trace in frame.pixels.items():
        chunks.append(
            struct.pack(
                "<HHHH", px, py, trace.raygen_instructions, len(trace.segments)
            )
        )
        for segment in trace.segments:
            chunks.append(
                struct.pack(
                    "<BBHII",
                    _KIND_CODES[segment.kind],
                    1 if segment.hit else 0,
                    segment.shade_instructions,
                    len(segment.nodes),
                    len(segment.tris),
                )
            )
            chunks.append(
                struct.pack(f"<{len(segment.nodes)}I", *segment.nodes)
            )
            chunks.append(struct.pack(f"<{len(segment.tris)}I", *segment.tris))
    body = zlib.compress(b"".join(chunks), level=6)
    header_z = zlib.compress(header, level=6)

    path = Path(path)
    with path.open("wb") as f:
        f.write(_MAGIC)
        f.write(struct.pack("<I", FORMAT_VERSION))
        f.write(struct.pack("<I", len(header_z)))
        f.write(header_z)
        f.write(struct.pack("<I", len(body)))
        f.write(body)
    return path


def load_frame(path: str | Path) -> FrameTrace:
    """Deserialize a ``.ztrace`` file back into a :class:`FrameTrace`.

    Raises:
        ValueError: on a bad magic, unsupported version, or truncation.
    """
    raw = Path(path).read_bytes()
    if raw[:4] != _MAGIC:
        raise ValueError(f"{path}: not a .ztrace file")
    (version,) = struct.unpack_from("<I", raw, 4)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported .ztrace version {version} "
            f"(supported: {FORMAT_VERSION})"
        )
    offset = 8
    (header_len,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    header = json.loads(zlib.decompress(raw[offset : offset + header_len]))
    offset += header_len
    (body_len,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    body = zlib.decompress(raw[offset : offset + body_len])

    frame = FrameTrace(
        width=header["width"],
        height=header["height"],
        samples_per_pixel=header["spp"],
        scene_name=header["scene"],
        # Files written before the key existed were all scalar-traced.
        backend=header.get("backend", "scalar"),
    )
    cursor = 0
    try:
        for _ in range(header["pixels"]):
            px, py, raygen, n_segments = struct.unpack_from("<HHHH", body, cursor)
            cursor += 8
            trace = PixelTrace(px=px, py=py, raygen_instructions=raygen)
            for _ in range(n_segments):
                kind_code, hit, shade, n_nodes, n_tris = struct.unpack_from(
                    "<BBHII", body, cursor
                )
                cursor += 12
                nodes = list(
                    struct.unpack_from(f"<{n_nodes}I", body, cursor)
                )
                cursor += 4 * n_nodes
                tris = list(struct.unpack_from(f"<{n_tris}I", body, cursor))
                cursor += 4 * n_tris
                trace.segments.append(
                    RaySegment(
                        kind=_CODE_KINDS[kind_code],
                        nodes=nodes,
                        tris=tris,
                        hit=bool(hit),
                        shade_instructions=shade,
                    )
                )
            frame.pixels[(px, py)] = trace
    except struct.error as error:
        raise ValueError(f"{path}: truncated .ztrace body") from error
    return frame
