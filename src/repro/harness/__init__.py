"""Experiment harness: cached runners, error metrics, report formatting."""

from .metrics import (
    RATE_METRICS,
    degraded_summary,
    mae,
    metric_error,
    metric_errors,
    percent_error,
    result_errors,
)
from .reporting import format_table, format_value, results_dir, save_result
from .runner import (
    DEFAULT_HEIGHT,
    DEFAULT_WIDTH,
    Runner,
    Workload,
    shared_runner,
)

__all__ = [
    "DEFAULT_HEIGHT",
    "DEFAULT_WIDTH",
    "Runner",
    "Workload",
    "degraded_summary",
    "format_table",
    "format_value",
    "mae",
    "metric_error",
    "metric_errors",
    "percent_error",
    "RATE_METRICS",
    "result_errors",
    "results_dir",
    "save_result",
    "shared_runner",
]
