"""Experiment runner with frame-trace and full-simulation caching.

Every experiment needs (a) a functional frame trace per scene and (b) a
ground-truth full simulation per (scene, GPU config).  Both are
deterministic and expensive, so the runner memoizes them in memory and —
for the frame traces and full sims — pickles them under ``.cache/`` so
re-running the benchmark suite is cheap.

The canonical experiment plane is
:data:`DEFAULT_WIDTH` x :data:`DEFAULT_HEIGHT` (the paper uses 512x512 on a
C++ simulator; see DESIGN.md's scale discussion).
"""

from __future__ import annotations

import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from ..core.executor import ExecutionPolicy
from ..core.pipeline import Zatel, ZatelConfig, ZatelResult
from ..errors import CacheCorruptionError
from ..gpu.config import GPUConfig
from ..gpu.frontend import compile_kernel
from ..gpu.simulator import CycleSimulator
from ..gpu.stats import SimulationStats
from ..scene.library import make_scene
from ..scene.scene import Scene
from ..tracer.tracer import FunctionalTracer, RenderSettings
from ..tracer.trace import FrameTrace

__all__ = ["Workload", "Runner", "shared_runner", "DEFAULT_WIDTH", "DEFAULT_HEIGHT"]

logger = logging.getLogger("repro.harness")

#: Bump to invalidate on-disk caches after model-affecting code changes.
CACHE_VERSION = 5

DEFAULT_WIDTH = 128
DEFAULT_HEIGHT = 128

#: Unpickling failure modes treated as "corrupt cache file, recompute".
_CORRUPT_PICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
)


def _atomic_pickle(obj, path: Path) -> None:
    """Pickle ``obj`` to ``path`` via a temp file + ``os.replace``, so an
    interrupted writer can never leave a truncated cache entry behind."""
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with tmp.open("wb") as handle:
            pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_pickle(path: Path):
    """Unpickle ``path``, or ``None`` if it is missing or corrupt.

    A corrupt file (truncated pickle from an interrupted run, stale class
    layout, ...) is deleted and logged as a
    :class:`~repro.errors.CacheCorruptionError` so the caller recomputes
    instead of crashing — one bad file must not poison every later
    benchmark.
    """
    if not path.exists():
        return None
    try:
        with path.open("rb") as handle:
            return pickle.load(handle)
    except _CORRUPT_PICKLE_ERRORS as error:
        logger.warning(
            "%s",
            CacheCorruptionError(
                f"corrupt cache file {path} ({type(error).__name__}: "
                f"{error}); deleted, recomputing"
            ),
        )
        path.unlink(missing_ok=True)
        return None


@dataclass(frozen=True)
class Workload:
    """One ray-tracing workload: a scene at a resolution and sample count."""

    scene_name: str
    width: int = DEFAULT_WIDTH
    height: int = DEFAULT_HEIGHT
    samples_per_pixel: int = 1
    seed: int = 0

    def settings(self) -> RenderSettings:
        return RenderSettings(
            width=self.width,
            height=self.height,
            samples_per_pixel=self.samples_per_pixel,
            seed=self.seed,
        )

    def key(self) -> str:
        """Stable cache key."""
        return (
            f"{self.scene_name}_{self.width}x{self.height}"
            f"_spp{self.samples_per_pixel}_s{self.seed}_v{CACHE_VERSION}"
        )


class Runner:
    """Caches scenes, frame traces and ground-truth simulations."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        if cache_dir is None:
            cache_dir = Path(__file__).resolve().parents[3] / ".cache"
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._frames: dict[str, FrameTrace] = {}
        self._full_sims: dict[tuple[str, str], SimulationStats] = {}

    # ------------------------------------------------------------------

    def scene(self, name: str) -> Scene:
        """The (process-cached) library scene."""
        return make_scene(name)

    def frame(self, workload: Workload) -> FrameTrace:
        """Full-plane functional trace of a workload, cached to disk."""
        key = workload.key()
        if key in self._frames:
            return self._frames[key]
        path = self.cache_dir / f"frame_{key}.pkl"
        frame = _load_pickle(path)
        if frame is None:
            frame = FunctionalTracer(
                self.scene(workload.scene_name), workload.settings()
            ).trace_frame()
            _atomic_pickle(frame, path)
        self._frames[key] = frame
        return frame

    def full_sim(self, workload: Workload, gpu: GPUConfig) -> SimulationStats:
        """Ground truth: simulate every pixel on the full configuration."""
        key = (workload.key(), gpu.name)
        if key in self._full_sims:
            return self._full_sims[key]
        path = self.cache_dir / f"full_{workload.key()}_{gpu.name}.pkl"
        stats = _load_pickle(path)
        if stats is None:
            scene = self.scene(workload.scene_name)
            frame = self.frame(workload)
            pixels = workload.settings().all_pixels()
            warps = compile_kernel(frame, pixels, scene.addresses)
            stats = CycleSimulator(gpu, scene.addresses).run(warps)
            _atomic_pickle(stats, path)
        self._full_sims[key] = stats
        return stats

    # ------------------------------------------------------------------

    def zatel(
        self,
        workload: Workload,
        gpu: GPUConfig,
        config: ZatelConfig | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> ZatelResult:
        """Run the Zatel pipeline on a workload (not cached: it is the
        system under test and is cheap relative to ground truth).

        ``policy`` threads through to the fault-tolerant execution engine
        (workers, timeouts, retries, checkpoint/resume)."""
        scene = self.scene(workload.scene_name)
        frame = self.frame(workload)
        return Zatel(gpu, config).predict(scene, frame, policy=policy)

    def checkpoint_dir(self, workload: Workload, gpu: GPUConfig) -> Path:
        """Canonical per-(workload, GPU) checkpoint directory for
        resumable predictions."""
        return self.cache_dir / "checkpoints" / f"{workload.key()}_{gpu.name}"


_shared: Runner | None = None


def shared_runner() -> Runner:
    """Process-wide runner so benchmarks share caches."""
    global _shared
    if _shared is None:
        _shared = Runner()
    return _shared
