"""Experiment runner backed by the content-addressed artifact store.

Every experiment needs (a) a functional frame trace per scene and (b) a
ground-truth full simulation per (scene, GPU config).  Both are
deterministic and expensive, so the runner memoizes them — in memory and
on disk — through a :class:`~repro.core.stages.store.ArtifactStore`
rooted at ``.cache/``, which provides atomic writes and corrupt-entry
recovery.  Cache keys are content fingerprints: the full-simulation key
hashes the *entire* :class:`~repro.gpu.config.GPUConfig` (not just its
name), so editing a config under an unchanged name can never serve a
stale simulation.

The runner is also the convenient entry into sweep planning:
:meth:`Runner.sweep` executes a grid of
:class:`~repro.core.stages.sweep.SweepPoint`\\ s as a deduplicated stage
DAG over the shared store, so overlapping points (same scene, same
profiling knobs) profile and quantize exactly once.

The canonical experiment plane is
:data:`DEFAULT_WIDTH` x :data:`DEFAULT_HEIGHT` (the paper uses 512x512 on a
C++ simulator; see DESIGN.md's scale discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.executor import ExecutionPolicy
from ..core.pipeline import Zatel, ZatelConfig, ZatelResult
from ..core.stages.fingerprint import gpu_fingerprint, stable_hash
from ..core.stages.store import ArtifactStore
from ..core.stages.sweep import SweepPlanner, SweepPoint, SweepResult
from ..gpu.config import GPUConfig
from ..gpu.frontend import compile_kernel
from ..gpu.simulator import make_simulator
from ..gpu.stats import SimulationStats
from ..scene.registry import resolve_scene
from ..scene.scene import Scene
from ..scene.spec import SceneSpec
from ..tracer.tracer import FunctionalTracer, RenderSettings
from ..tracer.trace import FrameTrace

__all__ = ["Workload", "Runner", "shared_runner", "DEFAULT_WIDTH", "DEFAULT_HEIGHT"]

#: Bump to invalidate on-disk caches after model-affecting code changes.
#: v9: pluggable sampling engine (sampler identity in stage fingerprints,
#: results carry variances + sampler provenance).
#: v10: backend-selectable cycle simulator (SimulationStats carries
#: sim_backend provenance; older pickles lack the field).
#: v11: first-class scene specs (scene identity is a SceneSpec — recipe
#: knobs, seeds and sequence frames enter every fingerprint; scenes carry
#: their spec and scene_fingerprint hashes it).
CACHE_VERSION = 11

DEFAULT_WIDTH = 128
DEFAULT_HEIGHT = 128


@dataclass(frozen=True)
class Workload:
    """One ray-tracing workload: a scene at a resolution and sample count.

    ``scene_name`` is either a library scene name string (legacy form)
    or a full :class:`~repro.scene.spec.SceneSpec` — procedural recipes
    and sequence frames hash into the cache keys exactly like any other
    workload coordinate.
    """

    scene_name: str | SceneSpec
    width: int = DEFAULT_WIDTH
    height: int = DEFAULT_HEIGHT
    samples_per_pixel: int = 1
    seed: int = 0
    #: Tracing backend ("packet" or "scalar").  Backends emit byte-identical
    #: traces, so this selects execution strategy and provenance only.
    backend: str = "packet"

    def settings(self) -> RenderSettings:
        return RenderSettings(
            width=self.width,
            height=self.height,
            samples_per_pixel=self.samples_per_pixel,
            seed=self.seed,
            tracing_backend=self.backend,
        )

    def key(self) -> str:
        """Stable, filesystem-safe cache key component.

        Spec-identified scenes use a fingerprint-prefix token: recipe
        labels repeat across seeds and contain path-hostile characters.
        """
        scene = self.scene_name
        token = (
            scene
            if isinstance(scene, str)
            else f"{scene.name}-{scene.fingerprint()[:16]}"
        )
        return (
            f"{token}_{self.width}x{self.height}"
            f"_spp{self.samples_per_pixel}_s{self.seed}"
            f"_{self.backend}_v{CACHE_VERSION}"
        )


class Runner:
    """Caches scenes, frame traces and ground-truth simulations."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        if cache_dir is None:
            cache_dir = Path(__file__).resolve().parents[3] / ".cache"
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.store = ArtifactStore(self.cache_dir)

    # ------------------------------------------------------------------
    # cache keys
    # ------------------------------------------------------------------

    @staticmethod
    def frame_key(workload: Workload) -> str:
        """Content address of a workload's full-plane frame trace."""
        return stable_hash("harness_frame", workload, CACHE_VERSION)

    @staticmethod
    def full_sim_key(workload: Workload, gpu: GPUConfig) -> str:
        """Content address of a ground-truth simulation.

        Hashes every field of ``gpu`` (via :func:`gpu_fingerprint`), not
        just its name: two configs sharing a name but differing in any
        architectural knob get distinct entries.
        """
        return stable_hash(
            "harness_full_sim", workload, gpu_fingerprint(gpu), CACHE_VERSION
        )

    # ------------------------------------------------------------------

    def scene(self, name: str | SceneSpec) -> Scene:
        """The (process-cached) scene for a library name or spec."""
        return resolve_scene(name)

    def frame(self, workload: Workload) -> FrameTrace:
        """Full-plane functional trace of a workload, cached to disk."""
        return self.store.get_or_compute(
            self.frame_key(workload),
            lambda: FunctionalTracer(
                self.scene(workload.scene_name), workload.settings()
            ).trace_frame(),
        )

    def full_sim(self, workload: Workload, gpu: GPUConfig) -> SimulationStats:
        """Ground truth: simulate every pixel on the full configuration."""

        def compute() -> SimulationStats:
            scene = self.scene(workload.scene_name)
            frame = self.frame(workload)
            pixels = workload.settings().all_pixels()
            warps = compile_kernel(frame, pixels, scene.addresses)
            stats = make_simulator(gpu, scene.addresses).run(warps)
            stats.backend = getattr(frame, "backend", "scalar")
            return stats

        return self.store.get_or_compute(
            self.full_sim_key(workload, gpu), compute
        )

    def telemetry_sim(
        self,
        workload: Workload,
        gpu: GPUConfig,
        interval: int,
        timeline: bool = True,
    ) -> SimulationStats:
        """Full simulation with the telemetry bus enabled.

        A convenience over :meth:`full_sim` with a telemetry-instrumented
        copy of ``gpu``; cached separately from the plain ground truth
        because :func:`~repro.core.stages.fingerprint.gpu_fingerprint`
        hashes every config field, telemetry knobs included.
        """
        from dataclasses import replace

        instrumented = replace(
            gpu, telemetry_interval=interval, timeline_trace=timeline
        )
        return self.full_sim(workload, instrumented)

    # ------------------------------------------------------------------

    def zatel(
        self,
        workload: Workload,
        gpu: GPUConfig,
        config: ZatelConfig | None = None,
        policy: ExecutionPolicy | None = None,
        store: ArtifactStore | None = None,
    ) -> ZatelResult:
        """Run the Zatel pipeline on a workload.

        Not cached by default: it is the system under test and is cheap
        relative to ground truth.  Pass ``store=runner.store`` (or any
        other) to memoize stage artifacts across calls — what the sweep
        planner does for whole grids.

        ``policy`` threads through to the fault-tolerant execution engine
        (workers, timeouts, retries, checkpoint/resume)."""
        scene = self.scene(workload.scene_name)
        frame = self.frame(workload)
        return Zatel(gpu, config).predict(scene, frame, policy=policy, store=store)

    def sweep(
        self,
        points: list[SweepPoint],
        policy: ExecutionPolicy | None = None,
        stage_policy: ExecutionPolicy | None = None,
        width: int = DEFAULT_WIDTH,
        height: int = DEFAULT_HEIGHT,
    ) -> SweepResult:
        """Execute a sweep grid as a deduplicated stage DAG.

        Loads each point's scene and frame through the runner's caches,
        then plans and runs the merged graph over the shared store — so
        shared profiling/quantization work executes exactly once per
        scene, and repeated sweeps reuse on-disk artifacts.
        """
        names = sorted({point.scene for point in points})
        scenes = {name: self.scene(name) for name in names}
        frames = {
            name: self.frame(Workload(name, width=width, height=height))
            for name in names
        }
        planner = SweepPlanner(
            store=self.store, policy=policy, stage_policy=stage_policy
        )
        return planner.run(points, scenes, frames)

    def campaign(
        self,
        campaign,
        policy: ExecutionPolicy | None = None,
        stage_policy: ExecutionPolicy | None = None,
    ):
        """Execute a :class:`~repro.core.stages.campaign.Campaign` with
        every frame trace and stage artifact cached through the runner's
        disk-backed store."""
        from ..core.stages.campaign import CampaignPlanner

        def frame_source(scene, point):
            workload = Workload(
                point.spec,
                width=point.size,
                height=point.size,
                samples_per_pixel=point.spp,
                seed=point.seed,
                backend=point.backend,
            )
            return self.store.get_or_compute(
                self.frame_key(workload),
                lambda: FunctionalTracer(
                    scene, workload.settings()
                ).trace_frame(),
            )

        planner = CampaignPlanner(
            store=self.store,
            policy=policy,
            stage_policy=stage_policy,
            scene_source=self.scene,
            frame_source=frame_source,
        )
        return planner.run(campaign)

    def checkpoint_dir(self, workload: Workload, gpu: GPUConfig) -> Path:
        """Canonical per-(workload, GPU) checkpoint directory for
        resumable predictions."""
        return self.cache_dir / "checkpoints" / f"{workload.key()}_{gpu.name}"


_shared: Runner | None = None


def shared_runner() -> Runner:
    """Process-wide runner so benchmarks share caches."""
    global _shared
    if _shared is None:
        _shared = Runner()
    return _shared
