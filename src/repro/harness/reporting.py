"""Plain-text tables and result persistence for the benchmark harness.

Each benchmark prints the rows/series the corresponding paper table or
figure reports, and also writes them under ``results/`` so EXPERIMENTS.md
can reference stable artifacts.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["format_table", "format_value", "save_result", "results_dir"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly cell rendering: floats trimmed, the rest ``str``-ed."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Fixed-width table with a rule under the header."""
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def results_dir() -> Path:
    """``results/`` at the repository root (created on demand)."""
    path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_result(name: str, content: str) -> Path:
    """Persist a benchmark's printed output to ``results/<name>.txt``."""
    path = results_dir() / f"{name}.txt"
    path.write_text(content + "\n")
    return path
