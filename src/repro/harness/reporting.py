"""Plain-text tables and result persistence for the benchmark harness.

Each benchmark prints the rows/series the corresponding paper table or
figure reports, and also writes them under ``results/`` so EXPERIMENTS.md
can reference stable artifacts.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "campaign_report",
    "format_table",
    "format_value",
    "save_result",
    "results_dir",
]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly cell rendering: floats trimmed, the rest ``str``-ed."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Fixed-width table with a rule under the header."""
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def campaign_report(result) -> dict:
    """JSON-able report artifact for one campaign execution.

    Everything a CI job or reviewer needs to audit the run: per-point QC
    verdicts with their violations, the predicted metrics (plus coverage
    and confidence intervals when the result carries them), the
    cross-frame prediction-cache stats for sequence frames, and the
    DAG-level dedup accounting.  Pure data — safe to ``json.dumps`` and
    diff across runs.
    """
    points = []
    for outcome in result.outcomes:
        point = outcome.point
        entry: dict = {
            "scene": point.spec.label(),
            "scene_payload": point.spec.payload(),
            "scene_fingerprint": point.spec.fingerprint(),
            "gpu": point.gpu.name,
            "mode": point.mode,
            "size": point.size,
            "spp": point.spp,
            "seed": point.seed,
            "backend": point.backend,
            "row": point.row,
            "verdict": outcome.verdict,
            "violations": list(outcome.violations),
        }
        if point.fraction is not None:
            entry["fraction"] = point.fraction
        if outcome.error is not None:
            entry["error"] = outcome.error
        value = outcome.value
        if value is not None:
            metrics = getattr(value, "metrics", None)
            if metrics:
                entry["metrics"] = {
                    name: float(metric) for name, metric in metrics.items()
                }
            coverage = getattr(value, "coverage", None)
            if coverage is not None:
                entry["coverage"] = float(coverage)
            intervals_fn = getattr(value, "confidence_intervals", None)
            intervals = intervals_fn() if callable(intervals_fn) else {}
            if intervals:
                entry["confidence_intervals"] = {
                    name: [float(lo), float(hi)]
                    for name, (lo, hi) in intervals.items()
                }
        if outcome.sequence is not None:
            entry["sequence_cache"] = dict(outcome.sequence)
        points.append(entry)
    return {
        "campaign": result.campaign.name,
        "fingerprint": result.campaign.fingerprint(),
        "succeeded": result.succeeded,
        "waves": result.waves,
        "verdicts": result.verdict_counts(),
        "points": points,
        "dag": {
            "total_nodes": result.total_nodes,
            "unique_nodes": result.unique_nodes,
            "deduplicated_nodes": result.total_nodes - result.unique_nodes,
        },
        "stages": {
            "executions": dict(result.counters.executions),
            "cache_hits": dict(result.counters.cache_hits),
        },
        "sequence_hit_rate": result.sequence_hit_rate(),
    }


def results_dir() -> Path:
    """``results/`` at the repository root (created on demand)."""
    path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_result(name: str, content: str) -> Path:
    """Persist a benchmark's printed output to ``results/<name>.txt``."""
    path = results_dir() / f"{name}.txt"
    path.write_text(content + "\n")
    return path
