"""Error metrics for comparing predictions against ground truth.

The paper reports per-metric *absolute error* and the *mean absolute
error* (MAE) across metrics or scenes.  Two flavours are used here,
matching how each metric is naturally expressed:

* unbounded metrics (cycles, IPC, RT efficiency) — relative error,
  ``|predicted - actual| / actual * 100``;
* rate metrics already in [0, 1] (cache miss rates, DRAM efficiency,
  bandwidth utilization) — *percentage-point* error,
  ``|predicted - actual| * 100``.  A relative error on a near-zero miss
  rate would explode on differences that are architecturally meaningless
  (e.g. 2% vs 4% miss rate is a 2-point error, not a "100% error").
"""

from __future__ import annotations

from ..errors import DegradedResultError
from ..gpu.stats import METRICS, SimulationStats
from ..gpu.telemetry import METRIC_SPECS

__all__ = [
    "RATE_METRICS",
    "percent_error",
    "metric_error",
    "metric_errors",
    "mae",
    "result_errors",
    "degraded_summary",
    "interval_half_width",
    "interval_brackets",
]

#: Metrics whose values live in [0, 1]; errors are percentage points.
#: Derived from the telemetry metric registry's ``point_error`` flag —
#: the single place each metric's error convention is declared.
RATE_METRICS = frozenset(
    spec.name for spec in METRIC_SPECS if spec.point_error
)


def percent_error(predicted: float, actual: float) -> float:
    """Absolute relative error in percent.

    A zero-actual / zero-predicted pair counts as exact; a zero actual with
    a non-zero prediction returns ``inf`` (the error is unbounded).
    """
    if actual == 0.0:
        return 0.0 if predicted == 0.0 else float("inf")
    return abs(predicted - actual) / abs(actual) * 100.0


def metric_error(name: str, predicted: float, actual: float) -> float:
    """Error of one metric, using the convention appropriate to it."""
    if name in RATE_METRICS:
        return abs(predicted - actual) * 100.0  # percentage points
    return percent_error(predicted, actual)


def metric_errors(
    predicted: dict[str, float],
    actual: SimulationStats | dict[str, float],
    metrics: tuple[str, ...] = METRICS,
) -> dict[str, float]:
    """Per-metric errors of a prediction against ground truth."""
    reference = actual.metrics() if isinstance(actual, SimulationStats) else actual
    return {
        name: metric_error(name, predicted[name], reference[name])
        for name in metrics
    }


def result_errors(
    result,
    actual: SimulationStats | dict[str, float],
    metrics: tuple[str, ...] = METRICS,
    require_full_coverage: bool = False,
) -> dict[str, float]:
    """Per-metric errors of a :class:`~repro.core.pipeline.ZatelResult`,
    aware of degraded (partial-coverage) runs.

    A degraded result's metrics are renormalized estimates over the
    surviving groups, so its errors are still comparable — but a
    benchmark that must not silently mix full and partial runs can pass
    ``require_full_coverage=True`` to get a
    :class:`~repro.errors.DegradedResultError` instead.
    """
    if require_full_coverage and getattr(result, "degraded", False):
        raise DegradedResultError(
            "degraded result (plane coverage "
            f"{result.coverage:.0%}) where full coverage is required; "
            f"{len(result.failures)} group(s) failed"
        )
    return metric_errors(result.metrics, actual, metrics)


def degraded_summary(result) -> str:
    """Human-readable account of a degraded run's lost groups, for
    benchmark reports that must state coverage honestly."""
    if not getattr(result, "degraded", False):
        return "full coverage (no group failures)"
    lines = [
        f"DEGRADED: {len(result.groups)} of "
        f"{len(result.groups) + len(result.failures)} groups survived "
        f"({result.coverage:.0%} plane coverage); metrics renormalized"
    ]
    lines += [f"  {record.describe()}" for record in result.failures]
    return "\n".join(lines)


def interval_half_width(variance: float, dof: int, level: float = 0.95) -> float:
    """Student-t half-width of a two-sided interval at ``level``.

    The harness-side primitive behind
    :meth:`~repro.core.pipeline.ZatelResult.confidence_intervals`; exposed
    so benchmark reports can annotate any (variance, dof) pair without a
    full result object.

    Raises:
        ValueError: for a negative variance, non-positive dof, or a
            level outside (0, 1).
    """
    import math

    if variance < 0.0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    from scipy.stats import t as student_t

    return float(student_t.ppf(0.5 + level / 2.0, dof)) * math.sqrt(variance)


def interval_brackets(
    result,
    actual: SimulationStats | dict[str, float],
    level: float = 0.95,
) -> dict[str, bool]:
    """Does each metric's interval bracket the ground-truth value?

    Returns ``{metric: bool}`` for every metric the result carries an
    interval for (empty for point predictions) — the sampler-parity CI
    gate's core check.
    """
    reference = actual.metrics() if isinstance(actual, SimulationStats) else actual
    return {
        name: lo <= reference[name] <= hi
        for name, (lo, hi) in result.confidence_intervals(level).items()
        if name in reference
    }


def mae(errors: dict[str, float] | list[float]) -> float:
    """Mean absolute error over a set of errors.

    Infinite entries (unbounded errors against a zero ground truth) are
    excluded rather than poisoning the mean; an all-infinite or empty input
    returns ``inf``.
    """
    values = list(errors.values()) if isinstance(errors, dict) else list(errors)
    finite = [v for v in values if v != float("inf")]
    if not finite:
        return float("inf")
    return sum(finite) / len(finite)
