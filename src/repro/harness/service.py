"""Service-mode runner: execute validated prediction specs.

The HTTP service's workers (and anything else that batches declarative
requests — queue consumers, notebook clients) need one entry point that
takes a :class:`~repro.core.stages.requests.PredictSpec` and returns a
JSON-able result payload, while sharing every cache the interactive
harness already maintains.  :class:`ServiceRunner` is that entry point:

* frame traces and stage artifacts flow through the wrapped
  :class:`~.runner.Runner`'s content-addressed store, so a served
  prediction reuses (and contributes to) exactly the artifacts the CLI
  and sweep planner use;
* execution goes through the stage-plan adapter
  (:func:`~repro.core.stages.requests.build_spec_graph`), so the worker
  drives the same graph ``Zatel.predict`` builds — plus per-request
  stage-execution counters for the payload's observability block;
* result fingerprints (:meth:`ServiceRunner.fingerprint`) incorporate
  :data:`~.runner.CACHE_VERSION`, so served results invalidate together
  with all other cached artifacts after a model-affecting change.
"""

from __future__ import annotations

import time

from ..core.executor import ExecutionPolicy
from ..core.pipeline import ZatelResult
from ..core.stages.base import StageContext
from ..core.stages.requests import PredictSpec, build_spec_graph, spec_fingerprint
from ..gpu.config import preset
from ..scene.spec import scene_label
from .runner import CACHE_VERSION, Runner, Workload, shared_runner

__all__ = ["ServiceRunner", "result_payload"]


def result_payload(
    scene_name: str, backend: str, gpu_name: str, result: ZatelResult
) -> dict:
    """A :class:`ZatelResult` as a JSON-able payload.

    The schema is shared by ``zatel predict --json`` and the service's
    ``POST /predict`` response — metrics plus the full audit surface
    (degraded flag, plane coverage, per-group failures, serial-fallback
    note), so callers can gate on quality without parsing tables.
    """
    return {
        "scene": scene_name,
        "backend": backend,
        "gpu": gpu_name,
        "scaled_gpu": result.scaled_gpu_name,
        "downscale_factor": result.downscale_factor,
        "mean_fraction": result.mean_fraction(),
        "metrics": {name: result.metrics[name] for name in result.metrics},
        # Sampling-engine provenance ({"name", "params", "seed"}) plus
        # the uncertainty block: per-metric variances and 95% Student-t
        # intervals as {metric: [lo, hi]} — both empty for the default
        # single-replicate point predictions.
        "sampler": dict(result.sampler),
        "variances": dict(result.variances),
        "confidence_intervals": {
            name: [lo, hi]
            for name, (lo, hi) in result.confidence_intervals().items()
        },
        "degraded": result.degraded,
        "coverage": result.coverage,
        "failures": [
            {
                "group": record.index,
                "error": record.error,
                "message": record.message,
                "attempts": record.attempts,
                "pixel_count": record.pixel_count,
            }
            for record in result.failures
        ],
        "serial_fallback": result.serial_fallback,
        # Simulator-backend provenance: which cycle-sim engine produced
        # the group runs ("serial" is exact; "sharded" has bounded,
        # documented drift — see docs/architecture.md).
        "sim_backend": result.sim_backend,
        "host_seconds": result.host_seconds,
    }


class ServiceRunner:
    """Executes :class:`PredictSpec`\\ s against a shared artifact store."""

    def __init__(
        self,
        runner: Runner | None = None,
        policy: ExecutionPolicy | None = None,
        fleet=None,
        timeline_interval: int = 0,
        timeline_sink=None,
    ) -> None:
        self.runner = runner if runner is not None else shared_runner()
        #: Execution policy applied to every served prediction (an
        #: operator knob: how the service runs, never what it returns).
        self.policy = policy if policy is not None else ExecutionPolicy()
        #: Optional :class:`~repro.fleet.coordinator.FleetCoordinator`:
        #: when set, group simulations scatter to remote workers.  Like
        #: ``policy``, purely an execution knob — results are
        #: byte-identical to the in-process path when no faults occur.
        self.fleet = fleet
        #: Telemetry snapshot interval (cycles) served predictions run
        #: with, feeding the dashboard's timeline view; 0 = off.  An
        #: observability knob like ``policy``: enabling telemetry never
        #: changes a prediction's metrics, so it stays out of the
        #: fingerprint and cached results remain byte-identical.
        self.timeline_interval = int(timeline_interval)
        #: ``sink(label, events, total_cycles, deltas)`` called after
        #: every instrumented prediction (from worker threads).
        self.timeline_sink = timeline_sink

    def fingerprint(self, spec: PredictSpec) -> str:
        """The spec's result-cache / single-flight key."""
        return spec_fingerprint(spec, version=CACHE_VERSION)

    def workload(self, spec: PredictSpec) -> Workload:
        return Workload(
            spec.scene,
            width=spec.size,
            height=spec.size,
            samples_per_pixel=spec.spp,
            seed=spec.seed,
            backend=spec.backend,
        )

    def execute(self, spec: PredictSpec, stats=None) -> dict:
        """Run one spec end to end; returns the result payload.

        ``stats`` is an optional
        :class:`~repro.gpu.telemetry.ServiceStats`: when given, the
        trace and predict stage latencies are recorded into its
        histograms.

        Raises:
            SimulationError: when the pipeline fails beyond rescue
                (quorum violation, unrecoverable corruption).
        """
        runner = self.runner
        workload = self.workload(spec)
        gpu = preset(spec.gpu)
        scene = runner.scene(spec.scene)

        start = time.perf_counter()
        frame = runner.frame(workload)
        trace_seconds = time.perf_counter() - start

        gpu_overrides = (
            {"telemetry_interval": self.timeline_interval, "timeline_trace": True}
            if self.timeline_interval > 0
            else None
        )
        _, graph, terminal = build_spec_graph(
            spec, scene, frame, quorum=self.policy.quorum,
            gpu_overrides=gpu_overrides,
        )
        ctx = StageContext(store=runner.store, policy=self.policy, fleet=self.fleet)
        predict_start = time.perf_counter()
        result: ZatelResult = graph.resolve(terminal, ctx).value
        predict_seconds = time.perf_counter() - predict_start
        result.host_seconds = time.perf_counter() - start
        result.serial_fallback = bool(
            ctx.execution_notes.get("serial_fallback", False)
        )

        if stats is not None:
            stats.observe("trace_seconds", trace_seconds)
            stats.observe("predict_seconds", predict_seconds)

        if self.timeline_sink is not None and gpu_overrides is not None:
            from ..viz.timeline_model import prediction_deltas, prediction_events

            events, total_cycles = prediction_events(result)
            if events:
                self.timeline_sink(
                    f"{scene_label(spec.scene)} {spec.size}x{spec.size} "
                    f"{spec.backend}/{spec.gpu}",
                    events,
                    total_cycles,
                    prediction_deltas(result),
                )

        payload = result_payload(
            scene_label(spec.scene), spec.backend, gpu.name, result
        )
        payload["stages"] = {
            "executions": dict(ctx.counters.executions),
            "cache_hits": dict(ctx.counters.cache_hits),
        }
        return payload

    def campaign_fingerprint(self, campaign) -> str:
        """A campaign's result-cache / single-flight key."""
        from ..core.stages.fingerprint import stable_hash

        return stable_hash(
            "campaign_result", campaign.fingerprint(), CACHE_VERSION
        )

    def execute_campaign(self, campaign, stats=None) -> dict:
        """Run one campaign end to end; returns the JSON-able report.

        Uses the wrapped runner's disk-backed store for every frame
        trace and stage artifact, so campaign points share work with
        served single predictions and CLI sweeps.  ``stats`` (a
        :class:`~repro.gpu.telemetry.ServiceStats`) picks up the
        per-point and sequence-cache counters for ``GET /metrics``.
        """
        from .reporting import campaign_report

        start = time.perf_counter()
        result = self.runner.campaign(campaign, policy=self.policy)
        report = campaign_report(result)
        report["host_seconds"] = time.perf_counter() - start
        if stats is not None:
            stats.campaign_points += len(result.outcomes)
            for outcome in result.outcomes:
                if outcome.sequence:
                    stats.seq_cache_lookups += outcome.sequence["lookups"]
                    stats.seq_cache_carried_hits += outcome.sequence[
                        "carried_hits"
                    ]
        return report
