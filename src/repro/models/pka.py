"""A Principal-Kernel-Analysis-style projection baseline.

Section IV-B argues PKA's *Principal Kernel Projection* — "terminate the
simulation when the desired metric stabilizes" — is risky for ray tracing:
"since most of our evaluated workloads ... involve tracing highly divergent
rays, Principal Kernel Projection might stop the simulation too early,
outputting a value with high error."

This predictor reproduces that behaviour: it simulates growing *contiguous
prefixes* of the warp launch order (as a time-ordered simulation would
retire them), checks whether per-warp cycles have stabilized between
checkpoints, stops at the first stable point and linearly projects.  On
scenes whose complexity is unevenly distributed across the plane (the top
rows are sky), the early stop locks in a biased estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.extrapolate import linear_extrapolate
from ..gpu.config import GPUConfig
from ..gpu.frontend import compile_kernel
from ..gpu.simulator import make_simulator
from ..gpu.stats import SimulationStats
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace

__all__ = ["PKAPrediction", "PKAProjection"]


@dataclass
class PKAPrediction:
    """Outcome of the projection, including where it stopped."""

    metrics: dict[str, float]
    stopped_fraction: float
    checkpoints: list[tuple[float, float]]  # (fraction, cycles-per-warp)
    stats: SimulationStats
    #: Work spent across every checkpoint simulation.
    work_units: int

    def speedup_vs(self, full: SimulationStats) -> float:
        if self.work_units <= 0:
            return float("inf")
        return full.work_units / self.work_units


class PKAProjection:
    """Early-termination projection over warp-launch-order prefixes."""

    def __init__(
        self,
        gpu_config: GPUConfig,
        step_fraction: float = 0.1,
        stability_threshold: float = 0.05,
    ) -> None:
        if not 0.0 < step_fraction <= 0.5:
            raise ValueError("step_fraction must be in (0, 0.5]")
        self.gpu_config = gpu_config
        self.step_fraction = step_fraction
        self.stability_threshold = stability_threshold

    def predict(self, scene: Scene, frame: FrameTrace) -> PKAPrediction:
        """Simulate prefixes until cycles-per-warp stabilizes, then project.

        The monitored metric is cycles per retired warp — the projection
        target the paper's critique concerns.  Stability means two
        consecutive checkpoints agree within ``stability_threshold``.
        """
        pixels = [
            (px, py) for py in range(frame.height) for px in range(frame.width)
        ]
        simulator = make_simulator(self.gpu_config, scene.addresses)
        checkpoints: list[tuple[float, float]] = []
        work = 0
        previous_rate: float | None = None
        stats: SimulationStats | None = None
        fraction = self.step_fraction
        while True:
            fraction = min(1.0, fraction)
            prefix = pixels[: max(1, int(len(pixels) * fraction))]
            warps = compile_kernel(frame, prefix, scene.addresses)
            stats = simulator.run(warps)
            work += stats.work_units
            rate = stats.cycles / max(1, stats.warps)
            checkpoints.append((fraction, rate))
            stable = (
                previous_rate is not None
                and abs(rate - previous_rate) <= self.stability_threshold * previous_rate
            )
            if stable or fraction >= 1.0:
                break
            previous_rate = rate
            fraction += self.step_fraction
        assert stats is not None
        return PKAPrediction(
            metrics=linear_extrapolate(stats, fraction),
            stopped_fraction=fraction,
            checkpoints=checkpoints,
            stats=stats,
            work_units=work,
        )
