"""The analytical-model lineage the paper's §II recounts.

GPU analytical models evolved through three generations, each fixing the
previous one's blind spot on the way to ray-tracing workloads:

* **GPUMech** (Huang et al., MICRO'14) — interval analysis over the
  instruction stream; "gave high errors for the emerging memory-divergent
  workloads" because it prices every memory access as if warps coalesce.
* **MDM** (Wang et al., MICRO'20) — adds the *memory divergence model*:
  a divergent warp issues many cache lines per access, so the memory
  interval is priced per distinct line and queueing at DRAM is modelled.
* **GCoM** (Lee et al., ISCA'22) — additionally models sub-core resources
  (for ray tracing, the RT unit's warp slots are the binding sub-core
  resource), giving the state of the art that the paper benchmarks Zatel
  against.

These are reduced-form reconstructions — each uses only aggregate trace
statistics and the GPU config, never a cycle simulation — built so the
repository can reproduce the lineage's error ordering on ray-tracing
workloads (``benchmarks/bench_analytical_lineage.py``).
:class:`~repro.models.analytical.AnalyticalModel` is the GCoM-generation
model with its full CPI-stack output; :class:`GCoMStyleModel` here simply
re-exports its cycle estimate in lineage form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.config import GPUConfig
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace
from .analytical import AnalyticalModel

__all__ = [
    "LineagePrediction",
    "GPUMechStyleModel",
    "MDMStyleModel",
    "GCoMStyleModel",
    "ANALYTICAL_LINEAGE",
]


@dataclass
class LineagePrediction:
    """A lineage model's cycle estimate with its interval breakdown."""

    cycles: float
    intervals: dict[str, float]
    model_name: str


class _TraceSummary:
    """Aggregate statistics every lineage generation consumes."""

    def __init__(self, scene: Scene, frame: FrameTrace, config: GPUConfig) -> None:
        traces = frame.pixels.values()
        self.pixels = len(frame.pixels)
        self.warps = max(1, (self.pixels + config.warp_size - 1) // config.warp_size)
        self.mean_active = self.pixels / self.warps
        self.instructions = sum(t.total_instructions() for t in traces)
        self.nodes = sum(t.total_nodes() for t in traces)
        self.tris = sum(t.total_tris() for t in traces)
        self.segments = sum(len(t.segments) for t in traces)
        # Lock-step traversal steps: the per-warp maximum is approximated
        # by the mean plus a divergence margin derived from the variance of
        # per-pixel node counts.
        per_pixel = [t.total_nodes() for t in traces]
        mean = self.nodes / max(1, self.pixels)
        var = sum((n - mean) ** 2 for n in per_pixel) / max(1, self.pixels)
        self.divergence = (var**0.5) / mean if mean > 0 else 0.0
        self.warp_steps = (self.nodes + self.tris) / max(1.0, self.mean_active)
        # Working set in cache lines.
        line = config.l1d.line_bytes
        self.working_set_lines = (
            scene.node_count() * 64 + scene.triangle_count() * 48
        ) / line


class GPUMechStyleModel:
    """Generation 1: interval analysis, *no* memory-divergence modelling.

    Every warp memory access is priced as one coalesced transaction whose
    latency is hidden by multithreading, so the model reduces to the issue
    interval plus a single average-latency term.  On divergent ray-tracing
    workloads this under-prices memory time badly — the §II critique.
    """

    name = "GPUMech-style"

    def __init__(self, gpu_config: GPUConfig) -> None:
        self.gpu_config = gpu_config

    def predict(self, scene: Scene, frame: FrameTrace) -> LineagePrediction:
        cfg = self.gpu_config
        summary = _TraceSummary(scene, frame, cfg)
        warp_instructions = summary.instructions / max(1.0, summary.mean_active)
        issue = warp_instructions / (cfg.num_sms * cfg.issue_width)
        # Coalesced-memory assumption: one transaction per warp-step,
        # latency fully overlapped beyond a single exposure per warp.
        exposure = cfg.l1d.latency * summary.warps / (
            cfg.num_sms * cfg.resident_warps_per_sm
        )
        intervals = {"issue": issue, "memory": exposure}
        return LineagePrediction(
            cycles=issue + exposure, intervals=intervals, model_name=self.name
        )


class MDMStyleModel:
    """Generation 2: adds the memory-divergence model.

    The memory interval is priced per *distinct line* a divergent warp
    touches, and DRAM is a bandwidth-limited queue — the two MDM insights.
    Sub-core structures (the RT unit) are still invisible.
    """

    name = "MDM-style"

    #: Assumed L1 hit rate for divergent BVH traffic.
    _L1_REUSE = 0.92

    def __init__(self, gpu_config: GPUConfig) -> None:
        self.gpu_config = gpu_config

    def predict(self, scene: Scene, frame: FrameTrace) -> LineagePrediction:
        cfg = self.gpu_config
        summary = _TraceSummary(scene, frame, cfg)
        warp_instructions = summary.instructions / max(1.0, summary.mean_active)
        issue = warp_instructions / (cfg.num_sms * cfg.issue_width)
        # Divergence: each warp-step touches ~(1 + divergence * lanes/4)
        # distinct lines (MDM prices transactions per line).
        lines_per_step = 1.0 + summary.divergence * summary.mean_active / 4.0
        line_traffic = summary.warp_steps * lines_per_step
        misses = line_traffic * (1.0 - self._L1_REUSE)
        l2_time = misses * cfg.l2_service_cycles / cfg.num_mem_partitions
        dram_lines = summary.working_set_lines
        dram_time = (
            dram_lines * cfg.dram_service_cycles_per_line / cfg.num_mem_partitions
        )
        memory = l2_time + dram_time
        intervals = {"issue": issue, "memory": memory}
        return LineagePrediction(
            cycles=max(issue, memory) + cfg.dram_latency,
            intervals=intervals,
            model_name=self.name,
        )


class GCoMStyleModel:
    """Generation 3: adds sub-core (RT-unit) modelling — the state of the
    art the paper compares Zatel against.  Delegates to
    :class:`~repro.models.analytical.AnalyticalModel`."""

    name = "GCoM-style"

    def __init__(self, gpu_config: GPUConfig) -> None:
        self._inner = AnalyticalModel(gpu_config)

    def predict(self, scene: Scene, frame: FrameTrace) -> LineagePrediction:
        prediction = self._inner.predict(scene, frame)
        return LineagePrediction(
            cycles=prediction.metrics["cycles"],
            intervals=prediction.intervals,
            model_name=self.name,
        )


#: The three generations, oldest first.
ANALYTICAL_LINEAGE = (GPUMechStyleModel, MDMStyleModel, GCoMStyleModel)
