"""Pixel-sampling baseline: Zatel's selection *without* GPU downscaling.

Section IV-D isolates the representative-pixel optimization by running the
model "on {10%, 20%, ..., 90%} of pixels without GPU downscaling" on the
full configuration and linearly extrapolating.  This predictor is that
experiment's engine (Figs. 13-16).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stages.base import StageContext, StageGraph, StageNode, source
from ..core.stages.concrete import (
    ProfileStage,
    QuantizeStage,
    SamplingSimulateStage,
)
from ..core.stages.fingerprint import (
    frame_fingerprint,
    gpu_fingerprint,
    scene_fingerprint,
)
from ..core.stages.store import ArtifactStore
from ..gpu.config import GPUConfig
from ..gpu.stats import SimulationStats
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace

__all__ = ["SamplingPrediction", "SamplingPredictor"]


@dataclass
class SamplingPrediction:
    """Extrapolated metrics from one sampled run on the full GPU."""

    fraction: float
    selected_count: int
    stats: SimulationStats
    metrics: dict[str, float]

    @property
    def work_units(self) -> int:
        return self.stats.work_units

    def speedup_vs(self, full: SimulationStats) -> float:
        """Simulation-time speedup over the full run (work-unit based)."""
        if self.stats.work_units <= 0:
            return float("inf")
        return full.work_units / self.stats.work_units


class SamplingPredictor:
    """Trace a fixed fraction of pixels on the *full* GPU and extrapolate."""

    def __init__(
        self,
        gpu_config: GPUConfig,
        distribution: str = "uniform",
        block_width: int = 32,
        block_height: int = 2,
        quantize_colors: int = 8,
        seed: int = 0,
    ) -> None:
        self.gpu_config = gpu_config
        self.distribution = distribution
        self.block_width = block_width
        self.block_height = block_height
        self.quantize_colors = quantize_colors
        self.seed = seed

    def predict(
        self,
        scene: Scene,
        frame: FrameTrace,
        fraction: float,
        store: ArtifactStore | None = None,
    ) -> SamplingPrediction:
        """Run the sampled simulation at ``fraction`` and extrapolate.

        The whole plane is treated as a single group: heatmap, quantize,
        select section blocks, simulate with the non-selected pixels
        filtered, then scale absolute metrics by ``1 / fraction``.

        ``store`` optionally memoizes stage outputs by content
        fingerprint, so a percentage sweep re-profiles and re-quantizes
        nothing after its first point.
        """
        ctx = StageContext(
            store=store if store is not None else ArtifactStore()
        )
        graph, terminal = self.build_graph(scene, frame, fraction)
        return graph.resolve(terminal, ctx).value

    def build_graph(
        self, scene: Scene, frame: FrameTrace, fraction: float
    ) -> tuple[StageGraph, StageNode]:
        """This baseline as a three-stage graph (profile, quantize,
        sampled simulate).

        The profile/quantize nodes carry the same fingerprints as the
        Zatel pipeline's when the knobs coincide, which is what lets a
        sweep planner share them across predictors.
        """
        graph = StageGraph()
        frame_src = source("frame", frame, key=frame_fingerprint(frame))
        scene_src = source("scene", scene, key=scene_fingerprint(scene))
        gpu_src = source(
            "gpu", self.gpu_config, key=gpu_fingerprint(self.gpu_config)
        )
        heatmap = graph.add(ProfileStage(), frame=frame_src)
        quantized = graph.add(
            QuantizeStage(self.quantize_colors, self.seed), heatmap=heatmap
        )
        simulated = graph.add(
            SamplingSimulateStage(
                fraction,
                distribution=self.distribution,
                block_width=self.block_width,
                block_height=self.block_height,
                seed=self.seed,
            ),
            frame=frame_src,
            quantized=quantized,
            gpu=gpu_src,
            scene=scene_src,
        )
        return graph, simulated
