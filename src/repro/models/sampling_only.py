"""Pixel-sampling baseline: Zatel's selection *without* GPU downscaling.

Section IV-D isolates the representative-pixel optimization by running the
model "on {10%, 20%, ..., 90%} of pixels without GPU downscaling" on the
full configuration and linearly extrapolating.  This predictor is that
experiment's engine (Figs. 13-16).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.extrapolate import linear_extrapolate
from ..core.quantize import quantize_heatmap
from ..core.heatmap import Heatmap
from ..core.selection import select_pixels
from ..gpu.config import GPUConfig
from ..gpu.frontend import compile_kernel
from ..gpu.simulator import CycleSimulator
from ..gpu.stats import SimulationStats
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace

__all__ = ["SamplingPrediction", "SamplingPredictor"]


@dataclass
class SamplingPrediction:
    """Extrapolated metrics from one sampled run on the full GPU."""

    fraction: float
    selected_count: int
    stats: SimulationStats
    metrics: dict[str, float]

    @property
    def work_units(self) -> int:
        return self.stats.work_units

    def speedup_vs(self, full: SimulationStats) -> float:
        """Simulation-time speedup over the full run (work-unit based)."""
        if self.stats.work_units <= 0:
            return float("inf")
        return full.work_units / self.stats.work_units


class SamplingPredictor:
    """Trace a fixed fraction of pixels on the *full* GPU and extrapolate."""

    def __init__(
        self,
        gpu_config: GPUConfig,
        distribution: str = "uniform",
        block_width: int = 32,
        block_height: int = 2,
        quantize_colors: int = 8,
        seed: int = 0,
    ) -> None:
        self.gpu_config = gpu_config
        self.distribution = distribution
        self.block_width = block_width
        self.block_height = block_height
        self.quantize_colors = quantize_colors
        self.seed = seed

    def predict(
        self, scene: Scene, frame: FrameTrace, fraction: float
    ) -> SamplingPrediction:
        """Run the sampled simulation at ``fraction`` and extrapolate.

        The whole plane is treated as a single group: heatmap, quantize,
        select section blocks, simulate with the non-selected pixels
        filtered, then scale absolute metrics by ``1 / fraction``.
        """
        heatmap = Heatmap.from_frame(frame)
        quantized = quantize_heatmap(heatmap, self.quantize_colors, seed=self.seed)
        pixels = [
            (px, py) for py in range(frame.height) for px in range(frame.width)
        ]
        selected = select_pixels(
            quantized,
            pixels,
            fraction,
            distribution=self.distribution,
            block_width=self.block_width,
            block_height=self.block_height,
            seed=self.seed,
        )
        warps = compile_kernel(frame, pixels, scene.addresses, selected=selected)
        stats = CycleSimulator(self.gpu_config, scene.addresses).run(warps)
        return SamplingPrediction(
            fraction=fraction,
            selected_count=len(selected),
            stats=stats,
            metrics=linear_extrapolate(stats, fraction),
        )
