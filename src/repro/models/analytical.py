"""A GCoM-style analytical performance model (comparison baseline).

Section IV-B compares Zatel against GCoM, the state-of-the-art GPU
analytical model (MAE 26.7%, 7.6x speedup, CPI-stack-only output).  GCoM
itself is closed source, so this module implements the same *family* of
model — interval analysis over trace statistics, no cycle simulation — to
serve as the comparison point:

* compute interval: dynamic instructions through the issue pipeline;
* RT interval: traversal steps through the RT units' warp slots;
* memory interval: estimated miss traffic through DRAM channels;
* cycles = the binding bottleneck plus a latency ramp-up term.

Like GCoM, it produces only pipeline-level outputs (cycles, IPC); cache
and DRAM metrics are *heuristic estimates*, illustrating the limitation the
paper calls out ("can only construct the CPI stack and does not provide
information on other metrics").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.config import GPUConfig
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace

__all__ = ["AnalyticalPrediction", "AnalyticalModel"]


@dataclass
class AnalyticalPrediction:
    """The analytical model's outputs and its CPI-stack decomposition."""

    metrics: dict[str, float]
    #: CPI-stack style breakdown: bottleneck cycle counts per component.
    intervals: dict[str, float]
    bottleneck: str


class AnalyticalModel:
    """Interval-analysis estimate of Table I metrics from trace statistics."""

    #: Assumed average L1 hit rate for BVH traffic when the working set
    #: exceeds the L1 (interval models use fixed service rates).
    _L1_REUSE = 0.92

    def __init__(self, gpu_config: GPUConfig) -> None:
        self.gpu_config = gpu_config

    def predict(self, scene: Scene, frame: FrameTrace) -> AnalyticalPrediction:
        """Estimate metrics for tracing every pixel of ``frame``.

        Unlike the simulator this never replays the trace — it reduces it
        to aggregate counts first, which is precisely why it cannot see
        divergence/queueing interactions (the paper's critique).
        """
        cfg = self.gpu_config
        traces = frame.pixels.values()
        total_instructions = sum(t.total_instructions() for t in traces)
        total_nodes = sum(t.total_nodes() for t in traces)
        total_tris = sum(t.total_tris() for t in traces)
        total_segments = sum(len(t.segments) for t in traces)
        pixels = len(frame.pixels)
        warps = max(1, (pixels + cfg.warp_size - 1) // cfg.warp_size)

        # --- compute interval: issue-port throughput ---
        # Warp-instructions approximate thread-instructions / active lanes.
        mean_active = pixels / warps
        warp_instructions = total_instructions / max(1.0, mean_active)
        compute_cycles = warp_instructions / (cfg.num_sms * cfg.issue_width)

        # --- RT interval: traversal-step throughput through warp slots ---
        steps = (total_nodes + total_tris) / max(1.0, mean_active)
        rt_throughput = cfg.num_sms * cfg.rt_units_per_sm * cfg.rt_max_warps
        rt_cycles = steps * cfg.rt_step_cycles / rt_throughput

        # --- memory interval: miss traffic through DRAM ---
        line = cfg.l1d.line_bytes
        node_lines = total_nodes * (1.0 - self._L1_REUSE)
        tri_lines = total_tris * (1.0 - self._L1_REUSE)
        working_set_lines = (
            scene.node_count() * 64 + scene.triangle_count() * 48
        ) / line
        l2_lines = cfg.l2_total_bytes / line
        l2_miss_rate = min(1.0, working_set_lines / max(1.0, l2_lines)) * 0.5
        dram_lines = working_set_lines + (node_lines + tri_lines) * l2_miss_rate
        dram_cycles = (
            dram_lines
            * cfg.dram_service_cycles_per_line
            / cfg.num_mem_partitions
        )

        intervals = {
            "compute": compute_cycles,
            "rt": rt_cycles,
            "memory": dram_cycles,
        }
        bottleneck = max(intervals, key=lambda k: intervals[k])
        # Ramp-up: one latency chain before the pipeline saturates.
        ramp_up = cfg.l2_slice.latency + cfg.dram_latency
        cycles = intervals[bottleneck] + ramp_up

        l1_miss = 1.0 - self._L1_REUSE
        metrics = {
            "ipc": total_instructions / cycles,
            "cycles": cycles,
            "l1d_miss_rate": l1_miss,
            "l2_miss_rate": l2_miss_rate,
            "rt_efficiency": mean_active * 0.5,
            "dram_efficiency": min(1.0, dram_cycles / cycles),
            "bw_utilization": min(1.0, dram_cycles / cycles),
        }
        return AnalyticalPrediction(
            metrics=metrics, intervals=intervals, bottleneck=bottleneck
        )

    @staticmethod
    def work_units(frame: FrameTrace) -> int:
        """Cost proxy of running the analytical model: one pass over the
        trace summary (a few counters per pixel)."""
        return len(frame.pixels)
