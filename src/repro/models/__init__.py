"""Baseline predictors Zatel is compared against: pixel-sampling without
downscaling (Section IV-D), a GCoM-style analytical model and a PKA-style
early-termination projection (Section IV-B)."""

from .analytical import AnalyticalModel, AnalyticalPrediction
from .lineage import (
    ANALYTICAL_LINEAGE,
    GCoMStyleModel,
    GPUMechStyleModel,
    LineagePrediction,
    MDMStyleModel,
)
from .pka import PKAPrediction, PKAProjection
from .sampling_only import SamplingPrediction, SamplingPredictor

__all__ = [
    "ANALYTICAL_LINEAGE",
    "AnalyticalModel",
    "AnalyticalPrediction",
    "GCoMStyleModel",
    "GPUMechStyleModel",
    "LineagePrediction",
    "MDMStyleModel",
    "PKAPrediction",
    "PKAProjection",
    "SamplingPrediction",
    "SamplingPredictor",
]
