"""Combining per-group predictions into one estimate (Zatel step 7).

Section III-H's rules: the groups' GPUs conceptually run *in parallel*, so
throughput metrics add (the paper's example: group IPCs of 20 and 50 sum to
70), while encapsulated metrics — cache miss rates, efficiencies, and the
simulation cycle count each group independently estimates — average.
"""

from __future__ import annotations

from ..gpu.stats import METRICS, MetricKind

__all__ = ["combine_group_metrics"]


def combine_group_metrics(group_metrics: list[dict[str, float]]) -> dict[str, float]:
    """Fold K groups' extrapolated metrics into the final prediction.

    ``THROUGHPUT`` metrics sum; everything else averages.  With
    fine-grained division each group homogeneously samples the scene, which
    is what justifies both rules.

    Raises:
        ValueError: for an empty group list.
    """
    if not group_metrics:
        raise ValueError("cannot combine zero groups")
    combined: dict[str, float] = {}
    k = len(group_metrics)
    for name in METRICS:
        values = [metrics[name] for metrics in group_metrics]
        if MetricKind.BY_METRIC[name] == MetricKind.THROUGHPUT:
            combined[name] = sum(values)
        else:
            combined[name] = sum(values) / k
    return combined
