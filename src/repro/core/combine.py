"""Combining per-group predictions into one estimate (Zatel step 7).

Section III-H's rules: the groups' GPUs conceptually run *in parallel*, so
throughput metrics add (the paper's example: group IPCs of 20 and 50 sum to
70), while encapsulated metrics — cache miss rates, efficiencies, and the
simulation cycle count each group independently estimates — average.

Both combiners are thin wrappers over the telemetry metric registry's
generic semantics-aware aggregator
(:func:`~repro.gpu.telemetry.aggregate_metrics`): each metric's
sum-vs-average behaviour is declared once on its
:class:`~repro.gpu.telemetry.MetricSpec`, not re-encoded here.
"""

from __future__ import annotations

from ..errors import DegradedResultError
from ..gpu.telemetry import aggregate_metrics, aggregate_variances

__all__ = [
    "combine_group_metrics",
    "combine_degraded_metrics",
    "combine_group_variances",
    "combine_degraded_variances",
]


def combine_group_metrics(group_metrics: list[dict[str, float]]) -> dict[str, float]:
    """Fold K groups' extrapolated metrics into the final prediction.

    ``THROUGHPUT`` metrics sum; everything else averages.  With
    fine-grained division each group homogeneously samples the scene, which
    is what justifies both rules.  Extended metrics combine only when all
    groups carry them (tolerating callers that build Table-I-only dicts).

    Raises:
        ValueError: for an empty group list.
    """
    if not group_metrics:
        raise ValueError("cannot combine zero groups")
    return aggregate_metrics(group_metrics)


def combine_degraded_metrics(
    group_metrics: list[dict[str, float]], coverage: float
) -> dict[str, float]:
    """Combine over *surviving* groups only, renormalized for honesty.

    ``coverage`` is the fraction of the image plane the survivors cover
    (surviving pixels / total pixels).  ``THROUGHPUT`` metrics would be
    under-counted by a plain sum — the failed groups' GPUs contribute
    nothing — so the sum is scaled by ``1 / coverage``.  Rate and
    absolute metrics are each group's *independent estimate of the full
    plane* (every group homogeneously samples the scene under
    fine-grained division), so averaging over survivors remains an
    unbiased estimate and needs no rescaling.

    Raises:
        DegradedResultError: if no groups survived.
        ValueError: for a coverage outside (0, 1].
    """
    if not group_metrics:
        raise DegradedResultError(
            "no surviving groups to combine — every group simulation "
            "failed permanently"
        )
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    return aggregate_metrics(group_metrics, throughput_divisor=coverage)


def combine_group_variances(
    group_variances: list[dict[str, float]],
) -> dict[str, float]:
    """Variance of :func:`combine_group_metrics` over independent groups.

    Mirrors the metric rules with squared scalings (see
    :func:`~repro.gpu.telemetry.aggregate_variances`): summed throughput
    metrics add their variances, averaged metrics add then divide by K².

    Raises:
        ValueError: for an empty group list.
    """
    if not group_variances:
        raise ValueError("cannot combine zero groups")
    return aggregate_variances(group_variances)


def combine_degraded_variances(
    group_variances: list[dict[str, float]], coverage: float
) -> dict[str, float]:
    """Variance of :func:`combine_degraded_metrics` over survivors.

    The ``1 / coverage`` rescaling of throughput sums enters the
    variance squared; averaged metrics divide by the survivor count
    squared, matching the renormalized point estimates.

    Raises:
        DegradedResultError: if no groups survived.
        ValueError: for a coverage outside (0, 1].
    """
    if not group_variances:
        raise DegradedResultError(
            "no surviving groups to combine — every group simulation "
            "failed permanently"
        )
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    return aggregate_variances(group_variances, throughput_divisor=coverage)
