"""Combining per-group predictions into one estimate (Zatel step 7).

Section III-H's rules: the groups' GPUs conceptually run *in parallel*, so
throughput metrics add (the paper's example: group IPCs of 20 and 50 sum to
70), while encapsulated metrics — cache miss rates, efficiencies, and the
simulation cycle count each group independently estimates — average.
"""

from __future__ import annotations

from ..errors import DegradedResultError
from ..gpu.stats import EXTENDED_METRICS, METRICS, MetricKind

__all__ = ["combine_group_metrics", "combine_degraded_metrics"]


def _combinable_names(group_metrics: list[dict[str, float]]) -> list[str]:
    """Metric names present in *every* group, in canonical order.

    Table I metrics are always there; extended metrics combine only when
    all groups carry them (tolerating callers that build Table-I-only
    dicts)."""
    return [
        name
        for name in METRICS + EXTENDED_METRICS
        if all(name in metrics for metrics in group_metrics)
    ]


def combine_group_metrics(group_metrics: list[dict[str, float]]) -> dict[str, float]:
    """Fold K groups' extrapolated metrics into the final prediction.

    ``THROUGHPUT`` metrics sum; everything else averages.  With
    fine-grained division each group homogeneously samples the scene, which
    is what justifies both rules.

    Raises:
        ValueError: for an empty group list.
    """
    if not group_metrics:
        raise ValueError("cannot combine zero groups")
    combined: dict[str, float] = {}
    k = len(group_metrics)
    for name in _combinable_names(group_metrics):
        values = [metrics[name] for metrics in group_metrics]
        if MetricKind.BY_METRIC[name] == MetricKind.THROUGHPUT:
            combined[name] = sum(values)
        else:
            combined[name] = sum(values) / k
    return combined


def combine_degraded_metrics(
    group_metrics: list[dict[str, float]], coverage: float
) -> dict[str, float]:
    """Combine over *surviving* groups only, renormalized for honesty.

    ``coverage`` is the fraction of the image plane the survivors cover
    (surviving pixels / total pixels).  ``THROUGHPUT`` metrics would be
    under-counted by a plain sum — the failed groups' GPUs contribute
    nothing — so the sum is scaled by ``1 / coverage``.  Rate and
    absolute metrics are each group's *independent estimate of the full
    plane* (every group homogeneously samples the scene under
    fine-grained division), so averaging over survivors remains an
    unbiased estimate and needs no rescaling.

    Raises:
        DegradedResultError: if no groups survived.
        ValueError: for a coverage outside (0, 1].
    """
    if not group_metrics:
        raise DegradedResultError(
            "no surviving groups to combine — every group simulation "
            "failed permanently"
        )
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    survivors = len(group_metrics)
    combined: dict[str, float] = {}
    for name in _combinable_names(group_metrics):
        values = [metrics[name] for metrics in group_metrics]
        if MetricKind.BY_METRIC[name] == MetricKind.THROUGHPUT:
            combined[name] = sum(values) / coverage
        else:
            combined[name] = sum(values) / survivors
    return combined
