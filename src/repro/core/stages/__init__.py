"""Composable pipeline stages, content-addressed artifacts, sweeps.

The seven-step Zatel pipeline decomposed into typed :class:`Stage` nodes
with deterministic fingerprints, executed through a :class:`StageGraph`
against a content-addressed :class:`ArtifactStore`, and planned at sweep
scale by the :class:`SweepPlanner` (which deduplicates shared stages
across sweep points before running them through the fault-tolerant
group executor).
"""

from .base import (
    Artifact,
    Stage,
    StageContext,
    StageCounters,
    StageGraph,
    StageNode,
    source,
)
from .concrete import (
    CombineStage,
    DownscaleStage,
    PartitionStage,
    ProfileStage,
    QuantizeStage,
    SamplingSimulateStage,
    SelectStage,
    SimulateGroupStage,
)
from .campaign import (
    Campaign,
    CampaignOutcome,
    CampaignPlanner,
    CampaignPoint,
    CampaignResult,
    QCGates,
    campaign_fingerprint,
    load_samplesheet,
    parse_samplesheet,
)
from .fingerprint import (
    frame_fingerprint,
    gpu_fingerprint,
    scene_fingerprint,
    stable_hash,
)
from .store import ArtifactStore, StoreStats
from .sweep import SweepOutcome, SweepPlan, SweepPlanner, SweepPoint, SweepResult

__all__ = [
    "Artifact",
    "ArtifactStore",
    "Campaign",
    "CampaignOutcome",
    "CampaignPlanner",
    "CampaignPoint",
    "CampaignResult",
    "CombineStage",
    "DownscaleStage",
    "PartitionStage",
    "ProfileStage",
    "QCGates",
    "QuantizeStage",
    "SamplingSimulateStage",
    "SelectStage",
    "SimulateGroupStage",
    "Stage",
    "StageContext",
    "StageCounters",
    "StageGraph",
    "StageNode",
    "StoreStats",
    "SweepOutcome",
    "SweepPlan",
    "SweepPlanner",
    "SweepPoint",
    "SweepResult",
    "campaign_fingerprint",
    "frame_fingerprint",
    "gpu_fingerprint",
    "load_samplesheet",
    "parse_samplesheet",
    "scene_fingerprint",
    "source",
    "stable_hash",
]
