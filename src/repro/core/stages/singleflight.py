"""Single-flight deduplication of concurrent identical computations.

The artifact store already deduplicates *sequential* work: a stage whose
fingerprint is cached never re-runs.  It cannot help when two callers
race on the same key — both miss, both compute, and the second write is
wasted.  :class:`SingleFlight` closes that window: the first caller for
a key becomes the *leader* and computes; every concurrent caller with
the same key becomes a *follower* and waits for the leader's value.

Two granularities are offered:

* :meth:`SingleFlight.do` — classic call coalescing: run ``fn`` once per
  key, hand the one result (or the one exception) to every concurrent
  caller.
* :meth:`SingleFlight.join` / :meth:`SingleFlight.finish` — object
  coalescing for callers that manage their own lifecycle, e.g. the
  service job queue attaching many HTTP requests to one in-flight
  :class:`~repro.service.queue.Job`.

All methods are thread-safe; the class holds no references to finished
flights, so keys are free to recur (a *later* request for the same key
is expected to hit the artifact/result cache instead).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TypeVar

__all__ = ["SingleFlight"]

T = TypeVar("T")


class _Call:
    """One in-flight leader computation plus its waiters."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Keyed coalescing of concurrent duplicate work (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, _Call] = {}
        self._entries: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # call coalescing
    # ------------------------------------------------------------------

    def do(self, key: str, fn: Callable[[], T]) -> tuple[T, bool]:
        """Run ``fn`` exactly once per concurrent ``key``.

        Returns ``(value, coalesced)``: the leader computes and gets
        ``coalesced=False``; concurrent followers block until the leader
        finishes and get its value with ``coalesced=True``.  If the
        leader raises, every follower re-raises the same exception.
        """
        with self._lock:
            call = self._calls.get(key)
            leader = call is None
            if leader:
                call = self._calls[key] = _Call()
        if not leader:
            call.done.wait()
            if call.error is not None:
                raise call.error
            return call.value, True
        try:
            call.value = fn()
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                del self._calls[key]
            call.done.set()
        return call.value, False

    # ------------------------------------------------------------------
    # object coalescing
    # ------------------------------------------------------------------

    def join(self, key: str, factory: Callable[[], T]) -> tuple[T, bool]:
        """The in-flight entry for ``key``, creating it via ``factory``.

        Returns ``(entry, created)``; ``created=False`` means the caller
        coalesced onto an entry another caller registered and has not
        yet :meth:`finish`\\ ed.  ``factory`` runs under the lock and
        must be cheap and non-reentrant.
        """
        with self._lock:
            if key in self._entries:
                return self._entries[key], False
            entry = factory()
            self._entries[key] = entry
            return entry, True

    def finish(self, key: str) -> Any:
        """Retire ``key``'s entry (no-op when absent); returns it."""
        with self._lock:
            return self._entries.pop(key, None)

    def get(self, key: str) -> Any:
        """The in-flight entry for ``key``, or ``None``."""
        with self._lock:
            return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._calls)
