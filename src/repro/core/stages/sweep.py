"""Sweep planning: many predictions as one deduplicated stage DAG.

The evaluation sweeps (Figs. 13-20) run grids of (scene x GPU config x
methodology variation).  Run naively, every sweep point re-profiles and
re-quantizes its scene from scratch even though those artifacts depend
only on the frame and a handful of knobs.  The :class:`SweepPlanner`
merges every point's stage graph, deduplicates nodes by fingerprint
*before executing anything* (fingerprints are static — see
:meth:`~.base.StageNode.fingerprint_static`), and then runs the unique
nodes level-by-level through the fault-tolerant
:class:`~repro.core.executor.GroupExecutor`.

A Fig 16-style sweep — one scene, many traced percentages — therefore
profiles and quantizes the scene exactly once; only the simulate stages
differ per point.  The per-stage execution/hit counters on the result
make that auditable (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ...gpu.config import GPUConfig
from ..executor import ExecutionPolicy, GroupExecutor
from .base import Artifact, StageContext, StageCounters, StageNode
from .store import ArtifactStore

__all__ = ["SweepPoint", "SweepPlan", "SweepOutcome", "SweepResult", "SweepPlanner"]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid.

    ``mode="zatel"`` runs the full seven-step pipeline under ``config``;
    ``mode="sampling"`` runs the Section IV-D sampling-only baseline at
    ``fraction`` of pixels on the full GPU (``config`` then contributes
    only the profiling/quantization/selection knobs).
    """

    scene: str
    gpu: GPUConfig
    config: Any = None  # ZatelConfig; None means defaults
    mode: str = "zatel"
    fraction: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("zatel", "sampling"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if self.mode == "sampling":
            if self.fraction is None or not 0.0 < self.fraction <= 1.0:
                raise ValueError(
                    "sampling-mode points need a fraction in (0, 1]"
                )

    def describe(self) -> str:
        if self.mode == "sampling":
            suffix = f"sampling@{self.fraction:.0%}"
        else:
            suffix = "zatel"
            sampler = getattr(self.config, "sampler", "heatmap")
            if sampler != "heatmap":
                suffix = f"zatel[{sampler}]"
        return f"{self.scene}/{self.gpu.name}/{suffix}"


@dataclass
class SweepPlan:
    """A merged, deduplicated DAG ready to execute.

    ``total_nodes`` counts stage invocations a naive point-by-point run
    would make; ``unique`` holds one representative node per distinct
    fingerprint.  The difference is work the planner eliminated before
    running anything.
    """

    points: list[SweepPoint]
    terminals: dict[SweepPoint, StageNode]
    terminal_keys: dict[SweepPoint, str]
    unique: dict[str, StageNode]
    levels: list[list[str]]
    total_nodes: int

    @property
    def unique_nodes(self) -> int:
        return len(self.unique)

    @property
    def deduplicated_nodes(self) -> int:
        return self.total_nodes - self.unique_nodes


@dataclass
class SweepOutcome:
    """One point's result — a value or an audited failure."""

    point: SweepPoint
    value: Any = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """Everything a sweep execution produced and observed."""

    outcomes: dict[SweepPoint, SweepOutcome]
    counters: StageCounters
    plan: SweepPlan
    failures: list[Any] = field(default_factory=list)

    def value(self, point: SweepPoint) -> Any:
        """The result for ``point``; raises if that point failed."""
        outcome = self.outcomes[point]
        if not outcome.ok:
            raise RuntimeError(
                f"sweep point {point.describe()} failed: {outcome.error}"
            )
        return outcome.value

    @property
    def succeeded(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes.values())

    def executions_of(self, stage_name: str) -> int:
        return self.counters.executions.get(stage_name, 0)


class SweepPlanner:
    """Plans and executes sweep grids over a shared artifact store.

    Args:
        store: artifact store shared across the sweep (and, when backed
            by disk, across runs); defaults to an ephemeral in-memory
            store.
        policy: execution policy for the *planner-level* task runs —
            each DAG level's unique stages execute as indexed tasks
            through :class:`~repro.core.executor.GroupExecutor` under
            this policy (retries, timeouts, optional forked workers).
        stage_policy: policy handed down to the per-group executor
            *inside* each simulate stage.
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        policy: ExecutionPolicy | None = None,
        stage_policy: ExecutionPolicy | None = None,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.stage_policy = stage_policy

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(
        self,
        points: list[SweepPoint],
        scenes: Mapping[str, Any],
        frames: Mapping[str, Any],
    ) -> SweepPlan:
        """Merge every point's stage graph and deduplicate by fingerprint.

        ``scenes``/``frames`` map scene names to the loaded
        :class:`~repro.scene.scene.Scene` and full-plane
        :class:`~repro.tracer.trace.FrameTrace` each point needs.
        """
        from ...models.sampling_only import SamplingPredictor
        from ..pipeline import Zatel, ZatelConfig

        terminals: dict[SweepPoint, StageNode] = {}
        terminal_keys: dict[SweepPoint, str] = {}
        unique: dict[str, StageNode] = {}
        fp_cache: dict[int, str] = {}
        total_nodes = 0

        for point in points:
            scene = scenes[point.scene]
            frame = frames[point.scene]
            config = point.config if point.config is not None else ZatelConfig()
            if point.mode == "zatel":
                predictor = Zatel(point.gpu, config)
                graph, terminal = predictor.build_graph(scene, frame)
            else:
                predictor = SamplingPredictor(
                    point.gpu,
                    distribution=config.distribution,
                    block_width=config.block_width,
                    block_height=config.block_height,
                    quantize_colors=config.quantize_colors,
                    seed=config.seed,
                )
                graph, terminal = predictor.build_graph(
                    scene, frame, point.fraction
                )
            terminals[point] = terminal
            terminal_keys[point] = terminal.fingerprint_static(fp_cache)
            total_nodes += len(graph.nodes)
            for node in graph.nodes:
                unique.setdefault(node.fingerprint_static(fp_cache), node)

        return SweepPlan(
            points=list(points),
            terminals=terminals,
            terminal_keys=terminal_keys,
            unique=unique,
            levels=self._levels(unique, fp_cache),
            total_nodes=total_nodes,
        )

    @staticmethod
    def _levels(
        unique: dict[str, StageNode], fp_cache: dict[int, str]
    ) -> list[list[str]]:
        """Unique node keys grouped by dependency depth.

        Depth is computed over *fingerprints* so equivalent nodes from
        different points collapse to one scheduling slot.
        """
        depth: dict[str, int] = {}

        def key_depth(key: str) -> int:
            if key not in depth:
                node = unique[key]
                dep_keys = [
                    dep.fingerprint_static(fp_cache)
                    for dep in node.dependencies()
                ]
                depth[key] = (
                    0 if not dep_keys else 1 + max(key_depth(k) for k in dep_keys)
                )
            return depth[key]

        levels: dict[int, list[str]] = {}
        for key in unique:
            levels.setdefault(key_depth(key), []).append(key)
        return [sorted(levels[d]) for d in sorted(levels)]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        points: list[SweepPoint],
        scenes: Mapping[str, Any],
        frames: Mapping[str, Any],
    ) -> SweepResult:
        """Plan and execute in one call."""
        return self.execute(self.plan(points, scenes, frames))

    def execute(self, plan: SweepPlan) -> SweepResult:
        """Run the deduplicated DAG level-by-level through the executor.

        Within a level no node depends on another, so a level's stages
        run as independent indexed tasks under the planner's execution
        policy — crash isolation, retries and failure auditing included.
        A node whose upstream failed permanently is skipped, and every
        sweep point depending on it reports a failure outcome instead of
        poisoning the rest of the sweep.
        """
        ctx = StageContext(
            store=self.store,
            counters=StageCounters(),
            policy=self.stage_policy,
        )
        fp_cache: dict[int, str] = {}
        failed: dict[str, str] = {}
        all_failures: list[Any] = []

        for level in plan.levels:
            pending: list[str] = []
            for key in level:
                blocker = self._failed_upstream(plan.unique[key], failed, fp_cache)
                if blocker is not None:
                    failed[key] = blocker
                    continue
                pending.append(key)
            if not pending:
                continue

            def task(index: int, attempt: int):  # noqa: ARG001
                key = pending[index]
                node = plan.unique[key]
                inputs = {
                    name: self._resolve_input(upstream, fp_cache)
                    for name, upstream in node.inputs.items()
                }
                artifact = node.stage.execute(ctx, inputs)
                return artifact.value

            executor = GroupExecutor(self.policy)
            report = executor.run(task, len(pending))
            for index, value in report.results.items():
                key = pending[index]
                node = plan.unique[key]
                # Re-put covers forked workers, whose stage.execute wrote
                # only to the child process's copy of the store.
                ctx.store.put(
                    key,
                    value,
                    persist=node.stage.cacheable
                    and node.stage.should_cache(value),
                )
            for record in report.failures:
                key = pending[record.index]
                failed[key] = record.describe()
                all_failures.append(record)

        outcomes: dict[SweepPoint, SweepOutcome] = {}
        for point in plan.points:
            key = plan.terminal_keys[point]
            if key in failed:
                outcomes[point] = SweepOutcome(point, error=failed[key])
            else:
                outcomes[point] = SweepOutcome(point, value=ctx.store.get(key))
        return SweepResult(
            outcomes=outcomes,
            counters=ctx.counters,
            plan=plan,
            failures=all_failures,
        )

    # ------------------------------------------------------------------

    def _resolve_input(
        self, upstream: StageNode | Artifact, fp_cache: dict[int, str]
    ) -> Artifact:
        if isinstance(upstream, Artifact):
            return upstream
        key = upstream.fingerprint_static(fp_cache)
        return Artifact(key, self.store.get(key))

    def _failed_upstream(
        self,
        node: StageNode,
        failed: dict[str, str],
        fp_cache: dict[int, str],
    ) -> str | None:
        for dep in node.dependencies():
            key = dep.fingerprint_static(fp_cache)
            if key in failed:
                return f"upstream stage {dep.stage.name} failed: {failed[key]}"
        return None
