"""Campaign engine: samplesheet-driven scene-recipe grids as one DAG.

A *campaign* generalizes the :class:`~.sweep.SweepPlanner` grid from
"library scenes x GPU configs" to the full scene vocabulary of
:class:`~repro.scene.spec.SceneSpec` — library names, procedural recipes
with knobs and seeds, and frames of animated sequences — crossed with
GPU configs, methodology configs, samplers and backends, loaded from a
declarative TOML/JSON *samplesheet* and executed as one deduplicated
stage DAG over a shared artifact store.

Three things distinguish a campaign from a plain sweep:

* **scene recipes** — every point carries a full
  :class:`~repro.scene.spec.SceneSpec`, so two recipe points with equal
  knobs share one cached scene (and their profile/quantize stages dedup
  by content fingerprint) while a changed knob or seed never collides;
* **sequences** — an animated row expands into per-frame points that
  execute in frame-ordered *waves*, and the wavefront tracer's
  :class:`~repro.scene.bvh_packet.PathPredictionCache` is threaded from
  frame ``k`` into frame ``k+1`` (rebound to the new BVH, stale leaves
  pruned), so cross-frame ray coherence shows up as a measured
  ``carried_hits`` rate in the campaign report;
* **QC gates** — each point may declare quality gates (minimum plane
  coverage, maximum relative confidence-interval half-width) that mark
  its outcome ``degraded`` or ``failed``; a failed sequence frame skips
  the remaining frames of its row, a degraded one taints them.

Layering: this module returns raw :class:`CampaignResult` objects; the
JSON-able report artifact lives in :mod:`repro.harness.reporting`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Callable

from ...scene.animation import SceneSequence
from ...scene.spec import SceneSpec
from .base import StageCounters
from .fingerprint import gpu_fingerprint, stable_hash
from .store import ArtifactStore
from .sweep import SweepPlanner, SweepPoint

__all__ = [
    "QCGates",
    "CampaignPoint",
    "Campaign",
    "CampaignOutcome",
    "CampaignResult",
    "CampaignPlanner",
    "parse_samplesheet",
    "load_samplesheet",
    "load_samplesheet_document",
    "campaign_fingerprint",
]

#: Outcome verdicts, from best to worst.  ``skipped`` marks sequence
#: frames never executed because an earlier frame of their row failed.
VERDICTS = ("pass", "degraded", "failed", "skipped")

_ON_VIOLATION = ("degrade", "fail")


@dataclass(frozen=True)
class QCGates:
    """Declarative quality gates evaluated on a point's result.

    ``min_coverage`` bounds the surviving plane coverage of a (possibly
    fault-degraded) prediction from below.  ``max_ci_half_width`` bounds
    the *relative* 95% confidence-interval half-width (half-width divided
    by the predicted value) of every metric carrying a variance; a
    result with **no** confidence intervals — e.g. the default
    single-replicate ``heatmap`` sampler — violates this gate by
    definition, because the campaign demanded a precision statement the
    result cannot make.  ``on_violation`` picks the verdict a violation
    produces: ``"degrade"`` (run downstream frames, taint their verdict)
    or ``"fail"`` (skip the remaining frames of the row).
    """

    min_coverage: float | None = None
    max_ci_half_width: float | None = None
    on_violation: str = "degrade"

    def __post_init__(self) -> None:
        if self.min_coverage is not None:
            if (
                isinstance(self.min_coverage, bool)
                or not isinstance(self.min_coverage, (int, float))
                or not 0.0 < float(self.min_coverage) <= 1.0
            ):
                raise ValueError(
                    f"min_coverage must be in (0, 1], got {self.min_coverage!r}"
                )
        if self.max_ci_half_width is not None:
            if (
                isinstance(self.max_ci_half_width, bool)
                or not isinstance(self.max_ci_half_width, (int, float))
                or float(self.max_ci_half_width) <= 0.0
            ):
                raise ValueError(
                    "max_ci_half_width must be a positive number, "
                    f"got {self.max_ci_half_width!r}"
                )
        if self.on_violation not in _ON_VIOLATION:
            raise ValueError(
                f"on_violation must be one of {', '.join(_ON_VIOLATION)}, "
                f"got {self.on_violation!r}"
            )

    @property
    def active(self) -> bool:
        return self.min_coverage is not None or self.max_ci_half_width is not None

    def check(self, value: Any) -> list[str]:
        """Human-readable violations of these gates by ``value``."""
        violations: list[str] = []
        if self.min_coverage is not None:
            coverage = getattr(value, "coverage", None)
            if coverage is None:
                violations.append(
                    "min_coverage gate set but the result reports no "
                    "plane coverage"
                )
            elif coverage < float(self.min_coverage):
                violations.append(
                    f"coverage {coverage:.1%} below the "
                    f"{float(self.min_coverage):.1%} gate"
                )
        if self.max_ci_half_width is not None:
            intervals_fn = getattr(value, "confidence_intervals", None)
            intervals = intervals_fn() if callable(intervals_fn) else {}
            if not intervals:
                violations.append(
                    "max_ci_half_width gate set but the result carries no "
                    "confidence intervals (use a replicated sampler)"
                )
            metrics = getattr(value, "metrics", None) or {}
            bound = float(self.max_ci_half_width)
            for name in sorted(intervals):
                lo, hi = intervals[name]
                half = (hi - lo) / 2.0
                center = abs(metrics.get(name, 0.0))
                if center <= 1e-12:
                    relative = 0.0 if half <= 1e-12 else float("inf")
                else:
                    relative = half / center
                if relative > bound:
                    violations.append(
                        f"{name} CI half-width is {relative:.1%} of the "
                        f"prediction, above the {bound:.1%} gate"
                    )
        return violations


@dataclass(frozen=True)
class CampaignPoint:
    """One cell of a campaign grid: a scene spec at workload coordinates.

    The sweep-level fields (``gpu``, ``config``, ``mode``, ``fraction``)
    mean exactly what they do on :class:`~.sweep.SweepPoint`; the
    workload fields (``size``/``spp``/``seed``/``backend``) locate the
    frame trace, and ``row`` ties sequence frames expanded from the same
    samplesheet row together for QC-gate propagation and cache
    carry-over.
    """

    spec: SceneSpec
    gpu: Any  # GPUConfig
    config: Any = None  # ZatelConfig; None means defaults
    mode: str = "zatel"
    fraction: float | None = None
    size: int = 64
    spp: int = 1
    seed: int = 0
    backend: str = "packet"
    gates: QCGates = QCGates()
    row: int = 0

    def scene_token(self) -> str:
        """Synthetic scene key for the underlying sweep planner.

        The sweep planner keys scenes and frames by string; campaigns
        key them by *content* — the spec fingerprint plus the workload
        coordinates that shape the frame trace — so equal recipes
        collapse and distinct seeds or frames never collide.
        """
        return (
            f"{self.spec.fingerprint()}:{self.size}x{self.size}"
            f"x{self.spp}:s{self.seed}:{self.backend}"
        )

    def sweep_point(self) -> SweepPoint:
        return SweepPoint(
            scene=self.scene_token(),
            gpu=self.gpu,
            config=self.config,
            mode=self.mode,
            fraction=self.fraction,
        )

    def chain_key(self) -> tuple:
        """Groups the frames of one (row, GPU) sequence chain."""
        return (self.row, gpu_fingerprint(self.gpu))

    def describe(self) -> str:
        suffix = self.mode
        if self.mode == "sampling":
            suffix = f"sampling@{self.fraction:.0%}"
        return f"{self.spec.label()}/{self.gpu.name}/{suffix}"


@dataclass(frozen=True)
class Campaign:
    """A named, validated list of campaign points (samplesheet rows
    expanded across GPU grids and sequence frames)."""

    name: str
    points: tuple[CampaignPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a campaign needs at least one point")

    def fingerprint(self) -> str:
        return campaign_fingerprint(self)


def campaign_fingerprint(campaign: Campaign) -> str:
    """Content address of a whole campaign definition."""
    return stable_hash(
        "campaign",
        1,  # campaign schema version
        campaign.name,
        [
            (
                point.spec.fingerprint(),
                gpu_fingerprint(point.gpu),
                point.config,
                point.mode,
                point.fraction,
                point.size,
                point.spp,
                point.seed,
                point.backend,
                point.gates,
                point.row,
            )
            for point in campaign.points
        ],
    )


# ----------------------------------------------------------------------
# samplesheet parsing
# ----------------------------------------------------------------------

_CAMPAIGN_KEYS = {"name", "size", "spp", "seed", "backend", "gpus", "qc"}
_ROW_KEYS = {
    "scene", "gpu", "gpus", "mode", "fraction",
    "size", "spp", "seed", "backend", "config", "qc",
}
_QC_KEYS = {"min_coverage", "max_ci_half_width", "on_violation"}
_BACKENDS = ("packet", "scalar")


def _parse_qc(value: Any, where: str) -> QCGates:
    if not isinstance(value, dict):
        raise ValueError(f"{where}: qc must be an object, got {type(value).__name__}")
    unknown = sorted(set(value) - _QC_KEYS)
    if unknown:
        raise ValueError(
            f"{where}: unknown qc field(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(_QC_KEYS))}"
        )
    try:
        return QCGates(**value)
    except ValueError as exc:
        raise ValueError(f"{where}: {exc}") from None


def _parse_config(value: Any, where: str):
    from ..pipeline import ZatelConfig

    if not isinstance(value, dict):
        raise ValueError(
            f"{where}: config must be an object of ZatelConfig knobs, "
            f"got {type(value).__name__}"
        )
    known = {f.name for f in dataclass_fields(ZatelConfig)}
    unknown = sorted(set(value) - known)
    if unknown:
        raise ValueError(
            f"{where}: unknown config field(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    try:
        return ZatelConfig(**value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: {exc}") from None


def _parse_scene(value: Any, where: str) -> list[SceneSpec]:
    """A row's scene value as an ordered list of per-point specs."""
    try:
        if isinstance(value, dict) and "sequence" in value:
            return list(SceneSequence.from_value(value).frame_specs())
        return [SceneSpec.from_value(value)]
    except ValueError as exc:
        raise ValueError(f"{where}: {exc}") from None


def _check_int(value: Any, name: str, where: str, minimum: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{where}: {name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{where}: {name} must be >= {minimum}, got {value}")
    return value


def parse_samplesheet(data: Any, name: str = "campaign") -> Campaign:
    """Validate a samplesheet document into a :class:`Campaign`.

    The document is a mapping with an optional ``campaign`` table of
    defaults (``name``, ``size``, ``spp``, ``seed``, ``backend``,
    ``gpus``, ``qc``) and a required non-empty ``points`` list.  Every
    row takes a ``scene`` (library name string, ``{"recipe": ...}``
    object or ``{"sequence": ...}`` object that expands to per-frame
    points), an optional ``gpu``/``gpus`` override, ``mode``/``fraction``
    as on sweeps, workload coordinates, a ``config`` object of
    :class:`~repro.core.pipeline.ZatelConfig` knobs and a ``qc`` gate
    object.  Unknown keys anywhere are rejected with the offending row
    named — a samplesheet that parses is a samplesheet that runs.
    """
    from ...gpu.configfile import resolve_gpu

    if not isinstance(data, dict):
        raise ValueError(
            f"a samplesheet must be a mapping, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"campaign", "points"})
    if unknown:
        raise ValueError(
            f"unknown samplesheet section(s) {', '.join(map(repr, unknown))}; "
            "known: campaign, points"
        )
    defaults = data.get("campaign", {})
    if not isinstance(defaults, dict):
        raise ValueError("the campaign section must be a table of defaults")
    unknown = sorted(set(defaults) - _CAMPAIGN_KEYS)
    if unknown:
        raise ValueError(
            f"campaign: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(_CAMPAIGN_KEYS))}"
        )
    campaign_name = defaults.get("name", name)
    if not isinstance(campaign_name, str) or not campaign_name:
        raise ValueError("campaign: name must be a non-empty string")
    default_size = _check_int(defaults.get("size", 64), "size", "campaign")
    default_spp = _check_int(defaults.get("spp", 1), "spp", "campaign")
    default_seed = _check_int(defaults.get("seed", 0), "seed", "campaign", 0)
    default_backend = defaults.get("backend", "packet")
    default_gpus = defaults.get("gpus", ["mobile"])
    default_qc = _parse_qc(defaults.get("qc", {}), "campaign")

    rows = data.get("points")
    if not isinstance(rows, list) or not rows:
        raise ValueError("a samplesheet needs a non-empty points list")

    points: list[CampaignPoint] = []
    gpu_cache: dict[str, Any] = {}
    for index, row in enumerate(rows):
        where = f"points[{index}]"
        if not isinstance(row, dict):
            raise ValueError(
                f"{where}: each point must be an object, "
                f"got {type(row).__name__}"
            )
        unknown = sorted(set(row) - _ROW_KEYS)
        if unknown:
            raise ValueError(
                f"{where}: unknown field(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(_ROW_KEYS))}"
            )
        if "scene" not in row:
            raise ValueError(f"{where}: every point needs a scene")
        if "gpu" in row and "gpus" in row:
            raise ValueError(f"{where}: give either gpu or gpus, not both")
        specs = _parse_scene(row["scene"], where)
        gpu_names = row.get("gpus", [row["gpu"]] if "gpu" in row else default_gpus)
        if not isinstance(gpu_names, list) or not gpu_names or not all(
            isinstance(g, str) for g in gpu_names
        ):
            raise ValueError(
                f"{where}: gpus must be a non-empty list of preset names"
            )
        mode = row.get("mode", "zatel")
        fraction = row.get("fraction")
        size = _check_int(row.get("size", default_size), "size", where)
        spp = _check_int(row.get("spp", default_spp), "spp", where)
        seed = _check_int(row.get("seed", default_seed), "seed", where, 0)
        backend = row.get("backend", default_backend)
        if backend not in _BACKENDS:
            raise ValueError(
                f"{where}: unknown backend {backend!r}; available: "
                f"{', '.join(_BACKENDS)}"
            )
        config = _parse_config(row["config"], where) if "config" in row else None
        gates = _parse_qc(row["qc"], where) if "qc" in row else default_qc
        for gpu_name in gpu_names:
            if gpu_name not in gpu_cache:
                try:
                    gpu_cache[gpu_name] = resolve_gpu(gpu_name)
                except (ValueError, OSError) as exc:
                    raise ValueError(f"{where}: {exc}") from None
            for spec in specs:
                try:
                    points.append(
                        CampaignPoint(
                            spec=spec,
                            gpu=gpu_cache[gpu_name],
                            config=config,
                            mode=mode,
                            fraction=fraction,
                            size=size,
                            spp=spp,
                            seed=seed,
                            backend=backend,
                            gates=gates,
                            row=index,
                        )
                    )
                except ValueError as exc:
                    raise ValueError(f"{where}: {exc}") from None
    return Campaign(name=campaign_name, points=tuple(points))


def load_samplesheet_document(path: str | Path) -> dict:
    """Read a ``.toml`` or ``.json`` samplesheet file into a raw mapping.

    The unvalidated document form is what ``POST /campaigns`` transports;
    :func:`load_samplesheet` layers the schema validation on top.  TOML
    needs Python 3.11+ (stdlib ``tomllib``); on older interpreters a
    clear error points at the JSON form, which is always available.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:
            raise RuntimeError(
                "TOML samplesheets need Python 3.11+ (stdlib tomllib); "
                "use the equivalent JSON samplesheet instead"
            ) from None
        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path}: invalid TOML: {exc}") from None
    elif suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON: {exc}") from None
    else:
        raise ValueError(
            f"unknown samplesheet format {path.suffix!r}; use .toml or .json"
        )
    if not isinstance(data, dict):
        raise ValueError(
            f"{path}: a samplesheet must be a mapping, "
            f"got {type(data).__name__}"
        )
    return data


def load_samplesheet(path: str | Path) -> Campaign:
    """Load and validate a ``.toml`` or ``.json`` samplesheet file."""
    path = Path(path)
    return parse_samplesheet(load_samplesheet_document(path), name=path.stem)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


@dataclass
class CampaignOutcome:
    """One point's result, QC verdict and (for frames) sequence stats."""

    point: CampaignPoint
    value: Any = None
    error: str | None = None
    verdict: str = "pass"
    violations: list[str] = field(default_factory=list)
    #: Cross-frame prediction-cache stats for sequence frames on the
    #: packet backend: lookups/hits/carried_hits/hit_rate/entries.
    sequence: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """Everything one campaign execution produced and observed."""

    campaign: Campaign
    outcomes: list[CampaignOutcome]
    counters: StageCounters
    #: Naive stage invocations across all waves vs distinct fingerprints
    #: planned per wave; cross-wave reuse additionally shows up as cache
    #: hits in ``counters``.
    total_nodes: int
    unique_nodes: int
    waves: int
    failures: list[Any] = field(default_factory=list)

    def verdict_counts(self) -> dict[str, int]:
        counts = {verdict: 0 for verdict in VERDICTS}
        for outcome in self.outcomes:
            counts[outcome.verdict] += 1
        return counts

    @property
    def succeeded(self) -> bool:
        """No failed or skipped points (degraded still counts as success)."""
        return all(
            outcome.verdict in ("pass", "degraded") for outcome in self.outcomes
        )

    def executions_of(self, stage_name: str) -> int:
        return self.counters.executions.get(stage_name, 0)

    def sequence_hit_rate(self) -> float:
        """Carried-entry hit rate pooled over all sequence frames."""
        lookups = sum(
            o.sequence["lookups"] for o in self.outcomes if o.sequence
        )
        carried = sum(
            o.sequence["carried_hits"] for o in self.outcomes if o.sequence
        )
        return carried / lookups if lookups else 0.0


class CampaignPlanner:
    """Plans and executes campaigns as frame-ordered deduplicated waves.

    Points are grouped by sequence frame index (non-sequence points are
    frame 0) and each wave runs as one deduplicated
    :class:`~.sweep.SweepPlanner` DAG over the shared store — so two
    GPU configs of the same scene profile and quantize once, and work
    repeated across waves resolves as cache hits.  Between waves the
    planner evaluates QC gates (failing or degrading downstream frames
    of the same row) and threads the wavefront path-prediction cache
    from each packet-backend sequence frame into the next.

    Args:
        store: shared artifact store (defaults to in-memory).
        policy / stage_policy: as on :class:`~.sweep.SweepPlanner`.
        scene_source: ``SceneSpec -> Scene`` resolver; defaults to the
            registry's bounded cache.
        frame_source: ``(scene, point) -> FrameTrace`` tracer; defaults
            to tracing in-process (the harness substitutes its
            disk-cached runner).
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        policy: Any | None = None,
        stage_policy: Any | None = None,
        scene_source: Callable[[SceneSpec], Any] | None = None,
        frame_source: Callable[[Any, CampaignPoint], Any] | None = None,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.policy = policy
        self.stage_policy = stage_policy
        if scene_source is None:
            from ...scene.registry import resolve_scene

            scene_source = resolve_scene
        self.scene_source = scene_source
        self.frame_source = (
            frame_source if frame_source is not None else self._trace_frame
        )

    @staticmethod
    def _trace_frame(scene: Any, point: CampaignPoint) -> Any:
        from ...tracer.tracer import FunctionalTracer, RenderSettings

        settings = RenderSettings(
            width=point.size,
            height=point.size,
            samples_per_pixel=point.spp,
            seed=point.seed,
            tracing_backend=point.backend,
        )
        return FunctionalTracer(scene, settings).trace_frame()

    # ------------------------------------------------------------------

    def run(self, campaign: Campaign) -> CampaignResult:
        """Execute every point; never raises for per-point failures."""
        waves: dict[int, list[int]] = {}
        for index, point in enumerate(campaign.points):
            waves.setdefault(point.spec.frame, []).append(index)

        outcomes: list[CampaignOutcome | None] = [None] * len(campaign.points)
        counters = StageCounters()
        failures: list[Any] = []
        total_nodes = 0
        unique_nodes = 0
        #: Worst verdict seen so far along each (row, gpu) frame chain.
        chain_verdict: dict[tuple, str] = {}
        #: Prediction-cache table carried to each chain's next frame.
        chain_table: dict[tuple, dict] = {}

        for frame_index in sorted(waves):
            runnable: list[int] = []
            for index in waves[frame_index]:
                point = campaign.points[index]
                upstream = (
                    chain_verdict.get(point.chain_key())
                    if point.spec.kind == "frame" and point.spec.frame > 0
                    else None
                )
                if upstream in ("failed", "skipped"):
                    outcomes[index] = CampaignOutcome(
                        point,
                        verdict="skipped",
                        violations=[
                            f"frame {point.spec.frame - 1} of this sequence "
                            "failed; downstream frames skipped"
                        ],
                    )
                    chain_verdict[point.chain_key()] = "skipped"
                    continue
                runnable.append(index)
            if not runnable:
                continue

            scenes: dict[str, Any] = {}
            frames: dict[str, Any] = {}
            sweep_points: list[SweepPoint] = []
            for index in runnable:
                point = campaign.points[index]
                token = point.scene_token()
                if token not in scenes:
                    scene = self.scene_source(point.spec)
                    scenes[token] = scene
                    frames[token] = self.frame_source(scene, point)
                sweep_points.append(point.sweep_point())

            planner = SweepPlanner(
                store=self.store,
                policy=self.policy,
                stage_policy=self.stage_policy,
            )
            sweep_result = planner.run(sweep_points, scenes, frames)
            for name, count in sweep_result.counters.executions.items():
                counters.executions[name] = (
                    counters.executions.get(name, 0) + count
                )
            for name, count in sweep_result.counters.cache_hits.items():
                counters.cache_hits[name] = (
                    counters.cache_hits.get(name, 0) + count
                )
            failures.extend(sweep_result.failures)
            total_nodes += sweep_result.plan.total_nodes
            unique_nodes += sweep_result.plan.unique_nodes

            for index, sweep_point in zip(runnable, sweep_points):
                point = campaign.points[index]
                outcome = self._judge(
                    point,
                    sweep_result.outcomes[sweep_point],
                    chain_verdict.get(point.chain_key()),
                )
                if (
                    point.spec.kind == "frame"
                    and point.backend == "packet"
                    and outcome.verdict in ("pass", "degraded")
                ):
                    carry = self._sequence_pass(
                        scenes[point.scene_token()],
                        point,
                        chain_table.get(point.chain_key()),
                    )
                    chain_table[point.chain_key()] = carry["table"]
                    outcome.sequence = {
                        key: value
                        for key, value in carry.items()
                        if key != "table"
                    }
                if point.spec.kind == "frame":
                    chain_verdict[point.chain_key()] = outcome.verdict
                outcomes[index] = outcome

        return CampaignResult(
            campaign=campaign,
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            counters=counters,
            total_nodes=total_nodes,
            unique_nodes=unique_nodes,
            waves=len(waves),
            failures=failures,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _judge(point, sweep_outcome, upstream_verdict) -> CampaignOutcome:
        """QC verdict for one executed point (plus upstream taint)."""
        if not sweep_outcome.ok:
            return CampaignOutcome(
                point, error=sweep_outcome.error, verdict="failed"
            )
        violations = point.gates.check(sweep_outcome.value)
        if violations:
            verdict = "failed" if point.gates.on_violation == "fail" else "degraded"
        else:
            verdict = "pass"
        if upstream_verdict == "degraded" and verdict == "pass":
            verdict = "degraded"
            violations = [
                f"frame {point.spec.frame - 1} of this sequence was "
                "degraded; verdict inherited"
            ]
        return CampaignOutcome(
            point,
            value=sweep_outcome.value,
            verdict=verdict,
            violations=violations,
        )

    def _sequence_pass(
        self, scene: Any, point: CampaignPoint, prev_table: dict | None
    ) -> dict:
        """Thread the path-prediction cache through one sequence frame.

        Runs a record-free occlusion pass with the previous frame's
        cache table rebound to this frame's BVH (the frame trace itself
        always runs cache-off and stays byte-identical).  Memoized in
        the artifact store: the frame spec embeds the whole sequence
        definition and index, so the carried table — and therefore the
        stats — are a pure function of the key.
        """
        key = stable_hash(
            "campaign_seq_carry",
            1,
            point.spec.fingerprint(),
            point.size,
            point.spp,
            point.seed,
            point.backend,
        )

        def compute() -> dict:
            from ...scene.bvh_packet import PathPredictionCache
            from ...tracer.tracer import RenderSettings
            from ...tracer.wavefront import WavefrontTracer

            settings = RenderSettings(
                width=point.size,
                height=point.size,
                samples_per_pixel=point.spp,
                seed=point.seed,
                tracing_backend="packet",
            )
            cache = PathPredictionCache(scene.packed_bvh)
            if prev_table:
                cache.table = dict(prev_table)
            tracer = WavefrontTracer(scene, settings)
            tracer.occlusion_pass(cache)
            return {
                "frame": point.spec.frame,
                "lookups": cache.lookups,
                "hits": cache.hits,
                "mispredictions": cache.mispredictions,
                "carried_hits": cache.carried_hits,
                "carried_entries": len(cache._carried),
                "hit_rate": cache.hit_rate,
                "entries": len(cache.table),
                "table": dict(cache.table),
            }

        return self.store.get_or_compute(key, compute, persist=False)
