"""Prediction requests as data: validation, fingerprints, stage plans.

The service layer (and any other batch front-end) needs a *declarative*
form of "run the Zatel pipeline": a picklable, validated description of
one prediction that can be fingerprinted for result caching and adapted
into the stage graph the pipeline already executes.  :class:`PredictSpec`
is that form:

* **validation** happens at construction (``__post_init__``), so a spec
  that exists is a spec the pipeline can run — HTTP handlers map the
  :class:`ValueError` to a 400 without knowing anything about scenes or
  GPUs;
* **identity** is :func:`spec_fingerprint` — a stable hash over every
  field that changes *what* is computed (plus the caller's cache
  version), shared by the service result cache and the single-flight
  queue so identical requests coalesce;
* **planning** is :func:`build_spec_graph` — the adapter from a spec to
  the :class:`~.base.StageGraph` + terminal node that
  :meth:`~repro.core.pipeline.Zatel.build_graph` produces, so a service
  worker drives exactly the code path the CLI does.

Execution-policy knobs (workers, timeouts, retries) are deliberately
not part of a spec: they change how a prediction runs, never what it
returns, exactly like :class:`~repro.core.executor.ExecutionPolicy` vs
:class:`~repro.core.pipeline.ZatelConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...scene.spec import SceneSpec
from .fingerprint import stable_hash

__all__ = [
    "MAX_PLANE_SIZE",
    "MAX_REPLICATES",
    "MAX_SPP",
    "PredictSpec",
    "spec_fingerprint",
    "spec_zatel_config",
    "build_spec_graph",
]

#: Upper bound on the requested image-plane side length.  A service must
#: bound the work one request can demand; 512 is the paper's full
#: evaluation plane and already minutes of CPU on the Python simulator.
MAX_PLANE_SIZE = 512

#: Upper bound on samples per pixel for a single request.
MAX_SPP = 16

_BACKENDS = ("packet", "scalar")
_DIVISIONS = ("fine", "coarse")
_DISTRIBUTIONS = ("uniform", "lintmp", "exptmp")
_GPU_PRESETS = ("mobile", "rtx2060")

#: Bound on the replicate count a single request may demand: each
#: replicate is a separate simulation pass over its subset, so this is a
#: direct work multiplier like ``spp``.
MAX_REPLICATES = 16


@dataclass(frozen=True)
class PredictSpec:
    """One validated, picklable prediction request.

    Field semantics mirror the ``predict`` CLI command; see
    :class:`~repro.core.pipeline.ZatelConfig` for the methodology knobs.
    """

    #: Scene identity: a library name string (legacy form) or a full
    #: :class:`~repro.scene.spec.SceneSpec` (recipes, sequence frames).
    scene: str | SceneSpec
    size: int = 64
    spp: int = 1
    seed: int = 0
    backend: str = "packet"
    gpu: str = "mobile"
    division: str = "fine"
    distribution: str = "uniform"
    fraction: float | None = None
    adaptive: bool = False
    sampler: str = "heatmap"
    replicates: int = 5

    def __post_init__(self) -> None:
        if not isinstance(self.scene, SceneSpec):
            # Legacy string form: must name a library scene.  SceneSpec
            # values validated themselves (recipe, knob ranges, frame
            # index) at their own construction.
            from ...scene.library import EXTRA_SCENES, SCENE_NAMES

            known = SCENE_NAMES + EXTRA_SCENES
            if self.scene not in known:
                raise ValueError(
                    f"unknown scene {self.scene!r}; available: "
                    f"{', '.join(known)}"
                )
        if not isinstance(self.size, int) or isinstance(self.size, bool):
            raise ValueError(f"size must be an integer, got {self.size!r}")
        if not 1 <= self.size <= MAX_PLANE_SIZE:
            raise ValueError(
                f"size must be in [1, {MAX_PLANE_SIZE}], got {self.size}"
            )
        if not isinstance(self.spp, int) or isinstance(self.spp, bool):
            raise ValueError(f"spp must be an integer, got {self.spp!r}")
        if not 1 <= self.spp <= MAX_SPP:
            raise ValueError(f"spp must be in [1, {MAX_SPP}], got {self.spp}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: "
                f"{', '.join(_BACKENDS)}"
            )
        if self.gpu not in _GPU_PRESETS:
            raise ValueError(
                f"unknown GPU preset {self.gpu!r}; available: "
                f"{', '.join(_GPU_PRESETS)}"
            )
        if self.division not in _DIVISIONS:
            raise ValueError(
                f"unknown division {self.division!r}; available: "
                f"{', '.join(_DIVISIONS)}"
            )
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; available: "
                f"{', '.join(_DISTRIBUTIONS)}"
            )
        if self.fraction is not None:
            if not isinstance(self.fraction, (int, float)) or isinstance(
                self.fraction, bool
            ):
                raise ValueError(
                    f"fraction must be a number in (0, 1], got {self.fraction!r}"
                )
            if not 0.0 < float(self.fraction) <= 1.0:
                raise ValueError(
                    f"fraction must be in (0, 1], got {self.fraction}"
                )
        if not isinstance(self.adaptive, bool):
            raise ValueError(f"adaptive must be a boolean, got {self.adaptive!r}")
        from ..samplers import SAMPLER_NAMES

        if self.sampler not in SAMPLER_NAMES:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; available: "
                f"{', '.join(SAMPLER_NAMES)}"
            )
        if not isinstance(self.replicates, int) or isinstance(
            self.replicates, bool
        ):
            raise ValueError(
                f"replicates must be an integer, got {self.replicates!r}"
            )
        if not 2 <= self.replicates <= MAX_REPLICATES:
            raise ValueError(
                f"replicates must be in [2, {MAX_REPLICATES}], "
                f"got {self.replicates}"
            )


def spec_fingerprint(spec: PredictSpec, version: Any = 0) -> str:
    """Content address of a spec's *result* under cache ``version``.

    ``version`` should be the caller's model/cache version (the harness
    passes ``CACHE_VERSION``) so served results invalidate together with
    every other cached artifact after a model-affecting change.
    """
    return stable_hash(
        "predict_spec",
        version,
        spec.scene,
        spec.size,
        spec.spp,
        spec.seed,
        spec.backend,
        spec.gpu,
        spec.division,
        spec.distribution,
        spec.fraction,
        spec.adaptive,
        spec.sampler,
        spec.replicates,
    )


def spec_zatel_config(spec: PredictSpec):
    """The :class:`~repro.core.pipeline.ZatelConfig` a spec describes."""
    from ..pipeline import ZatelConfig

    return ZatelConfig(
        division=spec.division,
        distribution=spec.distribution,
        fraction_override=spec.fraction,
        seed=spec.seed,
        sampler=spec.sampler,
        replicates=spec.replicates,
    )


def build_spec_graph(
    spec: PredictSpec,
    scene,
    frame,
    quorum: int | None = None,
    gpu_overrides: dict[str, Any] | None = None,
):
    """Adapt a spec into the pipeline's stage plan.

    Returns ``(predictor, graph, terminal)`` where resolving ``terminal``
    through a :class:`~.base.StageContext` yields the
    :class:`~repro.core.pipeline.ZatelResult` — the same graph
    :meth:`Zatel.predict` builds internally, exposed so a service worker
    can thread its own store, policy and counters through execution.

    ``gpu_overrides`` replaces fields on the spec's GPU preset before
    planning.  Like ``quorum`` it is an *operator* knob, not part of the
    spec's fingerprint, so it must only carry observability fields
    (``telemetry_interval``, ``timeline_trace``) that are guaranteed not
    to change any metric — the service uses it to instrument served
    predictions for the dashboard without perturbing cached results.
    """
    from dataclasses import replace

    from ...gpu.config import preset
    from ..adaptive import AdaptiveZatel
    from ..pipeline import Zatel

    gpu = preset(spec.gpu)
    if gpu_overrides:
        gpu = replace(gpu, **gpu_overrides)
    predictor_class = AdaptiveZatel if spec.adaptive else Zatel
    predictor = predictor_class(gpu, spec_zatel_config(spec))
    graph, terminal = predictor.build_graph(scene, frame, quorum=quorum)
    return predictor, graph, terminal
