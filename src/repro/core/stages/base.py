"""The stage protocol and the graph that executes it.

A :class:`Stage` is one typed step of the Zatel methodology with

* declared **inputs** (named upstream artifacts) and one output artifact;
* a deterministic **fingerprint** — ``stable_hash(stage name, code
  version, parameters, upstream artifact keys)`` — which is the output's
  content address in the :class:`~.store.ArtifactStore`;
* a ``run`` implementation that is a pure function of its inputs (plus
  the execution-only knobs on the context, which by design change *how*
  work runs, never *what* it computes).

:class:`StageGraph` wires stages to each other and to source artifacts
(frames, scenes, GPU configs), and executes nodes with fingerprint
memoization: a node whose key is already in the store is a cache hit and
its stage never runs.  :class:`StageCounters` records exactly that
distinction, which the sweep-dedup tests assert on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, ClassVar

from .fingerprint import stable_hash
from .store import ArtifactStore

__all__ = [
    "Artifact",
    "Stage",
    "StageContext",
    "StageCounters",
    "StageGraph",
    "StageNode",
    "source",
]


@dataclass(frozen=True)
class Artifact:
    """A value plus the content address of the computation that made it."""

    key: str
    value: Any


def source(name: str, value: Any, key: str | None = None) -> Artifact:
    """Wrap an external input (frame, scene, GPU config) as an artifact.

    ``key`` should be a content fingerprint when one is available (see
    :mod:`.fingerprint`); otherwise the value itself must be hashable by
    :func:`~.fingerprint.stable_hash`.
    """
    return Artifact(key if key is not None else stable_hash("source", name, value), value)


@dataclass
class StageCounters:
    """Per-stage execution accounting for one context.

    ``executions[name]`` counts live ``run()`` calls; ``cache_hits[name]``
    counts fingerprint matches that skipped the stage entirely.  A
    deduplicated sweep shows up here as executions staying flat while
    hits grow.
    """

    executions: dict[str, int] = field(default_factory=dict)
    cache_hits: dict[str, int] = field(default_factory=dict)

    def record_execution(self, name: str) -> None:
        self.executions[name] = self.executions.get(name, 0) + 1

    def record_hit(self, name: str) -> None:
        self.cache_hits[name] = self.cache_hits.get(name, 0) + 1

    def total_executions(self) -> int:
        return sum(self.executions.values())

    def total_hits(self) -> int:
        return sum(self.cache_hits.values())


@dataclass
class StageContext:
    """Everything a stage execution may touch besides its inputs.

    ``store`` caches artifacts by fingerprint; ``counters`` audits what
    ran.  ``policy`` and ``fault_plan`` configure the fault-tolerant
    group executor inside :class:`~.concrete.SimulateGroupStage` — they
    are execution knobs and deliberately excluded from fingerprints.

    ``execution_notes`` is the reverse channel for execution (non-
    content) observations a stage makes while running — e.g. the group
    executor degrading a ``workers > 1`` request to serial on a platform
    without ``fork``.  Notes describe *this* execution only, so they are
    never cached with artifacts; drivers copy them onto their result
    (``ZatelResult.serial_fallback``) after resolving the graph.

    ``fleet`` is an optional :class:`~repro.fleet.coordinator.
    FleetCoordinator`: when present, :class:`~.concrete.
    SimulateGroupStage` scatters group work to remote workers instead of
    the in-process executor.  Like ``policy``, it changes *how* groups
    run, never what they compute, so it is excluded from fingerprints.
    """

    store: ArtifactStore = field(default_factory=ArtifactStore)
    counters: StageCounters = field(default_factory=StageCounters)
    policy: Any | None = None
    fault_plan: Any | None = None
    execution_notes: dict[str, Any] = field(default_factory=dict)
    fleet: Any | None = None


class Stage(ABC):
    """One pipeline step with a declared identity and fingerprint.

    Subclasses set:

    * ``name`` — stable stage identifier (also the counter key);
    * ``code_version`` — bump when the implementation changes in a way
      that invalidates cached outputs;
    * ``cacheable`` — whether outputs are worth persisting to disk
      (expensive artifacts) or belong in the in-memory memo only.
    """

    name: ClassVar[str] = "stage"
    code_version: ClassVar[str] = "1"
    cacheable: ClassVar[bool] = False

    def params(self) -> Any:
        """The stage's configuration contribution to its fingerprint."""
        return ()

    def fingerprint(self, input_keys: dict[str, str]) -> str:
        """Content address of this stage's output for the given inputs."""
        return stable_hash(
            "stage",
            self.name,
            self.code_version,
            self.params(),
            tuple(sorted(input_keys.items())),
        )

    def should_cache(self, result: Any) -> bool:  # noqa: ARG002
        """Whether a freshly computed ``result`` may be *persisted*.

        Overridden by stages whose output can be tainted by execution
        faults: a degraded simulation still flows to its downstream
        stages through the in-memory memo, but must never shadow a clean
        artifact on disk.
        """
        return True

    @abstractmethod
    def run(self, ctx: StageContext, **inputs: Any) -> Any:
        """Compute the output value from resolved input values."""

    def execute(self, ctx: StageContext, inputs: dict[str, Artifact]) -> Artifact:
        """Run with fingerprint memoization through ``ctx.store``."""
        key = self.fingerprint({name: a.key for name, a in inputs.items()})
        cached = ctx.store.get(key, default=_MISSING)
        if cached is not _MISSING:
            ctx.counters.record_hit(self.name)
            return Artifact(key, cached)
        ctx.counters.record_execution(self.name)
        value = self.run(ctx, **{name: a.value for name, a in inputs.items()})
        ctx.store.put(
            key, value, persist=self.cacheable and self.should_cache(value)
        )
        return Artifact(key, value)


_MISSING = object()


class StageNode:
    """One stage invocation in a graph, wired to upstream nodes/sources."""

    def __init__(self, stage: Stage, inputs: dict[str, "StageNode | Artifact"]):
        self.stage = stage
        self.inputs = inputs

    def input_key(self, ctx_cache: dict[int, str], name: str) -> str:
        upstream = self.inputs[name]
        if isinstance(upstream, Artifact):
            return upstream.key
        return upstream.fingerprint_static(ctx_cache)

    def fingerprint_static(self, cache: dict[int, str] | None = None) -> str:
        """This node's output key, computed without executing anything.

        Possible because fingerprints depend only on stage identities and
        source keys — which is exactly what lets a planner dedup work
        *before* running it.
        """
        if cache is None:
            cache = {}
        node_id = id(self)
        if node_id not in cache:
            cache[node_id] = self.stage.fingerprint(
                {name: self.input_key(cache, name) for name in self.inputs}
            )
        return cache[node_id]

    def dependencies(self) -> list["StageNode"]:
        return [n for n in self.inputs.values() if isinstance(n, StageNode)]


class StageGraph:
    """A DAG of stage invocations over source artifacts."""

    def __init__(self) -> None:
        self.nodes: list[StageNode] = []

    def add(self, stage: Stage, **inputs: "StageNode | Artifact") -> StageNode:
        node = StageNode(stage, inputs)
        self.nodes.append(node)
        return node

    def resolve(
        self,
        node: StageNode,
        ctx: StageContext,
        resolved: dict[int, Artifact] | None = None,
    ) -> Artifact:
        """Execute ``node`` (and transitively its dependencies).

        ``resolved`` memoizes per-call so shared upstream nodes run once
        even before the store's fingerprint memoization kicks in.
        Dependencies are resolved iteratively (no recursion) so deep
        graphs cannot overflow the stack.
        """
        if resolved is None:
            resolved = {}
        stack: list[tuple[StageNode, bool]] = [(node, False)]
        while stack:
            current, ready = stack.pop()
            if id(current) in resolved:
                continue
            if not ready:
                stack.append((current, True))
                for dep in current.dependencies():
                    if id(dep) not in resolved:
                        stack.append((dep, False))
                continue
            inputs = {
                name: (
                    upstream
                    if isinstance(upstream, Artifact)
                    else resolved[id(upstream)]
                )
                for name, upstream in current.inputs.items()
            }
            resolved[id(current)] = current.stage.execute(ctx, inputs)
        return resolved[id(node)]

    def topological_levels(self) -> list[list[StageNode]]:
        """Nodes grouped by dependency depth (level 0 has no stage deps).

        Within a level no node depends on another, so a level is safe to
        run as independent indexed tasks through the group executor.
        """
        depth: dict[int, int] = {}

        def node_depth(node: StageNode) -> int:
            node_id = id(node)
            if node_id not in depth:
                deps = node.dependencies()
                depth[node_id] = (
                    0 if not deps else 1 + max(node_depth(d) for d in deps)
                )
            return depth[node_id]

        levels: dict[int, list[StageNode]] = {}
        for node in self.nodes:
            levels.setdefault(node_depth(node), []).append(node)
        return [levels[d] for d in sorted(levels)]
