"""Content-addressed artifact store.

Artifacts (heatmaps, quantizations, frame traces, simulation results)
are addressed by the fingerprint of the computation that produced them
(see :mod:`.fingerprint`), and live in a two-level object directory::

    <root>/objects/<key[:2]>/<key>.pkl

The store keeps the harness's hardened cache behaviour:

* **atomic writes** — pickle to a PID-suffixed temp file, then
  ``os.replace``, so an interrupted writer can never leave a truncated
  entry behind;
* **corrupt recovery** — an unreadable entry (truncated pickle, stale
  class layout, ...) is deleted and logged as a
  :class:`~repro.errors.CacheCorruptionError` so the caller recomputes
  instead of crashing.

A store created without a root is memory-only: fingerprint-addressed
memoization with no persistence, which is what a one-shot
``Zatel.predict`` call uses.
"""

from __future__ import annotations

import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ...errors import CacheCorruptionError

__all__ = ["ArtifactStore", "StoreStats"]

logger = logging.getLogger("repro.stages")

#: Unpickling failure modes treated as "corrupt file, recompute".
_CORRUPT_PICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
)

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


@dataclass
class StoreStats:
    """Observability counters for one store instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ArtifactStore:
    """Fingerprint-keyed artifact cache with optional disk persistence."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memo: dict[str, Any] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location of ``key`` (meaningless for memory-only stores)."""
        if self.root is None:
            raise ValueError("memory-only store has no on-disk paths")
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """The artifact stored under ``key``, or ``default``."""
        value = self._lookup(key)
        return default if value is _MISSING else value

    def contains(self, key: str) -> bool:
        return self._lookup(key) is not _MISSING

    def put(self, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` under ``key``.

        ``persist=False`` keeps it in the in-process memo only — used for
        cheap artifacts (partitions, fractions) that are faster to
        recompute than to unpickle.
        """
        self._memo[key] = value
        self.stats.writes += 1
        if self.root is None or not persist:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], persist: bool = True
    ) -> Any:
        """Cached value under ``key``, computing (and storing) on miss."""
        value = self._lookup(key)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value, persist=persist)
        return value

    def forget(self, key: str) -> None:
        """Drop ``key`` from memory and disk (no-op when absent)."""
        self._memo.pop(key, None)
        if self.root is not None:
            self.path_for(key).unlink(missing_ok=True)

    def clear_memory(self) -> None:
        """Drop the in-process memo (disk entries survive)."""
        self._memo.clear()

    # ------------------------------------------------------------------

    def _lookup(self, key: str) -> Any:
        if key in self._memo:
            self.stats.memory_hits += 1
            return self._memo[key]
        if self.root is None:
            self.stats.misses += 1
            return _MISSING
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return _MISSING
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except _CORRUPT_PICKLE_ERRORS as error:
            self.stats.corrupt += 1
            self.stats.misses += 1
            logger.warning(
                "%s",
                CacheCorruptionError(
                    f"corrupt cache file {path} ({type(error).__name__}: "
                    f"{error}); deleted, recomputing"
                ),
            )
            path.unlink(missing_ok=True)
            return _MISSING
        self.stats.disk_hits += 1
        self._memo[key] = value
        return value
