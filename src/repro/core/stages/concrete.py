"""Concrete stages: the seven steps of Fig. 3 as composable graph nodes.

Each stage wraps one existing methodology function without changing its
behaviour — for a fixed seed, a prediction assembled from these stages
is bit-identical to the pre-stage-graph monolith (pinned by the golden
tests).  What the decomposition adds is *identity*: every intermediate
artifact gets a content address, so sweeps reuse whatever upstream work
their points share.

==================  ====================================================
stage               computes
==================  ====================================================
``ProfileStage``    execution-time heatmap from the frame trace (step 1)
``QuantizeStage``   K-Means color quantization of the heatmap (step 2)
``DownscaleStage``  GPU config divided by K (step 3)
``PartitionStage``  K image-plane groups (step 4)
``SelectStage``     per-group traced fraction, equation (1) (step 5)
``SimulateGroup-    per-group downscaled simulation + extrapolation
Stage``             through the fault-tolerant executor (steps 5-6)
``CombineStage``    quorum check + cross-group combination into a
                    :class:`~repro.core.pipeline.ZatelResult` (step 7)
``SamplingSimulate- the sampling-only baseline's single full-GPU
Stage``             sampled simulation (Section IV-D)
==================  ====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ...errors import DegradedResultError
from ...gpu.frontend import compile_kernel
from ...gpu.simulator import make_simulator
from ..combine import (
    combine_degraded_metrics,
    combine_degraded_variances,
    combine_group_metrics,
    combine_group_variances,
)
from ..downscale import downscale_gpu
from ..executor import GroupExecutor, default_quorum
from ..extrapolate import linear_extrapolate
from ..heatmap import Heatmap
from ..partition import partition_plane
from ..quantize import quantize_heatmap
from ..selection import compute_fraction, select_pixels
from .base import Stage, StageContext

__all__ = [
    "ProfileStage",
    "QuantizeStage",
    "DownscaleStage",
    "PartitionStage",
    "SelectStage",
    "SimulateGroupStage",
    "CombineStage",
    "SamplingSimulateStage",
]


class ProfileStage(Stage):
    """Step 1: frame trace -> execution-time heatmap."""

    name = "profile"
    # v2: frame traces may now come from the packet (wavefront) tracing
    # backend.  Traces are byte-identical across backends, but the bump
    # keeps artifacts produced before the equivalence suite existed from
    # being served to it.
    code_version = "2"
    cacheable = True

    def __init__(self, percentile: float = 99.5, warp_width: int = 32) -> None:
        self.percentile = percentile
        self.warp_width = warp_width

    def params(self) -> Any:
        return (self.percentile, self.warp_width)

    def run(self, ctx: StageContext, frame) -> Heatmap:  # noqa: ARG002
        return Heatmap.from_frame(
            frame, percentile=self.percentile, warp_width=self.warp_width
        )


class QuantizeStage(Stage):
    """Step 2: heatmap -> K-Means quantized heatmap."""

    name = "quantize"
    code_version = "1"
    cacheable = True

    def __init__(self, colors: int = 8, seed: int = 0) -> None:
        self.colors = colors
        self.seed = seed

    def params(self) -> Any:
        return (self.colors, self.seed)

    def run(self, ctx: StageContext, heatmap):  # noqa: ARG002
        return quantize_heatmap(heatmap, self.colors, seed=self.seed)


class DownscaleStage(Stage):
    """Step 3: target GPU -> (downscaled GPU, factor K)."""

    name = "downscale"
    code_version = "1"

    def __init__(self, factor: int | None = None) -> None:
        self.factor = factor

    def params(self) -> Any:
        return (self.factor,)

    def run(self, ctx: StageContext, gpu):  # noqa: ARG002
        return downscale_gpu(gpu, self.factor)


class PartitionStage(Stage):
    """Step 4: image plane -> K pixel groups (fine or coarse)."""

    name = "partition"
    code_version = "1"

    def __init__(
        self, division: str = "fine", block_width: int = 32, block_height: int = 2
    ) -> None:
        self.division = division
        self.block_width = block_width
        self.block_height = block_height

    def params(self) -> Any:
        return (self.division, self.block_width, self.block_height)

    def run(self, ctx: StageContext, frame, scaled):  # noqa: ARG002
        _, k = scaled
        return partition_plane(
            frame.width,
            frame.height,
            k,
            method=self.division,
            chunk_width=self.block_width,
            chunk_height=self.block_height,
        )


class SelectStage(Stage):
    """Step 5 (planning half): per-group traced fraction via equation (1).

    The fractions it emits are sampler-independent (equation (1) only
    needs the quantized heatmap), but the plan's *identity* is not: the
    simulate stage consumes these fractions through a specific sampler,
    so the sampler's name and parameters are part of the fingerprint —
    two sweeps over different samplers never alias select artifacts.
    """

    name = "select"
    # v2: fingerprint carries the sampler identity (pluggable sampling
    # engine refactor); emitted fractions are unchanged.
    code_version = "2"

    def __init__(
        self,
        min_fraction: float,
        max_fraction: float,
        fraction_override: float | None = None,
        sampler_identity: Any = None,
    ) -> None:
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction
        self.fraction_override = fraction_override
        self.sampler_identity = sampler_identity

    def params(self) -> Any:
        return (
            self.min_fraction,
            self.max_fraction,
            self.fraction_override,
            self.sampler_identity,
        )

    def run(self, ctx: StageContext, quantized, groups) -> list[float]:  # noqa: ARG002
        if self.fraction_override is not None:
            return [self.fraction_override for _ in groups]
        return [
            compute_fraction(
                quantized, pixels, self.min_fraction, self.max_fraction
            )
            for pixels in groups
        ]


class SimulateGroupStage(Stage):
    """Steps 5-6: simulate every group through the fault-tolerant engine.

    The per-group prediction logic stays on the predictor object (so
    :class:`~repro.core.adaptive.AdaptiveZatel` keeps overriding
    ``_predict_group``); this stage owns scheduling, retries and failure
    auditing via :class:`~repro.core.executor.GroupExecutor`.  Its
    fingerprint includes the predictor's methodology parameters — but
    not the execution policy, which changes how groups run, never what
    they compute.
    """

    name = "simulate_groups"
    # v2: group stats now carry tracing-backend provenance.
    # v3: stats carry a telemetry field (interval snapshots + timelines).
    # v4: predictions carry replicate counts + per-metric variances
    #     (pluggable sampling engine refactor).
    # v5: simulators come from make_simulator (backend-selectable engine;
    #     stats carry sim_backend provenance).
    code_version = "5"
    cacheable = True

    def __init__(self, predictor) -> None:
        self.predictor = predictor

    def params(self) -> Any:
        return self.predictor._simulate_params()

    def should_cache(self, result: Any) -> bool:
        # A run with permanent group failures is execution noise, not
        # content — never let it shadow a clean artifact.
        _, failures = result
        return not failures

    def run(self, ctx: StageContext, frame, quantized, groups, scaled, fractions, scene):
        scaled_gpu, _ = scaled
        if ctx.fleet is not None:
            return self._run_fleet(
                ctx, frame, quantized, groups, scaled_gpu, fractions, scene
            )
        simulator = make_simulator(scaled_gpu, scene.addresses)
        predictor = self.predictor

        def task(index: int, attempt: int):  # noqa: ARG001
            # Attempts are idempotent: group simulation is a pure function
            # of (group, frame, config), so retries reproduce bit-identical
            # results.
            return predictor._predict_group(
                index,
                groups[index],
                frame,
                quantized,
                simulator,
                scene,
                fraction=fractions[index],
            )

        executor = GroupExecutor(
            predictor._resolve_policy(ctx.policy), fault_plan=ctx.fault_plan
        )
        report = executor.run(task, len(groups))
        if report.serial_fallback:
            # Execution observation, not content: never cached with the
            # artifact, surfaced by the driver on the final result.
            ctx.execution_notes["serial_fallback"] = True
        predictions = [report.results[i] for i in sorted(report.results)]
        return predictions, report.failures

    def _run_fleet(
        self, ctx: StageContext, frame, quantized, groups, scaled_gpu,
        fractions, scene,
    ):
        """Scatter the groups across the distributed fleet instead.

        Same return shape and degraded semantics as the local path —
        the combine stage cannot tell which one ran.  With no faults
        the fleet reproduces the local results bit-identically (workers
        run the same ``_predict_group`` with the same derived seeds),
        so the shared artifact cache stays valid across both paths.
        """
        from ...fleet.dispatch import scatter_groups

        predictions, failures, redispatches = scatter_groups(
            ctx.fleet,
            ctx.store,
            self.predictor,
            frame,
            quantized,
            groups,
            scaled_gpu,
            fractions,
            scene,
        )
        if redispatches:
            ctx.execution_notes["fleet_redispatches"] = (
                ctx.execution_notes.get("fleet_redispatches", 0) + redispatches
            )
        return predictions, failures


class CombineStage(Stage):
    """Step 7: quorum check, degraded renormalization, final combination.

    Produces the :class:`~repro.core.pipeline.ZatelResult` (with
    ``host_seconds`` left at zero for the driver to fill in).
    """

    name = "combine"
    # v2: combination goes through the telemetry metric registry's
    # semantics-aware aggregator (arithmetic unchanged; bumped so cached
    # artifacts never alias across the refactor).
    # v3: results carry combined variances + sampler provenance
    #     (pluggable sampling engine refactor).
    # v4: results carry simulator-backend provenance (sim_backend).
    code_version = "4"

    def __init__(
        self, quorum: int | None = None, sampler_provenance: dict | None = None
    ) -> None:
        self.quorum = quorum
        #: Baked into the result artifact (and therefore this stage's
        #: fingerprint): which sampling engine produced the groups.
        self.sampler_provenance = sampler_provenance

    def params(self) -> Any:
        return (self.quorum, self.sampler_provenance)

    def run(self, ctx: StageContext, simulated, groups, scaled, heatmap, quantized, gpu):  # noqa: ARG002
        from ..pipeline import ZatelResult

        predictions, failures = simulated
        scaled_gpu, k = scaled
        # Variances combine only when every surviving group carries one
        # (single-replicate point predictions report none).
        group_variances = [g.variances for g in predictions]
        has_variances = bool(predictions) and all(
            v is not None for v in group_variances
        )
        variances: dict[str, float] = {}
        if failures:
            failures = [
                dataclasses.replace(record, pixel_count=len(groups[record.index]))
                for record in failures
            ]
            quorum = (
                self.quorum if self.quorum is not None else default_quorum(len(groups))
            )
            if len(predictions) < quorum:
                details = "; ".join(record.describe() for record in failures)
                raise DegradedResultError(
                    f"only {len(predictions)} of {len(groups)} groups "
                    f"survived (quorum {quorum}): {details}"
                )
            total_pixels = sum(len(pixels) for pixels in groups)
            surviving_pixels = sum(p.pixel_count for p in predictions)
            coverage = surviving_pixels / total_pixels
            combined = combine_degraded_metrics(
                [g.metrics for g in predictions], coverage
            )
            if has_variances:
                variances = combine_degraded_variances(group_variances, coverage)
        else:
            combined = combine_group_metrics([g.metrics for g in predictions])
            if has_variances:
                variances = combine_group_variances(group_variances)
        return ZatelResult(
            metrics=combined,
            groups=predictions,
            downscale_factor=k,
            gpu_name=gpu.name,
            scaled_gpu_name=scaled_gpu.name,
            heatmap=heatmap,
            quantized=quantized,
            degraded=bool(failures),
            failures=list(failures),
            variances=variances,
            sampler=dict(self.sampler_provenance or {}),
            sim_backend=scaled_gpu.sim_backend,
        )


class SamplingSimulateStage(Stage):
    """The Section IV-D baseline: one sampled run on the *full* GPU.

    Selection, filtering and linear extrapolation over the whole plane as
    a single group — no downscaling, no partitioning.
    """

    name = "sampling_simulate"
    # v2: stats carry a telemetry field (interval snapshots + timelines).
    # v3: simulators come from make_simulator (backend-selectable engine;
    #     stats carry sim_backend provenance).
    code_version = "3"
    cacheable = True

    def __init__(
        self,
        fraction: float,
        distribution: str = "uniform",
        block_width: int = 32,
        block_height: int = 2,
        seed: int = 0,
    ) -> None:
        self.fraction = fraction
        self.distribution = distribution
        self.block_width = block_width
        self.block_height = block_height
        self.seed = seed

    def params(self) -> Any:
        return (
            self.fraction,
            self.distribution,
            self.block_width,
            self.block_height,
            self.seed,
        )

    def run(self, ctx: StageContext, frame, quantized, gpu, scene):  # noqa: ARG002
        from ...models.sampling_only import SamplingPrediction

        pixels = [
            (px, py) for py in range(frame.height) for px in range(frame.width)
        ]
        selected = select_pixels(
            quantized,
            pixels,
            self.fraction,
            distribution=self.distribution,
            block_width=self.block_width,
            block_height=self.block_height,
            seed=self.seed,
        )
        warps = compile_kernel(frame, pixels, scene.addresses, selected=selected)
        stats = make_simulator(gpu, scene.addresses).run(warps)
        stats.backend = getattr(frame, "backend", "scalar")
        return SamplingPrediction(
            fraction=self.fraction,
            selected_count=len(selected),
            stats=stats,
            metrics=linear_extrapolate(stats, self.fraction),
        )
