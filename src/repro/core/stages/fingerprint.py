"""Deterministic fingerprints for stages and artifacts.

Every artifact in the stage graph is addressed by the fingerprint of the
computation that produced it: stage name + stage code version + stage
parameters + the fingerprints of its upstream artifacts.  Two sweep
points whose profiling inputs coincide therefore resolve to the *same*
heatmap key, which is what lets the :class:`~repro.core.stages.sweep.
SweepPlanner` profile each scene exactly once.

:func:`stable_hash` is the single hashing primitive.  It canonicalizes a
restricted value vocabulary (scalars, strings, bytes, sequences, sorted
mappings, dataclasses, paths) into an unambiguous token stream and
SHA-256 hashes it.  It intentionally rejects anything else: silently
hashing ``repr()`` of an arbitrary object would make cache keys depend
on memory addresses.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import PurePath
from typing import Any

__all__ = [
    "stable_hash",
    "frame_fingerprint",
    "gpu_fingerprint",
    "scene_fingerprint",
]


def _feed(hasher, obj: Any) -> None:
    """Serialize ``obj`` into ``hasher`` as an unambiguous token stream.

    Every token is length- or type-prefixed so distinct structures can
    never collide by concatenation (e.g. ``("ab", "c")`` vs ``("a",
    "bc")``).
    """
    if obj is None:
        hasher.update(b"N;")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        hasher.update(b"B1;" if obj else b"B0;")
    elif isinstance(obj, int):
        encoded = str(obj).encode()
        hasher.update(b"I%d:%s;" % (len(encoded), encoded))
    elif isinstance(obj, float):
        encoded = repr(obj).encode()
        hasher.update(b"F%d:%s;" % (len(encoded), encoded))
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        hasher.update(b"S%d:%s;" % (len(encoded), encoded))
    elif isinstance(obj, bytes):
        hasher.update(b"Y%d:%s;" % (len(obj), obj))
    elif isinstance(obj, PurePath):
        _feed(hasher, str(obj))
    elif isinstance(obj, (tuple, list)):
        hasher.update(b"L%d:" % len(obj))
        for item in obj:
            _feed(hasher, item)
        hasher.update(b";")
    elif isinstance(obj, (set, frozenset)):
        hasher.update(b"E%d:" % len(obj))
        for item in sorted(obj, key=repr):
            _feed(hasher, item)
        hasher.update(b";")
    elif isinstance(obj, dict):
        hasher.update(b"D%d:" % len(obj))
        for key in sorted(obj, key=repr):
            _feed(hasher, key)
            _feed(hasher, obj[key])
        hasher.update(b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        hasher.update(b"C")
        _feed(hasher, f"{cls.__module__}.{cls.__qualname__}")
        for f in dataclasses.fields(obj):
            _feed(hasher, f.name)
            _feed(hasher, getattr(obj, f.name))
        hasher.update(b";")
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r} values; "
            "use scalars, strings, sequences, mappings or dataclasses"
        )


def stable_hash(*parts: Any) -> str:
    """Hex SHA-256 of the canonical encoding of ``parts``.

    Stable across processes and Python versions (no ``hash()``
    randomization, no ``id()``/``repr()`` of arbitrary objects).
    """
    hasher = hashlib.sha256()
    _feed(hasher, parts)
    return hasher.hexdigest()


def frame_fingerprint(frame) -> str:
    """Identity of a :class:`~repro.tracer.trace.FrameTrace` input.

    Keyed by the workload coordinates plus cheap content summaries
    (pixel count and total cost), so regenerating a trace after a
    tracer-model change — which perturbs per-pixel costs — changes the
    key even at identical resolution.
    """
    return stable_hash(
        "frame",
        frame.scene_name,
        frame.width,
        frame.height,
        frame.samples_per_pixel,
        len(frame.pixels),
        frame.total_cost(),
    )


def gpu_fingerprint(gpu) -> str:
    """Identity of a full :class:`~repro.gpu.config.GPUConfig`.

    Hashes *every* field (it is a frozen dataclass), not just the name —
    two configs that share a name but differ in any architectural knob
    must never collide (the stale-simulation bug this fingerprint
    exists to prevent).
    """
    return stable_hash("gpu", gpu)


def scene_fingerprint(scene) -> str:
    """Identity of a scene: its spec plus name and geometry summary.

    Library scenes are procedurally deterministic per name; the
    triangle/node counts catch a generator change that keeps the name.
    The :class:`~repro.scene.spec.SceneSpec` (when the registry built
    the scene) separates identities the display name conflates: two
    ``saturation`` recipes with different seeds share ``SAT040`` but
    must never share artifacts, and each frame of an animated sequence
    is its own workload.
    """
    return stable_hash(
        "scene",
        scene.name,
        scene.triangle_count(),
        scene.node_count(),
        scene.max_bounces,
        getattr(scene, "spec", None),
    )
