"""Image-plane division into K groups (Zatel step 4, Section III-D).

Two strategies, compared in the paper's Section IV-E:

* **coarse-grained** — split the plane into K contiguous tiles (Fig. 5);
  emphasizes *ray locality* (neighbouring rays traverse similar BVH paths).
* **fine-grained** — split the plane into small chunks (32x2 pixels by
  default, matching the warp width) and deal them round-robin to the K
  groups (Fig. 6); each group then *homogeneously samples* the whole
  scene's complexity, at the cost of extra divergence.

Group pixel lists are ordered chunk-row-major so that consecutive runs of
32 pixels form warps (see :mod:`repro.gpu.frontend`).
"""

from __future__ import annotations

import math

__all__ = [
    "coarse_partition",
    "fine_partition",
    "partition_plane",
    "tile_grid_shape",
]

Pixel = tuple[int, int]


def tile_grid_shape(k: int, width: int, height: int) -> tuple[int, int]:
    """Choose a (rows, cols) grid with ``rows * cols == k``.

    Picks the factorization closest to the plane's aspect ratio so coarse
    tiles stay as square as possible (the paper uses 3x2 for K=6).
    """
    if k <= 0:
        raise ValueError("group count must be positive")
    best = (1, k)
    best_score = float("inf")
    for rows in range(1, k + 1):
        if k % rows:
            continue
        cols = k // rows
        tile_w = width / cols
        tile_h = height / rows
        score = abs(math.log(tile_w / tile_h))
        if score < best_score:
            best_score = score
            best = (rows, cols)
    return best


def coarse_partition(width: int, height: int, k: int) -> list[list[Pixel]]:
    """Split the plane into K contiguous tiles (coarse-grained, Fig. 5).

    Tile boundaries are rounded so every pixel lands in exactly one group;
    groups may differ by a row/column of pixels when K does not divide the
    plane evenly.
    """
    rows, cols = tile_grid_shape(k, width, height)
    groups: list[list[Pixel]] = [[] for _ in range(k)]
    for py in range(height):
        tile_row = min(rows - 1, py * rows // height)
        for px in range(width):
            tile_col = min(cols - 1, px * cols // width)
            groups[tile_row * cols + tile_col].append((px, py))
    return groups


def fine_partition(
    width: int,
    height: int,
    k: int,
    chunk_width: int = 32,
    chunk_height: int = 2,
) -> list[list[Pixel]]:
    """Deal 32x2 chunks round-robin to K groups (fine-grained, Figs. 6-7).

    The chunk width defaults to the warp size so each chunk row maps to one
    warp; the height stays small (2) to keep chunks area-small while
    "retaining thread divergence characteristics" (Section III-D).
    """
    if chunk_width <= 0 or chunk_height <= 0:
        raise ValueError("chunk dimensions must be positive")
    groups: list[list[Pixel]] = [[] for _ in range(k)]
    index = 0
    for cy in range(0, height, chunk_height):
        for cx in range(0, width, chunk_width):
            group = groups[index % k]
            index += 1
            for py in range(cy, min(cy + chunk_height, height)):
                for px in range(cx, min(cx + chunk_width, width)):
                    group.append((px, py))
    return groups


def partition_plane(
    width: int,
    height: int,
    k: int,
    method: str = "fine",
    chunk_width: int = 32,
    chunk_height: int = 2,
) -> list[list[Pixel]]:
    """Partition dispatcher: ``"fine"`` or ``"coarse"``.

    Raises:
        ValueError: for an unknown method or non-positive K.
    """
    if k <= 0:
        raise ValueError("group count must be positive")
    if method == "fine":
        return fine_partition(width, height, k, chunk_width, chunk_height)
    if method == "coarse":
        return coarse_partition(width, height, k)
    raise ValueError(f"unknown division method {method!r}; use 'fine' or 'coarse'")
