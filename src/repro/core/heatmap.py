"""Execution-time heatmaps (Zatel step 1).

The heatmap is Zatel's profiling input: per-pixel runtime, normalized by the
longest runtime, then mapped onto NVIDIA's heat gradient where *warmer
colors indicate lengthier ray trace times* (Section III-B).  The paper
profiles on a hardware GPU; here the functional tracer's per-pixel cost is
the runtime proxy (the paper notes both options "yield comparable results").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tracer.trace import FrameTrace

__all__ = ["HEAT_GRADIENT", "Heatmap", "temperature_to_color", "color_to_temperature"]

#: NVIDIA-style heat gradient stops: position in [0, 1] -> RGB in [0, 1].
#: 0 is coldest (dark blue), 1 is hottest (red), matching the DXR shader
#: profiling gradient the paper references.
HEAT_GRADIENT: tuple[tuple[float, tuple[float, float, float]], ...] = (
    (0.00, (0.00, 0.00, 0.45)),  # dark blue
    (0.25, (0.00, 0.35, 1.00)),  # blue
    (0.50, (0.00, 0.85, 0.35)),  # green
    (0.75, (1.00, 0.90, 0.00)),  # yellow
    (1.00, (1.00, 0.10, 0.00)),  # red
)


def temperature_to_color(t: float) -> np.ndarray:
    """Map a normalized temperature in [0, 1] to a gradient RGB color."""
    t = min(1.0, max(0.0, float(t)))
    for (p0, c0), (p1, c1) in zip(HEAT_GRADIENT, HEAT_GRADIENT[1:]):
        if t <= p1:
            f = 0.0 if p1 == p0 else (t - p0) / (p1 - p0)
            return np.array(c0) + f * (np.array(c1) - np.array(c0))
    return np.array(HEAT_GRADIENT[-1][1])


def color_to_temperature(rgb: np.ndarray) -> float:
    """Invert the gradient: nearest position on the gradient polyline.

    This is the paper's "shifted hue parameter" extraction — recovering how
    warm a (possibly quantized) color is.  Works for any RGB; off-gradient
    colors project to the closest segment.
    """
    best_t = 0.0
    best_d = float("inf")
    rgb = np.asarray(rgb, dtype=np.float64)
    for (p0, c0), (p1, c1) in zip(HEAT_GRADIENT, HEAT_GRADIENT[1:]):
        a = np.array(c0)
        b = np.array(c1)
        ab = b - a
        denom = float(ab @ ab)
        f = 0.0 if denom == 0.0 else float(np.clip((rgb - a) @ ab / denom, 0.0, 1.0))
        point = a + f * ab
        d = float(np.sum((rgb - point) ** 2))
        if d < best_d:
            best_d = d
            best_t = p0 + f * (p1 - p0)
    return best_t


@dataclass
class Heatmap:
    """A normalized execution-time heatmap over the image plane.

    ``temperatures`` is an ``(H, W)`` array in [0, 1] (1 = the slowest
    pixel).  Raw per-pixel costs are retained for tooling.
    """

    temperatures: np.ndarray
    raw_costs: np.ndarray

    @classmethod
    def from_frame(
        cls,
        frame: FrameTrace,
        percentile: float = 99.5,
        warp_width: int = 32,
    ) -> "Heatmap":
        """Profile a traced frame into a heatmap (Zatel step 1).

        Two departures from naive per-pixel cost, both reflecting how the
        paper's *hardware* profiling behaves:

        * **warp flattening** — a GPU executes 32 pixels in SIMT lock-step,
          so a cheap pixel measured with timer instrumentation inherits its
          warp's runtime.  Each aligned ``warp_width x 1`` run therefore
          takes the maximum cost of its pixels (``warp_width=0`` disables).
        * **percentile normalization** — the paper divides by the longest
          runtime; our functional cost proxy has a heavier stochastic
          outlier tail, so the default divides by the ``percentile``-th
          cost and clamps the top stragglers to 1.0.

        Raises:
            ValueError: if the frame has no traced pixels or zero cost.
        """
        if not frame.pixels:
            raise ValueError("cannot build a heatmap from an empty frame trace")
        costs = frame.cost_map()
        flattened = costs
        if warp_width > 1:
            flattened = costs.copy()
            height, width = costs.shape
            for base in range(0, width, warp_width):
                run = flattened[:, base : base + warp_width]
                run[:] = run.max(axis=1, keepdims=True)
        peak = float(np.percentile(flattened[flattened > 0], percentile))
        if peak <= 0.0:
            raise ValueError("frame trace has zero total cost")
        return cls(
            temperatures=np.clip(flattened / peak, 0.0, 1.0), raw_costs=costs
        )

    @property
    def height(self) -> int:
        return int(self.temperatures.shape[0])

    @property
    def width(self) -> int:
        return int(self.temperatures.shape[1])

    def temperature_at(self, px: int, py: int) -> float:
        """Normalized temperature of pixel ``(px, py)``."""
        return float(self.temperatures[py, px])

    def to_colors(self) -> np.ndarray:
        """Render the heatmap to an ``(H, W, 3)`` RGB image in [0, 1]."""
        flat = self.temperatures.reshape(-1)
        colors = np.empty((flat.size, 3), dtype=np.float64)
        for i, t in enumerate(flat):
            colors[i] = temperature_to_color(float(t))
        return colors.reshape(self.height, self.width, 3)

    def mean_temperature(self) -> float:
        """Average normalized temperature (how warm the scene is overall)."""
        return float(self.temperatures.mean())
