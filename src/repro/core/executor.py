"""Fault-tolerant execution engine for per-group simulation tasks.

The paper deploys Zatel's K group simulations "simultaneously on
different CPU cores" — exactly the regime where workers crash, hang, or
get OOM-killed, and where a long sweep must survive partial failure
rather than restart from zero.  :class:`GroupExecutor` runs indexed
tasks with:

* **crash isolation** — each attempt runs in its own forked worker
  process, so a dead worker fails only its task;
* **per-attempt timeouts** — a hung worker is killed and charged a
  :class:`~repro.errors.GroupTimeoutError`;
* **bounded retries** — exponential backoff with deterministic seeded
  jitter (no wall-clock or PID entropy, so schedules are reproducible);
* **checkpointing** — each completed group's result is pickled
  atomically under ``checkpoint_dir``, and ``resume=True`` reloads
  completed groups instead of recomputing them.  Corrupt checkpoints
  are deleted and recomputed (logged as
  :class:`~repro.errors.CacheCorruptionError`).

Tasks are callables ``task(index, attempt) -> result``; results must be
picklable when worker processes are used.  With ``workers <= 1`` tasks
run in-process with the same retry and checkpoint semantics; timeouts
are then best-effort only (there is no safe way to preempt in-process
Python).  On platforms without the ``fork`` start method a ``workers >
1`` request degrades to the same serial path — *loudly*: a warning is
logged and ``ExecutionReport.serial_fallback`` is set so callers (and
``ZatelResult``) can surface that the requested parallelism was not
honored.

Fault injection for tests plugs in via a duck-typed plan object (see
:mod:`repro.testing.faults`) with two methods: ``apply(index, attempt,
in_process)`` called before each attempt, and
``corrupts_checkpoint(index)`` consulted after each checkpoint write.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import pickle
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..errors import (
    CacheCorruptionError,
    FailureRecord,
    GroupTimeoutError,
    WorkerCrashError,
)

__all__ = ["ExecutionPolicy", "ExecutionReport", "GroupExecutor", "default_quorum"]

logger = logging.getLogger("repro.executor")

#: Unpickling failure modes treated as "corrupt file, recompute".
_CORRUPT_PICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
)


def default_quorum(total_groups: int) -> int:
    """Minimum surviving groups for an honest combine: ``ceil(K/2)``."""
    return math.ceil(total_groups / 2)


@dataclass(frozen=True)
class ExecutionPolicy:
    """Execution knobs, separate from the :class:`ZatelConfig` methodology
    knobs — they change *how* groups run, never *what* they compute.

    Attributes:
        workers: concurrent worker processes (``<= 1`` runs in-process).
        timeout: per-attempt wall-clock budget in seconds (``None`` =
            unlimited; enforced only under process isolation).
        retries: re-attempts after the first try (total attempts =
            ``retries + 1``).
        backoff_base: first retry delay in seconds; doubles per attempt.
        backoff_cap: upper bound on any single retry delay.
        seed: jitter seed — the full retry schedule is a pure function of
            ``(seed, group index, attempt)``.
        checkpoint_dir: directory for per-group result pickles (``None``
            disables checkpointing).
        resume: load completed groups from ``checkpoint_dir`` instead of
            recomputing them.
        quorum: minimum surviving groups a degraded combine tolerates;
            ``None`` means :func:`default_quorum`.
    """

    workers: int = 1
    timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0
    checkpoint_dir: str | Path | None = None
    resume: bool = False
    quorum: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.quorum is not None and self.quorum < 1:
            raise ValueError("quorum must be >= 1 (or None for ceil(K/2))")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` of group ``index``.

        ``base * 2**(attempt-1) * (1 + jitter)`` capped at ``backoff_cap``,
        with jitter in [0, 1) drawn from a seeded, stateless RNG.
        """
        jitter = random.Random(
            (self.seed * 1_000_003 + index) * 97 + attempt
        ).random()
        delay = self.backoff_base * (2.0 ** max(0, attempt - 1)) * (1.0 + jitter)
        return min(self.backoff_cap, delay)


@dataclass
class ExecutionReport:
    """Everything :meth:`GroupExecutor.run` observed.

    ``results`` maps group index to task result for every group that
    succeeded (or was resumed from a checkpoint); ``failures`` audits the
    rest.  ``attempts`` counts live executions per group — resumed groups
    stay at 0, which is what resume tests assert on.
    """

    results: dict[int, Any] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)
    resumed: tuple[int, ...] = ()
    #: ``workers > 1`` was requested but the platform has no ``fork``
    #: start method, so groups ran serially in-process (documented
    #: degrade; a warning is logged and callers surface it on
    #: ``ZatelResult.serial_fallback``).
    serial_fallback: bool = False

    @property
    def succeeded(self) -> bool:
        return not self.failures


class GroupExecutor:
    """Runs ``count`` indexed tasks under an :class:`ExecutionPolicy`."""

    def __init__(self, policy: ExecutionPolicy, fault_plan: Any | None = None) -> None:
        self.policy = policy
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self, task: Callable[[int, int], Any], count: int
    ) -> ExecutionReport:
        """Execute ``task(index, attempt)`` for every ``index < count``.

        Returns an :class:`ExecutionReport`; never raises for individual
        task failures — those become :class:`FailureRecord` entries.
        """
        report = ExecutionReport(attempts={i: 0 for i in range(count)})
        if self.policy.checkpoint_dir is not None:
            Path(self.policy.checkpoint_dir).mkdir(parents=True, exist_ok=True)
            if self.policy.resume:
                self._resume_from_checkpoints(count, report)
        remaining = [i for i in range(count) if i not in report.results]
        if not remaining:
            return report
        if self._use_processes():
            self._run_forked(task, remaining, report)
        else:
            if self.policy.workers > 1:
                # Documented degrade, not a silent one: the parallelism
                # the caller asked for is unavailable here, and results
                # are identical either way (groups are independent), so
                # run serially but say so and record it on the report.
                report.serial_fallback = True
                logger.warning(
                    "workers=%d requested but the 'fork' start method is "
                    "unavailable on this platform; running %d group(s) "
                    "serially in-process (results are unaffected, wall-"
                    "clock parallelism is lost, timeouts are best-effort)",
                    self.policy.workers,
                    len(remaining),
                )
            self._run_serial(task, remaining, report)
        report.failures.sort(key=lambda record: record.index)
        return report

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def _checkpoint_path(self, index: int) -> Path:
        return Path(self.policy.checkpoint_dir) / f"group_{index:04d}.pkl"

    def _store_checkpoint(self, index: int, result: Any) -> None:
        if self.policy.checkpoint_dir is None:
            return
        path = self._checkpoint_path(index)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(
                {"index": index, "result": result},
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp, path)
        plan = self.fault_plan
        if plan is not None and plan.corrupts_checkpoint(index):
            # Injected corruption: truncate to half, as an interrupted
            # non-atomic writer would have left it.
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])

    def _load_checkpoint(self, index: int) -> Any | None:
        """A checkpointed result, or ``None`` (missing or corrupt —
        corrupt files are deleted so the group recomputes cleanly)."""
        path = self._checkpoint_path(index)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict) or payload.get("index") != index:
                raise pickle.UnpicklingError("checkpoint payload mismatch")
            return payload["result"]
        except _CORRUPT_PICKLE_ERRORS as error:
            logger.warning(
                "%s",
                CacheCorruptionError(
                    f"corrupt checkpoint {path} ({type(error).__name__}: "
                    f"{error}); deleted, group {index} will recompute"
                ),
            )
            path.unlink(missing_ok=True)
            return None

    def _resume_from_checkpoints(self, count: int, report: ExecutionReport) -> None:
        resumed = []
        for index in range(count):
            result = self._load_checkpoint(index)
            if result is not None:
                report.results[index] = result
                resumed.append(index)
        report.resumed = tuple(resumed)

    # ------------------------------------------------------------------
    # serial (in-process) execution
    # ------------------------------------------------------------------

    def _use_processes(self) -> bool:
        return (
            self.policy.workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _run_serial(
        self,
        task: Callable[[int, int], Any],
        indices: list[int],
        report: ExecutionReport,
    ) -> None:
        for index in indices:
            last_error: BaseException | None = None
            for attempt in range(self.policy.retries + 1):
                if attempt > 0:
                    time.sleep(self.policy.backoff_delay(index, attempt))
                report.attempts[index] += 1
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply(index, attempt, in_process=True)
                    result = task(index, attempt)
                except Exception as error:  # noqa: BLE001 - isolation boundary
                    last_error = error
                    continue
                report.results[index] = result
                self._store_checkpoint(index, result)
                last_error = None
                break
            if last_error is not None:
                report.failures.append(
                    FailureRecord(
                        index=index,
                        error=type(last_error).__name__,
                        message=str(last_error),
                        attempts=report.attempts[index],
                    )
                )

    # ------------------------------------------------------------------
    # forked-process execution
    # ------------------------------------------------------------------

    def _run_forked(
        self,
        task: Callable[[int, int], Any],
        indices: list[int],
        report: ExecutionReport,
    ) -> None:
        """Scheduling loop: at most ``workers`` concurrent forked attempts,
        per-attempt deadlines, deterministic-backoff retry queue."""
        ctx = multiprocessing.get_context("fork")
        ready: list[tuple[int, int]] = [(index, 0) for index in indices]
        waiting: list[tuple[float, int, int]] = []  # (not_before, index, attempt)
        running: dict[int, tuple[Any, Any, float | None, int]] = {}

        while ready or waiting or running:
            now = time.monotonic()
            still_waiting = []
            for not_before, index, attempt in waiting:
                if not_before <= now:
                    ready.append((index, attempt))
                else:
                    still_waiting.append((not_before, index, attempt))
            waiting = still_waiting

            while ready and len(running) < self.policy.workers:
                index, attempt = ready.pop(0)
                recv, send = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(send, task, index, attempt, self.fault_plan),
                )
                process.start()
                send.close()
                deadline = (
                    now + self.policy.timeout
                    if self.policy.timeout is not None
                    else None
                )
                report.attempts[index] += 1
                running[index] = (process, recv, deadline, attempt)

            if not running:
                if waiting:
                    time.sleep(
                        max(0.0, min(w[0] for w in waiting) - time.monotonic())
                    )
                continue

            time.sleep(0.002)
            now = time.monotonic()
            for index in list(running):
                process, recv, deadline, attempt = running[index]
                outcome = self._poll_worker(index, process, recv, deadline, now)
                if outcome is None:
                    continue
                del running[index]
                recv.close()
                kind, payload = outcome
                if kind == "ok":
                    report.results[index] = payload
                    self._store_checkpoint(index, payload)
                elif attempt < self.policy.retries:
                    not_before = now + self.policy.backoff_delay(
                        index, attempt + 1
                    )
                    waiting.append((not_before, index, attempt + 1))
                else:
                    error_name, message = payload
                    report.failures.append(
                        FailureRecord(
                            index=index,
                            error=error_name,
                            message=message,
                            attempts=report.attempts[index],
                        )
                    )

    def _poll_worker(
        self,
        index: int,
        process: Any,
        recv: Any,
        deadline: float | None,
        now: float,
    ) -> tuple[str, Any] | None:
        """One worker's state: ``None`` if still running, else an
        ``("ok", result)`` or ``("failed", (error_name, message))`` pair."""
        if recv.poll():
            try:
                message = recv.recv()
            except (EOFError, OSError):
                message = None
            process.join()
            if message is not None and message[0] == "ok":
                return ("ok", message[1])
            if message is not None:
                return ("failed", (message[1], message[2]))
            return (
                "failed",
                (
                    WorkerCrashError.__name__,
                    f"worker for group {index} closed its pipe without a "
                    f"result (exit code {process.exitcode})",
                ),
            )
        if deadline is not None and now > deadline:
            _kill(process)
            return (
                "failed",
                (
                    GroupTimeoutError.__name__,
                    f"group {index} exceeded the {self.policy.timeout:g}s "
                    "per-attempt timeout; worker killed",
                ),
            )
        if not process.is_alive():
            process.join()
            if recv.poll():  # result raced the exit — drain it
                return self._poll_worker(index, process, recv, deadline, now)
            return (
                "failed",
                (
                    WorkerCrashError.__name__,
                    f"worker for group {index} died with exit code "
                    f"{process.exitcode} before reporting a result",
                ),
            )
        return None


def _kill(process: Any) -> None:
    """Terminate, escalating to SIGKILL if the worker ignores SIGTERM."""
    process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():
        process.kill()
        process.join()


def _worker_main(conn, task, index: int, attempt: int, fault_plan) -> None:
    """Forked worker entry: run one attempt, report through the pipe.

    Exits with ``os._exit`` so the forked copy of the parent (pytest,
    CLI atexit hooks, ...) never runs its teardown twice.
    """
    try:
        if fault_plan is not None:
            fault_plan.apply(index, attempt, in_process=False)
        result = task(index, attempt)
        conn.send(("ok", result))
        conn.close()
    except BaseException as error:  # noqa: BLE001 - process boundary
        try:
            conn.send(("error", type(error).__name__, str(error)))
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)
