"""Color quantization of heatmaps via K-Means (Zatel step 2).

The paper quantizes the heatmap's colors with K-Means "to merge similar
colors and create distinct groups, eliminating noise" (Fig. 4).  Each
resulting quantized color carries a *coolness* value ``c_i`` in [0, 1]
(0 = hot, 1 = cold) recovered from its position on the heat gradient —
the quantity driving equation (1)'s pixel-budget and equations (2)-(3)'s
temperature-weighted distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .heatmap import Heatmap, color_to_temperature, temperature_to_color

__all__ = ["QuantizedHeatmap", "quantize_heatmap", "kmeans"]


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain K-Means clustering (k-means++ seeding, Lloyd iterations).

    Args:
        points: ``(N, D)`` float array.
        k: cluster count; clamped to ``N`` if larger.
        seed: RNG seed for deterministic experiments.
        max_iterations: Lloyd iteration cap (converges much earlier for
            heatmap palettes).

    Returns:
        ``(centroids, labels)``: ``(k, D)`` centroids and ``(N,)`` integer
        labels.

    Raises:
        ValueError: for an empty point set or non-positive ``k``.
    """
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("kmeans needs a non-empty (N, D) point array")
    if k <= 0:
        raise ValueError("cluster count must be positive")
    n = points.shape[0]
    k = min(k, n)
    rng = np.random.default_rng(seed)

    # k-means++ seeding: spread initial centroids by squared distance.
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All points coincide with chosen centroids; duplicate one.
            centroids[i:] = centroids[0]
            break
        probabilities = closest_sq / total
        centroids[i] = points[rng.choice(n, p=probabilities)]
        dist = np.sum((points - centroids[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist, out=closest_sq)

    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(max_iterations):
        # Assignment step (vectorized distance matrix N x k).
        distances = np.sum(
            (points[:, None, :] - centroids[None, :, :]) ** 2, axis=2
        )
        new_labels = np.argmin(distances, axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        # Update step; empty clusters keep their previous centroid.
        for c in range(k):
            members = points[labels == c]
            if members.shape[0] > 0:
                centroids[c] = members.mean(axis=0)
    return centroids, labels


@dataclass
class QuantizedHeatmap:
    """A heatmap reduced to ``k`` quantized colors.

    Attributes:
        labels: ``(H, W)`` cluster index per pixel.
        palette: ``(k, 3)`` RGB centroid per cluster.
        coolness: ``(k,)`` per-cluster ``c_i`` in [0, 1] (1 = coldest),
            recovered by inverting the heat gradient at each centroid.
        heatmap: the source heatmap (kept for block statistics).
    """

    labels: np.ndarray
    palette: np.ndarray
    coolness: np.ndarray
    heatmap: Heatmap

    @property
    def num_colors(self) -> int:
        return int(self.palette.shape[0])

    def label_at(self, px: int, py: int) -> int:
        """Quantized color index of pixel ``(px, py)``."""
        return int(self.labels[py, px])

    def coolness_at(self, px: int, py: int) -> float:
        """Coolness ``c_i`` of the pixel's quantized color."""
        return float(self.coolness[self.label_at(px, py)])

    def warmth(self) -> np.ndarray:
        """Per-cluster warmth ``c'_j = 1 - c_j`` (equations (2)-(3))."""
        return 1.0 - self.coolness

    def color_histogram(
        self, pixels: list[tuple[int, int]] | None = None
    ) -> np.ndarray:
        """Pixel count per quantized color, optionally over a subset."""
        counts = np.zeros(self.num_colors, dtype=np.int64)
        if pixels is None:
            values, occurrences = np.unique(self.labels, return_counts=True)
            counts[values] = occurrences
        else:
            for px, py in pixels:
                counts[self.labels[py, px]] += 1
        return counts

    def to_colors(self) -> np.ndarray:
        """Render the quantized map to an ``(H, W, 3)`` RGB image."""
        return self.palette[self.labels]


def quantize_heatmap(
    heatmap: Heatmap, num_colors: int = 8, seed: int = 0
) -> QuantizedHeatmap:
    """Quantize a heatmap's colors with K-Means (Zatel step 2).

    The clustering runs in gradient-color space (as the paper does) rather
    than on scalar temperatures, then each centroid's coolness is recovered
    by projecting it back onto the gradient.
    """
    h, w = heatmap.temperatures.shape
    flat_t = heatmap.temperatures.reshape(-1)
    colors = np.empty((flat_t.size, 3), dtype=np.float64)
    for i, t in enumerate(flat_t):
        colors[i] = temperature_to_color(float(t))
    palette, labels = kmeans(colors, num_colors, seed=seed)
    coolness = np.array(
        [1.0 - color_to_temperature(c) for c in palette], dtype=np.float64
    )
    return QuantizedHeatmap(
        labels=labels.reshape(h, w),
        palette=palette,
        coolness=coolness,
        heatmap=heatmap,
    )
