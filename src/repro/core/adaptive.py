"""Adaptive sample-complexity control — an extension beyond the paper.

Zatel chooses each group's traced fraction *before* simulating, from the
heatmap alone (equation 1).  That works when the heatmap is a faithful
saturation proxy, but §IV-D shows the real accuracy driver is whether the
*extrapolation has converged* — SPRNG's heatmap cannot reveal that linear
extrapolation will over-predict 10x.

This extension closes the loop: simulate a group at a small pilot
fraction, escalate geometrically, and stop when two consecutive
extrapolated cycle estimates agree within a tolerance::

    fraction: p0, p0*g, p0*g^2, ...   until |est_k - est_{k-1}| <= tol * est_{k-1}

Saturated groups converge after one escalation (cheap); pathological
groups (SPRNG-like) keep disagreeing and escalate to the cap — spending
the work exactly where the fixed-fraction design wastes accuracy.  The
cost accounting charges *all* pilot runs, so comparisons against the
baseline are fair (``benchmarks/bench_extension_adaptive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.simulator import CycleSimulator
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace
from .pipeline import GroupPrediction, Zatel, ZatelConfig
from .quantize import QuantizedHeatmap

__all__ = ["AdaptiveConfig", "AdaptiveZatel"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive controller.

    Attributes:
        pilot_fraction: first fraction simulated per group.
        growth: geometric escalation factor between attempts.
        tolerance: relative agreement between consecutive extrapolated
            cycle estimates that counts as converged.
        max_fraction: escalation cap (1.0 = may fall back to tracing the
            whole group).
    """

    pilot_fraction: float = 0.15
    growth: float = 1.8
    tolerance: float = 0.10
    max_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.pilot_fraction <= 1.0:
            raise ValueError("pilot_fraction must be in (0, 1]")
        if self.growth <= 1.0:
            raise ValueError("growth must exceed 1")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if not self.pilot_fraction <= self.max_fraction <= 1.0:
            raise ValueError("max_fraction must be in [pilot_fraction, 1]")


class AdaptiveZatel(Zatel):
    """Zatel with convergence-checked fraction escalation per group."""

    def __init__(
        self,
        gpu_config,
        config: ZatelConfig | None = None,
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        super().__init__(gpu_config, config)
        self.adaptive = adaptive if adaptive is not None else AdaptiveConfig()

    def _simulate_params(self):
        """Extend the fingerprint with the controller's knobs: two adaptive
        predictors only share simulation artifacts when their escalation
        schedules match."""
        return super()._simulate_params() + (
            self.adaptive.pilot_fraction,
            self.adaptive.growth,
            self.adaptive.tolerance,
            self.adaptive.max_fraction,
        )

    def _predict_group(
        self,
        index: int,
        pixels: list[tuple[int, int]],
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
        fraction: float | None = None,  # noqa: ARG002 - the controller escalates
    ) -> GroupPrediction:
        """Escalate the traced fraction until the cycle estimate settles."""
        controller = self.adaptive
        group_seed = self.config.seed * 10007 + index

        fraction = controller.pilot_fraction
        work = 0
        previous_estimate: float | None = None
        while True:
            # Same seed across attempts: selections nest (common random
            # numbers), so consecutive estimates differ from genuine
            # saturation curvature, not from re-rolled block choices.
            attempt = self._sample_estimate(
                pixels, fraction, frame, quantized, simulator, scene,
                group_seed,
            )
            work += attempt.work_units
            estimate = attempt.metrics["cycles"]
            converged = (
                previous_estimate is not None
                and abs(estimate - previous_estimate)
                <= controller.tolerance * max(previous_estimate, 1e-9)
            )
            at_cap = fraction >= controller.max_fraction
            if converged or at_cap:
                break
            previous_estimate = estimate
            fraction = min(
                controller.max_fraction, fraction * controller.growth
            )

        return GroupPrediction(
            index=index,
            pixel_count=len(pixels),
            fraction=fraction,
            selected_count=attempt.selected_count,
            stats=attempt.stats,
            metrics=attempt.metrics,
            work_units=work,
            variances=attempt.variances,
            replicates=attempt.replicates,
        )
