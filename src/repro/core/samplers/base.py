"""The pluggable sampling engine's protocol and shared types.

Zatel's K-Means-heatmap pixel selection (Section III-E) is one point in
a much larger sampler design space.  A :class:`Sampler` turns one
group's pixel budget into a :class:`SampleDesign` — the concrete pixel
subsets to simulate plus how to extrapolate each — and the design may
carry *several replicate subsets*: simulating each replicate separately
yields independent metric estimates whose spread is a principled
variance estimate (Ekman's "repeated subsampling"), which is what lets
predictions report confidence intervals instead of bare points.

Contract highlights:

* ``design`` is a **pure function** of ``(quantized, pixels, fraction,
  seed)`` — same inputs give the identical design in any process, which
  the stage-fingerprint dedup and the fleet's scattered workers both
  rely on;
* a single-replicate design (the default
  :class:`~.heatmap_kmeans.HeatmapKMeansSampler`) reproduces the
  historical pipeline byte-for-byte: one selection, one simulation,
  one linear extrapolation, no variance estimate;
* ``fingerprint_params`` feeds the stage content hashes, so two
  predictions with different samplers (or the same sampler under
  different knobs) can never alias in the
  :class:`~repro.core.stages.store.ArtifactStore`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "Pixel",
    "SampleDesign",
    "Sampler",
    "replicate_mean_and_variance",
]

Pixel = tuple[int, int]


@dataclass(frozen=True)
class SampleDesign:
    """One group's sampling plan: which pixels, simulated how.

    Attributes:
        replicates: one frozen pixel subset per simulation replicate.
            Replicates are simulated independently; their extrapolated
            metric estimates are averaged and their spread estimates the
            sampling variance.  A single replicate means "no variance
            estimate" (the paper's original design).
        fractions: the traced fraction each replicate's linear
            extrapolation divides by — the *nominal* group fraction for
            the single-replicate default (preserving byte-identity), the
            replicate's actual pixel share for multi-replicate samplers.
        sampler: the producing sampler's registry name.
        params: the sampler's JSON-able knob dict (provenance).
        seed: the group-level seed the design was drawn with.
    """

    replicates: tuple[frozenset[Pixel], ...]
    fractions: tuple[float, ...]
    sampler: str
    params: dict[str, Any]
    seed: int

    def __post_init__(self) -> None:
        if not self.replicates:
            raise ValueError("a sample design needs at least one replicate")
        if len(self.replicates) != len(self.fractions):
            raise ValueError(
                f"{len(self.replicates)} replicate(s) but "
                f"{len(self.fractions)} fraction(s)"
            )
        for fraction in self.fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"replicate fractions must be in (0, 1], got {fraction}"
                )
        for subset in self.replicates:
            if not subset:
                raise ValueError("replicate pixel subsets must be non-empty")

    @property
    def replicate_count(self) -> int:
        return len(self.replicates)

    @property
    def selected(self) -> frozenset[Pixel]:
        """Union of all replicate subsets (the pixels touched overall)."""
        if len(self.replicates) == 1:
            return self.replicates[0]
        return frozenset().union(*self.replicates)

    @property
    def selected_count(self) -> int:
        """Total pixels *simulated* (replicates counted separately —
        the honest cost accounting; overlapping replicates each pay)."""
        return sum(len(subset) for subset in self.replicates)


class Sampler(ABC):
    """One pixel-selection strategy with a stable identity.

    Subclasses set ``name`` (the registry / CLI / spec identifier) and
    implement :meth:`design`.  Samplers must be cheap, picklable values:
    the fleet ships them inside the predictor bundle, and workers must
    reproduce the coordinator's designs exactly.
    """

    name: ClassVar[str] = "sampler"
    #: Bump when the *algorithm* behind :meth:`design` changes — the knob
    #: dict cannot see code changes, and stale cached stage artifacts
    #: would otherwise survive them.
    version: ClassVar[str] = "1"

    @abstractmethod
    def design(
        self,
        quantized,
        pixels: list[Pixel],
        fraction: float,
        seed: int,
    ) -> SampleDesign:
        """Draw the group's sampling plan.

        Args:
            quantized: the scene's
                :class:`~repro.core.quantize.QuantizedHeatmap` (strata,
                coolness, and the raw heatmap ranking proxy live here).
            pixels: the group's pixels in chunk-row-major order.
            fraction: the group's traced-fraction budget from equation
                (1) (or an override); the design's *total* simulated
                pixel count should approximate ``fraction * len(pixels)``.
            seed: group-level seed; equal seeds must reproduce the
                design bit-for-bit in any process.
        """

    @abstractmethod
    def params(self) -> dict[str, Any]:
        """JSON-able knob dict — the payload provenance block."""

    def fingerprint_params(self) -> Any:
        """Identity contribution to stage content hashes."""
        return (self.name, self.version, tuple(sorted(self.params().items())))

    def provenance(self, seed: int) -> dict[str, Any]:
        """The reproducibility block carried on results and payloads."""
        return {"name": self.name, "params": self.params(), "seed": seed}


def replicate_mean_and_variance(
    estimates: list[dict[str, float]],
) -> tuple[dict[str, float], dict[str, float]]:
    """Mean estimate and variance *of that mean* across replicates.

    Given R independent replicate estimates per metric, the point
    estimate is their mean and its variance is the unbiased sample
    variance divided by R (Ekman's repeated-subsampling estimator).

    Raises:
        ValueError: with fewer than two replicates (the sample variance
            is undefined).
    """
    if len(estimates) < 2:
        raise ValueError("variance estimation needs at least two replicates")
    r = len(estimates)
    names = [name for name in estimates[0] if all(name in e for e in estimates)]
    means: dict[str, float] = {}
    variances: dict[str, float] = {}
    for name in names:
        values = [e[name] for e in estimates]
        mean = math.fsum(values) / r
        sample_var = math.fsum((v - mean) ** 2 for v in values) / (r - 1)
        means[name] = mean
        variances[name] = sample_var / r
    return means, variances
