"""Two-phase stratified sampling over quantized-heatmap strata.

After Ekman, "CPU Simulation Using Two-Phase Stratified Sampling"
(PAPERS.md).  Phase one is the cheap pass the pipeline has already
paid for: the K-Means quantization assigns every section block a
stratum (its dominant quantized color) and the raw heatmap provides a
per-block proxy temperature.  Phase two allocates the expensive
simulation budget across strata by **Neyman allocation** on the proxy —
``n_h ∝ N_h · S_h`` where ``S_h`` is the within-stratum proxy standard
deviation — so strata whose blocks disagree most about cost get the
most simulation; homogeneous (zero-variance) strata degrade gracefully
to proportional-share allocation.

Like the ranked-set sampler, the design draws ``replicates`` independent
full-budget phase-two samples; the spread of the replicate estimates is
the variance estimate behind the reported confidence intervals, and the
R-fold simulation cost is charged honestly through ``work_units``
(splitting the budget would amplify Section IV-D's extrapolation bias).
Integer allocations come from *randomized* systematic rounding of the
real-valued Neyman shares (:func:`systematic_round`), so replicates stay
distinct even on tiny groups where deterministic rounding saturates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, ClassVar

from ..selection import make_section_blocks
from .base import Pixel, SampleDesign, Sampler
from .ranked_set import block_temperatures

__all__ = ["TwoPhaseStratifiedSampler", "neyman_shares", "systematic_round"]


def neyman_shares(
    stratum_sizes: dict[int, int],
    stratum_stds: dict[int, float],
    budget: int,
) -> dict[int, float]:
    """Real-valued Neyman allocation ``n_h = budget * N_h S_h / Σ N S``.

    Zero-weight strata (``N_h * S_h == 0`` for every stratum, e.g. a
    perfectly flat heatmap) fall back to plain proportional allocation.
    The budget is clamped to the total capacity, so the shares always
    sum to ``min(budget, sum of sizes)``.
    """
    if budget <= 0:
        raise ValueError("allocation budget must be positive")
    weights = {
        h: stratum_sizes[h] * max(0.0, stratum_stds.get(h, 0.0))
        for h in stratum_sizes
    }
    if sum(weights.values()) <= 0.0:
        weights = {h: float(stratum_sizes[h]) for h in stratum_sizes}
    total_weight = sum(weights.values())
    budget = min(budget, sum(stratum_sizes.values()))
    return {h: budget * weights[h] / total_weight for h in weights}


def systematic_round(
    shares: dict[int, float],
    stratum_sizes: dict[int, int],
    rng: random.Random,
) -> dict[int, int]:
    """Randomized systematic rounding of real shares to integers.

    One uniform offset decides every stratum's rounding direction at
    once (classic PPS systematic sampling): stratum ``h`` receives the
    number of thresholds ``u + k`` that fall inside its slice of the
    cumulative share line, which is ``floor(share)`` or
    ``ceil(share)`` with probability equal to the fractional part.
    The expectation is exactly the Neyman optimum, and — crucially for
    repeated subsampling — two draws with different offsets can differ
    even when deterministic largest-remainder rounding would produce the
    same saturated allocation every time, which would collapse every
    replicate onto the same blocks and report zero variance.

    Any allocation a small stratum cannot absorb is redistributed to
    strata with capacity (largest share first), so the total equals the
    rounded share total.
    """
    order = sorted(shares)
    budget = round(math.fsum(shares.values()))
    u = rng.random()
    allocation: dict[int, int] = {}
    cumulative = 0.0
    for h in order:
        lo, hi = cumulative, cumulative + shares[h]
        allocation[h] = max(0, math.floor(hi - u) - math.floor(lo - u))
        cumulative = hi
    # Clamp to capacity; push overflow to strata with room.
    overflow = 0
    for h in order:
        if allocation[h] > stratum_sizes[h]:
            overflow += allocation[h] - stratum_sizes[h]
            allocation[h] = stratum_sizes[h]
    for h in sorted(order, key=lambda h: shares[h], reverse=True):
        while overflow > 0 and allocation[h] < stratum_sizes[h]:
            allocation[h] += 1
            overflow -= 1
    # Float-edge slack: top up or trim so the total matches the budget.
    total = sum(allocation.values())
    for h in sorted(order, key=lambda h: shares[h], reverse=True):
        while total < budget and allocation[h] < stratum_sizes[h]:
            allocation[h] += 1
            total += 1
        while total > budget and allocation[h] > 0:
            allocation[h] -= 1
            total -= 1
    return allocation


@dataclass(frozen=True)
class TwoPhaseStratifiedSampler(Sampler):
    """Stratified phase-two block draws with Neyman proxy allocation."""

    name: ClassVar[str] = "two_phase"

    replicates: int = 5
    block_width: int = 32
    block_height: int = 2

    def __post_init__(self) -> None:
        if self.replicates < 2:
            raise ValueError("two-phase sampling needs >= 2 replicates")

    def design(
        self,
        quantized,
        pixels: list[Pixel],
        fraction: float,
        seed: int,
    ) -> SampleDesign:
        if not pixels:
            raise ValueError("cannot design a sample for an empty group")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"traced fraction must be in (0, 1], got {fraction}")
        blocks = make_section_blocks(
            pixels, quantized, self.block_width, self.block_height
        )
        proxies = block_temperatures(blocks, quantized)

        # Phase one: stratify blocks by dominant quantized color and
        # summarize each stratum's proxy spread.
        strata: dict[int, list[int]] = {}
        for index, block in enumerate(blocks):
            strata.setdefault(block.dominant_color, []).append(index)
        sizes = {h: len(members) for h, members in strata.items()}
        stds = {
            h: _std([proxies[i] for i in members])
            for h, members in strata.items()
        }

        block_size = self.block_width * self.block_height
        budget = max(1, round(fraction * len(pixels) / block_size))

        shares = neyman_shares(sizes, stds, min(budget, len(blocks)))
        rng = random.Random(seed)
        subsets: list[frozenset[Pixel]] = []
        fractions: list[float] = []
        for _ in range(self.replicates):
            allocation = systematic_round(shares, sizes, rng)
            chosen: list[int] = []
            for h in sorted(strata):
                n_h = allocation.get(h, 0)
                if n_h > 0:
                    chosen.extend(rng.sample(strata[h], n_h))
            subset = frozenset(
                p for index in chosen for p in blocks[index].pixels
            )
            subsets.append(subset)
            fractions.append(len(subset) / len(pixels))
        return SampleDesign(
            replicates=tuple(subsets),
            fractions=tuple(fractions),
            sampler=self.name,
            params=self.params(),
            seed=seed,
        )

    def params(self) -> dict[str, Any]:
        return {
            "replicates": self.replicates,
            "block_width": self.block_width,
            "block_height": self.block_height,
        }


def _std(values: list[float]) -> float:
    """Population standard deviation (0.0 for singleton strata)."""
    if len(values) < 2:
        return 0.0
    mean = math.fsum(values) / len(values)
    return math.sqrt(math.fsum((v - mean) ** 2 for v in values) / len(values))
