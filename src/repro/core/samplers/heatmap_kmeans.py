"""The paper's K-Means-heatmap sampler as a :class:`~.base.Sampler`.

This is a pure extraction of the historical pipeline behaviour: one
seeded :func:`~repro.core.selection.select_pixels` draw (section blocks,
color quotas per equations (2)-(3)), one replicate, extrapolation by the
*nominal* group fraction.  A prediction through this sampler is
byte-identical to the pre-refactor pipeline — the golden predict metrics
pin that contract — and it reports no variance estimate, exactly like
the paper's point predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from ..selection import select_pixels
from .base import Pixel, SampleDesign, Sampler

__all__ = ["HeatmapKMeansSampler"]


@dataclass(frozen=True)
class HeatmapKMeansSampler(Sampler):
    """Section III-E selection: section blocks drawn by color quota."""

    name: ClassVar[str] = "heatmap"

    distribution: str = "uniform"
    block_width: int = 32
    block_height: int = 2

    def design(
        self,
        quantized,
        pixels: list[Pixel],
        fraction: float,
        seed: int,
    ) -> SampleDesign:
        selected = select_pixels(
            quantized,
            pixels,
            fraction,
            distribution=self.distribution,
            block_width=self.block_width,
            block_height=self.block_height,
            seed=seed,
        )
        return SampleDesign(
            replicates=(frozenset(selected),),
            fractions=(fraction,),
            sampler=self.name,
            params=self.params(),
            seed=seed,
        )

    def params(self) -> dict[str, Any]:
        return {
            "distribution": self.distribution,
            "block_width": self.block_width,
            "block_height": self.block_height,
        }
