"""Pluggable pixel-selection samplers (the Zatel step-5 design space).

:data:`SAMPLER_NAMES` is the registry surfaced by ``predict --sampler``,
:class:`~repro.core.stages.requests.PredictSpec` validation, and the
sweep grids; :func:`make_sampler` builds the configured sampler from a
:class:`~repro.core.pipeline.ZatelConfig`.
"""

from __future__ import annotations

from .base import Pixel, SampleDesign, Sampler, replicate_mean_and_variance
from .heatmap_kmeans import HeatmapKMeansSampler
from .ranked_set import RankedSetSampler
from .two_phase import TwoPhaseStratifiedSampler

__all__ = [
    "Pixel",
    "SAMPLER_NAMES",
    "SampleDesign",
    "Sampler",
    "HeatmapKMeansSampler",
    "RankedSetSampler",
    "TwoPhaseStratifiedSampler",
    "make_sampler",
    "replicate_mean_and_variance",
]

#: Registry order is the CLI/docs presentation order; "heatmap" is the
#: paper's method and the default everywhere.
SAMPLER_NAMES = ("heatmap", "ranked_set", "two_phase")


def make_sampler(config) -> Sampler:
    """The sampler a :class:`~repro.core.pipeline.ZatelConfig` describes.

    Raises:
        ValueError: for an unknown ``config.sampler`` name.
    """
    if config.sampler == "heatmap":
        return HeatmapKMeansSampler(
            distribution=config.distribution,
            block_width=config.block_width,
            block_height=config.block_height,
        )
    if config.sampler == "ranked_set":
        return RankedSetSampler(
            replicates=config.replicates,
            block_width=config.block_width,
            block_height=config.block_height,
        )
    if config.sampler == "two_phase":
        return TwoPhaseStratifiedSampler(
            replicates=config.replicates,
            block_width=config.block_width,
            block_height=config.block_height,
        )
    raise ValueError(
        f"unknown sampler {config.sampler!r}; use one of {SAMPLER_NAMES}"
    )
