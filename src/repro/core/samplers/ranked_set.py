"""Ranked set sampling with repeated subsampling.

After Ekman, "CPU Simulation with Ranked Set Sampling and Repeated
Subsampling" (PAPERS.md), transplanted from simulation regions to
section blocks: the cheap *ranking proxy* is each block's mean heatmap
temperature — available for every block without simulating anything —
and the expensive measurement is the block's cycle-level simulation.

One RSS draw of ``n`` blocks: ``n`` times, sample a set of ``set_size``
candidate blocks, rank the set by proxy temperature, and keep the
ranked element whose rank position cycles ``1..set_size``.  The draw
covers the proxy distribution far more evenly than simple random
sampling, which is exactly what the temperature-quota distributions of
the paper approximate by histogram.

Repeated subsampling: ``replicates`` independent full-budget RSS draws.
Each replicate is simulated and extrapolated separately; the spread of
the replicate estimates is the sampler's variance estimate (see
:func:`~.base.replicate_mean_and_variance`).  Replicates deliberately do
*not* split the budget between them — extrapolating from a fraction of
the fraction amplifies the saturation bias Section IV-D documents, which
no variance estimate can see.  The R-fold simulation cost is charged
honestly through ``work_units``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, ClassVar

from ..selection import make_section_blocks
from .base import Pixel, SampleDesign, Sampler

__all__ = ["RankedSetSampler", "block_temperatures"]


def block_temperatures(blocks, quantized) -> list[float]:
    """Mean raw-heatmap temperature per section block (the RSS proxy)."""
    temperatures = quantized.heatmap.temperatures
    proxies: list[float] = []
    for block in blocks:
        total = 0.0
        for px, py in block.pixels:
            total += float(temperatures[py, px])
        proxies.append(total / len(block.pixels))
    return proxies


@dataclass(frozen=True)
class RankedSetSampler(Sampler):
    """RSS over section blocks, with R repeated subsamples."""

    name: ClassVar[str] = "ranked_set"

    replicates: int = 5
    set_size: int = 3
    block_width: int = 32
    block_height: int = 2

    def __post_init__(self) -> None:
        if self.replicates < 2:
            raise ValueError("ranked set sampling needs >= 2 replicates")
        if self.set_size < 2:
            raise ValueError("RSS set size must be >= 2")

    def design(
        self,
        quantized,
        pixels: list[Pixel],
        fraction: float,
        seed: int,
    ) -> SampleDesign:
        if not pixels:
            raise ValueError("cannot design a sample for an empty group")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"traced fraction must be in (0, 1], got {fraction}")
        blocks = make_section_blocks(
            pixels, quantized, self.block_width, self.block_height
        )
        proxies = block_temperatures(blocks, quantized)
        block_size = self.block_width * self.block_height
        budget = max(1, round(fraction * len(pixels) / block_size))

        rng = random.Random(seed)
        subsets: list[frozenset[Pixel]] = []
        fractions: list[float] = []
        for r in range(self.replicates):
            chosen = self._rss_draw(
                rng, blocks, proxies, min(budget, len(blocks)), offset=r
            )
            subset = frozenset(p for index in chosen for p in blocks[index].pixels)
            subsets.append(subset)
            fractions.append(len(subset) / len(pixels))
        return SampleDesign(
            replicates=tuple(subsets),
            fractions=tuple(fractions),
            sampler=self.name,
            params=self.params(),
            seed=seed,
        )

    def _rss_draw(
        self,
        rng: random.Random,
        blocks,
        proxies: list[float],
        n: int,
        offset: int = 0,
    ) -> list[int]:
        """One RSS draw of ``n`` distinct block indices.

        ``offset`` rotates which rank position the first kept element
        takes.  Replicates pass their index here so that a draw of one
        block (small groups) still cycles through the proxy ranks across
        replicates instead of degenerating to the same rank — and hence,
        on tiny block pools, the same block — every time.
        """
        pool = list(range(len(blocks)))
        chosen: list[int] = []
        for i in range(n):
            set_size = min(self.set_size, len(pool))
            candidates = rng.sample(pool, set_size)
            # Deterministic ranking: proxy temperature, index tie-break.
            candidates.sort(key=lambda index: (proxies[index], index))
            pick = candidates[(i + offset) % set_size]
            chosen.append(pick)
            pool.remove(pick)
        return chosen

    def params(self) -> dict[str, Any]:
        return {
            "replicates": self.replicates,
            "set_size": self.set_size,
            "block_width": self.block_width,
            "block_height": self.block_height,
        }
