"""Representative-pixel selection (Zatel step 5, Section III-E).

Two decisions per group:

1. **How many pixels** — equation (1): the traced fraction ``P`` is the
   group's mean quantized *coolness*, clamped to [0.3, 0.6] (colder groups
   under-saturate the GPU, so more of them must be traced to compensate).
2. **Which pixels** — the group is carved into *section blocks* (32x2 by
   default: 32 to map onto a warp, 2 to balance locality against
   divergence), each block is labelled with its dominant quantized color,
   and blocks are drawn until each color's quota is met.  Quotas follow one
   of three distributions:

   * ``uniform`` — match the group's own color histogram;
   * ``lintmp``  — weight colors by warmth ``c'_j`` (equation (2));
   * ``exptmp``  — weight colors by ``c'_j ** 5`` (equation (3)), stressing
     the hottest regions hardest.

   If a color runs out of blocks, the shortfall is filled with random
   leftover blocks, as the paper specifies.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .quantize import QuantizedHeatmap

__all__ = [
    "DISTRIBUTIONS",
    "SectionBlock",
    "compute_fraction",
    "make_section_blocks",
    "color_quotas",
    "select_pixels",
]

Pixel = tuple[int, int]

#: The three block-selection distributions of Section III-E.
DISTRIBUTIONS = ("uniform", "lintmp", "exptmp")

#: Equation (1)'s clamp bounds: "tracing less than 30% of pixels gives
#: intolerable error and more than 60% doesn't provide dramatic
#: improvements in accuracy".
MIN_FRACTION = 0.3
MAX_FRACTION = 0.6


@dataclass(frozen=True)
class SectionBlock:
    """A contiguous run of a group's pixels considered for selection.

    ``dominant_color`` is the quantized color covering the most of the
    block's pixels — the label quota accounting is done per block.
    """

    index: int
    pixels: tuple[Pixel, ...]
    dominant_color: int


def compute_fraction(
    quantized: QuantizedHeatmap,
    pixels: list[Pixel],
    min_fraction: float = MIN_FRACTION,
    max_fraction: float = MAX_FRACTION,
) -> float:
    """Equation (1): traced fraction = mean coolness, clamped.

    Args:
        quantized: the scene's quantized heatmap.
        pixels: the group's pixels.
        min_fraction / max_fraction: clamp bounds (0.3 / 0.6 per paper).

    Raises:
        ValueError: for an empty group.
    """
    if not pixels:
        raise ValueError("cannot compute a traced fraction for an empty group")
    labels = quantized.labels
    coolness = quantized.coolness
    total = 0.0
    for px, py in pixels:
        total += coolness[labels[py, px]]
    fraction = total / len(pixels)
    return min(max_fraction, max(min_fraction, fraction))


def make_section_blocks(
    pixels: list[Pixel],
    quantized: QuantizedHeatmap,
    block_width: int = 32,
    block_height: int = 2,
) -> list[SectionBlock]:
    """Carve a group's pixel list into section blocks (Fig. 8).

    The group's pixels arrive in chunk-row-major order (see
    :mod:`repro.core.partition`), so a block is simply the next
    ``block_width * block_height`` pixels.  For fine-grained groups with
    matching chunk geometry the blocks coincide with the chunks, exactly as
    Section III-E observes ("the fine-grained method already divides the
    scene into chunks").
    """
    if block_width <= 0 or block_height <= 0:
        raise ValueError("block dimensions must be positive")
    block_size = block_width * block_height
    labels = quantized.labels
    blocks: list[SectionBlock] = []
    for index, base in enumerate(range(0, len(pixels), block_size)):
        chunk = tuple(pixels[base : base + block_size])
        votes: dict[int, int] = defaultdict(int)
        for px, py in chunk:
            votes[int(labels[py, px])] += 1
        dominant = max(votes, key=lambda color: votes[color])
        blocks.append(SectionBlock(index=index, pixels=chunk, dominant_color=dominant))
    return blocks


def color_quotas(
    quantized: QuantizedHeatmap,
    pixels: list[Pixel],
    distribution: str,
) -> np.ndarray:
    """Per-color selection shares ``p_j`` summing to 1 (equations (2)-(3)).

    ``uniform`` matches the group's own histogram; the temperature-based
    distributions weight each color's share by its warmth ``c'_j`` (raised
    to the 5th power for ``exptmp``), which emphasizes "the pixels that
    take longer to trace, stressing the hardware components better".
    """
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; use one of {DISTRIBUTIONS}"
        )
    if not pixels:
        raise ValueError("cannot compute color quotas for an empty group")
    histogram = quantized.color_histogram(pixels).astype(np.float64)
    if distribution == "uniform":
        weights = histogram
    else:
        power = 1 if distribution == "lintmp" else 5
        warmth = quantized.warmth() ** power
        weights = histogram * warmth
    total = float(weights.sum())
    if total <= 0.0:
        # Degenerate (e.g. everything ice-cold): fall back to uniform.
        weights = histogram
        total = float(weights.sum())
    if total <= 0.0:  # unreachable for non-empty groups; guard anyway
        raise ValueError("color histogram is empty; cannot form quotas")
    return weights / total


def select_pixels(
    quantized: QuantizedHeatmap,
    pixels: list[Pixel],
    fraction: float,
    distribution: str = "uniform",
    block_width: int = 32,
    block_height: int = 2,
    seed: int = 0,
) -> set[Pixel]:
    """Choose the representative pixel subset of one group (Zatel step 5).

    Blocks of each color are drawn (in seeded-random order, since "selecting
    blocks out of viable options is random") until that color's quota is
    met; any shortfall is topped up from random leftover blocks.

    Returns the selected pixel set (a multiple of the block size, bounded
    by the group size).  Two budget invariants hold for any quota
    distribution, including degenerate ones (zero-weight sections, quota
    mass on colors that dominate no block):

    * never more than one block *over* the requested budget
      (``len(selected) < fraction * len(pixels) + block size``);
    * never *under* it while unselected blocks remain
      (``len(selected) >= min(fraction * len(pixels), len(pixels))``).

    Raises:
        ValueError: for an empty group or a fraction outside (0, 1].
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"traced fraction must be in (0, 1], got {fraction}")
    if not pixels:
        raise ValueError("cannot select pixels for an empty group")
    blocks = make_section_blocks(pixels, quantized, block_width, block_height)
    quotas = color_quotas(quantized, pixels, distribution)
    target_pixels = fraction * len(pixels)

    rng = random.Random(seed)
    by_color: dict[int, list[SectionBlock]] = defaultdict(list)
    for block in blocks:
        by_color[block.dominant_color].append(block)
    for members in by_color.values():
        rng.shuffle(members)

    selected: set[Pixel] = set()
    leftovers: list[SectionBlock] = []
    for color, members in by_color.items():
        color_target = quotas[color] * target_pixels
        taken = 0.0
        for i, block in enumerate(members):
            if taken >= color_target or len(selected) >= target_pixels:
                leftovers.extend(members[i:])
                break
            selected.update(block.pixels)
            taken += len(block.pixels)
        else:
            continue

    # Top up with random leftover blocks ("if there are not enough pixels
    # with the desired color, we randomly choose other section blocks").
    rng.shuffle(leftovers)
    for block in leftovers:
        if len(selected) >= target_pixels:
            break
        selected.update(block.pixels)
    return selected
