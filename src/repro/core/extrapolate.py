"""Extrapolating per-group predictions (Zatel step 6, Sections III-G, IV-F).

Zatel's default is **linear extrapolation**: absolute metrics (simulation
cycles) are divided by the traced fraction ("after tracing 10% of pixels
... 100,000 / 0.1 = 1,000,000 simulation cycles"); rate metrics (miss
rates, efficiencies) and the self-normalizing IPC pass through unchanged.

Section IV-F evaluates an **exponential regression** alternative: simulate
the group at three fractions, fit a saturating exponential per metric and
read it out at 100%.  The paper finds it is *not* clearly better — a result
benchmarks/bench_fig20_regression.py reproduces.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
from scipy.optimize import OptimizeWarning, curve_fit

from ..gpu.stats import EXTENDED_METRICS, METRICS, SimulationStats
from ..gpu.telemetry import KIND_ABSOLUTE, METRIC_REGISTRY

__all__ = [
    "linear_extrapolate",
    "exponential_regression",
    "fit_power_law",
    "power_law",
]


def linear_extrapolate(stats: SimulationStats, fraction: float) -> dict[str, float]:
    """Scale one group's metrics from ``fraction`` of pixels to 100%.

    ``ABSOLUTE`` metrics divide by the fraction; ``RATE`` and
    ``THROUGHPUT`` metrics pass through (IPC's numerator and denominator
    scale together, which is precisely why it inherits the paper's
    systematic under-estimation when cycles do not shrink linearly).

    Raises:
        ValueError: for a fraction outside (0, 1].
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"traced fraction must be in (0, 1], got {fraction}")
    predicted: dict[str, float] = {}
    for name in METRICS + EXTENDED_METRICS:
        value = stats.metric(name)
        if METRIC_REGISTRY[name].kind == KIND_ABSOLUTE:
            value = value / fraction
        predicted[name] = value
    return predicted


def _saturating_exponential(x: np.ndarray, a: float, b: float, c: float) -> np.ndarray:
    """Model ``y = a + b * exp(-c * x)``: error decays as more is traced."""
    return a + b * np.exp(-c * x)


def exponential_regression(
    samples: list[tuple[float, dict[str, float]]],
) -> dict[str, float]:
    """Fit per-metric exponentials over (fraction, metrics) samples.

    ``samples`` holds the *linearly extrapolated* metrics at each simulated
    fraction (the paper feeds three runs at 20/30/40%).  Each metric is fit
    with ``y = a + b * exp(-c * frac)`` and evaluated at ``frac = 1``.
    Falls back to the largest-fraction sample when the fit fails (e.g.
    degenerate/collinear points), mirroring how a practitioner would
    degrade gracefully.

    Raises:
        ValueError: with fewer than three samples (the model has three
            parameters).
    """
    if len(samples) < 3:
        raise ValueError("exponential regression needs at least three samples")
    fractions = np.array([f for f, _ in samples], dtype=np.float64)
    fallback = max(samples, key=lambda s: s[0])[1]
    predicted: dict[str, float] = {}
    # Tolerate Table-I-only sample dicts; extended metrics are fit only
    # when every sample carries them.
    names = [
        name
        for name in METRICS + EXTENDED_METRICS
        if all(name in metrics for _, metrics in samples)
    ]
    for name in names:
        y = np.array([m[name] for _, m in samples], dtype=np.float64)
        try:
            with warnings.catch_warnings():
                # Three points determine three parameters exactly, so the
                # covariance is undefined; that is expected, not a failure.
                warnings.simplefilter("ignore", OptimizeWarning)
                params, _ = curve_fit(
                    _saturating_exponential,
                    fractions,
                    y,
                    p0=(float(y[-1]), float(y[0] - y[-1]), 1.0),
                    maxfev=5000,
                )
            value = float(_saturating_exponential(np.array([1.0]), *params)[0])
        except (RuntimeError, TypeError):
            value = float(fallback[name])
        if not math.isfinite(value):
            value = float(fallback[name])
        predicted[name] = value
    return predicted


def power_law(perc: np.ndarray, a: float, b: float) -> np.ndarray:
    """The paper's speedup model shape: ``speedup = a * perc ** b``."""
    return a * np.power(perc, b)


def fit_power_law(
    percentages: np.ndarray, speedups: np.ndarray
) -> tuple[float, float]:
    """Fit equation (4)'s power law by log-log least squares.

    The paper derives ``speedup(perc) = 181 * perc**-1.15`` from its
    measurements; this fits the same two-parameter model to ours so the
    benchmark can report both curves side by side.

    Raises:
        ValueError: for fewer than two points or non-positive data.
    """
    percentages = np.asarray(percentages, dtype=np.float64)
    speedups = np.asarray(speedups, dtype=np.float64)
    if percentages.size < 2:
        raise ValueError("power-law fit needs at least two points")
    if np.any(percentages <= 0) or np.any(speedups <= 0):
        raise ValueError("power-law fit needs positive percentages and speedups")
    slope, intercept = np.polyfit(np.log(percentages), np.log(speedups), 1)
    return float(np.exp(intercept)), float(slope)
