"""GPU downscaling (Zatel step 3, Section III-C).

Thin policy layer over :meth:`repro.gpu.config.GPUConfig.downscale`: Zatel
picks ``K = gcd(#SMs, #memory partitions)`` and divides both counts by it;
every shared resource expressed per-partition (L2 slice, DRAM channel) or
per-SM (L1D, RT unit) shrinks automatically.
"""

from __future__ import annotations

from ..gpu.config import GPUConfig

__all__ = ["choose_downscale_factor", "downscale_gpu", "valid_factors"]


def choose_downscale_factor(config: GPUConfig) -> int:
    """The paper's K: gcd of SM count and memory partition count.

    Mobile SoC (8 SMs, 4 partitions) -> 4; RTX 2060 (30, 12) -> 6.
    """
    return config.downscale_factor()


def valid_factors(config: GPUConfig) -> list[int]:
    """All K that evenly divide both component counts, ascending.

    These are the factors the paper sweeps in Section IV-E (2..6 where
    applicable); 1 (no downscaling) is included first.
    """
    gcd = config.downscale_factor()
    return [k for k in range(1, gcd + 1) if gcd % k == 0]


def downscale_gpu(config: GPUConfig, k: int | None = None) -> tuple[GPUConfig, int]:
    """Downscale ``config`` by ``k`` (default: the gcd factor).

    Returns the scaled configuration together with the factor used.
    """
    factor = choose_downscale_factor(config) if k is None else k
    return config.downscale(factor), factor
