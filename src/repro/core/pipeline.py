"""The Zatel prediction pipeline (the seven steps of Fig. 3).

::

    (1) profile   -> execution-time heatmap
    (2) quantize  -> K-Means color quantization
    (3) downscale -> GPU config divided by K = gcd(SMs, memory partitions)
    (4) divide    -> K image-plane groups (fine- or coarse-grained)
    (5) select    -> representative pixel subset per group (eq. 1-3)
    (6) simulate  -> one downscaled cycle-simulation instance per group,
                     non-selected pixels filtered via filter_shader
    (7) combine   -> extrapolate per group, then sum/average across groups

Usage::

    frame = trace_frame(scene, RenderSettings(width=128, height=128))
    result = Zatel(MOBILE_SOC).predict(scene, frame)
    print(result.metrics["cycles"])
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field

from ..errors import DegradedResultError, FailureRecord
from ..gpu.config import GPUConfig
from ..gpu.frontend import compile_kernel
from ..gpu.simulator import CycleSimulator
from ..gpu.stats import SimulationStats
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace
from .executor import ExecutionPolicy
from .extrapolate import exponential_regression, linear_extrapolate
from .heatmap import Heatmap
from .quantize import QuantizedHeatmap
from .samplers import SAMPLER_NAMES, make_sampler, replicate_mean_and_variance
from .selection import (
    MAX_FRACTION,
    MIN_FRACTION,
    compute_fraction,
    select_pixels,
)
from .stages.base import StageContext, StageGraph, StageNode, source
from .stages.concrete import (
    CombineStage,
    DownscaleStage,
    PartitionStage,
    ProfileStage,
    QuantizeStage,
    SelectStage,
    SimulateGroupStage,
)
from .stages.fingerprint import (
    frame_fingerprint,
    gpu_fingerprint,
    scene_fingerprint,
)
from .stages.store import ArtifactStore

__all__ = [
    "ZatelConfig",
    "GroupPrediction",
    "SubsetEstimate",
    "ZatelResult",
    "Zatel",
]


@dataclass(frozen=True)
class ZatelConfig:
    """Tunable knobs of the Zatel methodology.

    Defaults are the paper's final choices (Section IV-C): fine-grained
    division, uniform distribution, 32x2 section blocks, linear
    extrapolation, traced fraction from equation (1) clamped to
    [0.3, 0.6].
    """

    division: str = "fine"
    distribution: str = "uniform"
    quantize_colors: int = 8
    block_width: int = 32
    block_height: int = 2
    min_fraction: float = MIN_FRACTION
    max_fraction: float = MAX_FRACTION
    #: Force the traced fraction (bypasses equation (1)) — e.g. the paper's
    #: "trace only up to 10% of pixels" PARK experiment.
    fraction_override: float | None = None
    #: ``"linear"`` (default) or ``"regression"`` (Section IV-F).
    extrapolation: str = "linear"
    #: Fractions simulated per group when ``extrapolation="regression"``.
    regression_fractions: tuple[float, ...] = (0.2, 0.3, 0.4)
    #: Downscale factor; ``None`` uses the gcd rule.
    downscale_factor: int | None = None
    #: Heatmap construction knobs (DESIGN.md §5): normalization percentile
    #: and SIMT warp-flattening width (0 disables flattening).
    heatmap_percentile: float = 99.5
    heatmap_warp_width: int = 32
    seed: int = 0
    #: Pixel-selection engine: ``"heatmap"`` (the paper's K-Means quota
    #: method, point predictions), ``"ranked_set"`` or ``"two_phase"``
    #: (replicate-based samplers with variance estimates — see
    #: :mod:`repro.core.samplers`).
    sampler: str = "heatmap"
    #: Independent replicate subsets drawn by the variance-estimating
    #: samplers; ignored by ``"heatmap"`` (always one replicate).
    replicates: int = 5

    def __post_init__(self) -> None:
        if self.division not in ("fine", "coarse"):
            raise ValueError(f"unknown division method {self.division!r}")
        if self.extrapolation not in ("linear", "regression"):
            raise ValueError(f"unknown extrapolation {self.extrapolation!r}")
        if self.fraction_override is not None and not (
            0.0 < self.fraction_override <= 1.0
        ):
            raise ValueError("fraction_override must be in (0, 1]")
        if self.sampler not in SAMPLER_NAMES:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; use one of {SAMPLER_NAMES}"
            )
        if self.replicates < 2:
            raise ValueError("replicates must be >= 2")


@dataclass
class GroupPrediction:
    """One group's simulation outcome and extrapolated metrics."""

    index: int
    pixel_count: int
    fraction: float
    selected_count: int
    stats: SimulationStats
    metrics: dict[str, float]
    #: Work done by this group's simulation instance(s); regression mode
    #: accumulates all three runs, replicate samplers all R draws.
    work_units: int
    #: Variance of each metric's replicate-mean estimate (``None`` for
    #: single-replicate point predictions and regression mode).
    variances: dict[str, float] | None = None
    #: Independent replicate subsets behind ``metrics``; the variance's
    #: degrees of freedom are ``replicates - 1``.
    replicates: int = 1


@dataclass
class SubsetEstimate:
    """Steps 5-6 for one group at one nominal fraction.

    The sampler's :class:`~repro.core.samplers.SampleDesign` replicates
    are each simulated and extrapolated separately; ``metrics`` is the
    replicate mean and ``variances`` the variance *of that mean* (``None``
    when the design has a single replicate).
    """

    metrics: dict[str, float]
    variances: dict[str, float] | None
    stats: SimulationStats
    fraction: float
    selected_count: int
    work_units: int
    replicates: int


@dataclass
class ZatelResult:
    """Zatel's final prediction plus everything needed to audit it.

    ``degraded``/``failures`` report fault-tolerant runs honestly: when
    a group fails permanently the combined metrics are renormalized over
    the survivors (see :func:`~repro.core.combine.combine_degraded_metrics`)
    and every lost group is audited as a
    :class:`~repro.errors.FailureRecord`.
    """

    metrics: dict[str, float]
    groups: list[GroupPrediction]
    downscale_factor: int
    gpu_name: str
    scaled_gpu_name: str
    heatmap: Heatmap
    quantized: QuantizedHeatmap
    host_seconds: float = 0.0
    degraded: bool = False
    failures: list[FailureRecord] = field(default_factory=list)
    #: Variance of each combined metric, aggregated across groups with the
    #: same :data:`~repro.harness.metrics.METRIC_SPECS`-driven rules as the
    #: metrics themselves (empty for point predictions).
    variances: dict[str, float] = field(default_factory=dict)
    #: Sampler provenance: ``{"name", "params", "seed"}`` of the engine
    #: that chose the pixels (see :meth:`~repro.core.samplers.Sampler.
    #: provenance`).
    sampler: dict = field(default_factory=dict)
    #: Cycle-simulator backend the group simulations ran on ("serial" =
    #: the exact event loop, "sharded" = epoch-synchronized parallel
    #: shards with bounded timing drift).  Provenance for audits; note
    #: that configs whose SM/partition counts are coprime (all downscaled
    #: predict GPUs) degenerate to one shard and are byte-identical to
    #: serial either way.
    sim_backend: str = "serial"
    #: ``workers > 1`` was requested but the platform has no ``fork``
    #: start method, so the group simulations ran serially in-process.
    #: Metrics are unaffected (groups are independent); only wall-clock
    #: parallelism was lost.  Set by the driver from the stage context's
    #: execution notes — like ``host_seconds``, it describes this run,
    #: not the cached artifact.
    serial_fallback: bool = False
    _extra: dict = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of the image plane covered by surviving groups."""
        covered = sum(g.pixel_count for g in self.groups)
        lost = sum(f.pixel_count for f in self.failures)
        total = covered + lost
        return covered / total if total else 0.0

    @property
    def total_work_units(self) -> int:
        """Work summed over groups (serial execution cost)."""
        return sum(g.work_units for g in self.groups)

    @property
    def max_group_work_units(self) -> int:
        """Slowest group's work — the cost when groups run in parallel on
        separate CPU cores, which is how the paper deploys Zatel."""
        if not self.groups:
            raise DegradedResultError(
                "no surviving groups: work accounting is undefined "
                f"({len(self.failures)} group(s) failed)"
            )
        return max(g.work_units for g in self.groups)

    def speedup_vs(self, full: SimulationStats, parallel: bool = True) -> float:
        """Simulation-time speedup over a full run (work-unit based).

        ``parallel=True`` assumes the K group instances run concurrently
        (paper's deployment); ``False`` charges their serial sum.
        """
        cost = self.max_group_work_units if parallel else self.total_work_units
        if cost <= 0:
            return float("inf")
        return full.work_units / cost

    def mean_fraction(self) -> float:
        """Average traced fraction across groups."""
        if not self.groups:
            raise DegradedResultError(
                "no surviving groups: mean fraction is undefined "
                f"({len(self.failures)} group(s) failed)"
            )
        return sum(g.fraction for g in self.groups) / len(self.groups)

    @property
    def dof(self) -> int:
        """Degrees of freedom pooled across groups (Σ replicates-1)."""
        return sum(max(0, g.replicates - 1) for g in self.groups)

    def confidence_intervals(
        self, level: float = 0.95
    ) -> dict[str, tuple[float, float]]:
        """Two-sided Student-t intervals for every metric with a variance.

        Empty for point predictions (the default ``heatmap`` sampler draws
        one replicate, so there is no spread to pool).  The t critical
        value uses the replicate degrees of freedom pooled over groups.
        """
        if not 0.0 < level < 1.0:
            raise ValueError(f"confidence level must be in (0, 1), got {level}")
        if not self.variances or self.dof <= 0:
            return {}
        from scipy.stats import t as student_t

        critical = float(student_t.ppf(0.5 + level / 2.0, self.dof))
        intervals: dict[str, tuple[float, float]] = {}
        for name, variance in self.variances.items():
            if name not in self.metrics:
                continue
            center = self.metrics[name]
            half_width = critical * math.sqrt(max(0.0, variance))
            intervals[name] = (center - half_width, center + half_width)
        return intervals


class Zatel:
    """The Zatel predictor for one GPU configuration.

    Args:
        gpu_config: the *target* (full-size) GPU to predict for.
        config: methodology knobs; defaults are the paper's final tuning.
    """

    def __init__(self, gpu_config: GPUConfig, config: ZatelConfig | None = None) -> None:
        self.gpu_config = gpu_config
        self.config = config if config is not None else ZatelConfig()
        #: The pluggable pixel-selection engine (frozen, picklable — fleet
        #: workers receive it inside the predictor bundle).
        self.sampler = make_sampler(self.config)

    def sampler_provenance(self) -> dict:
        """``{"name", "params", "seed"}`` describing the selection engine;
        surfaced in :attr:`ZatelResult.sampler`, ``predict --json``, and
        the service payload."""
        return self.sampler.provenance(self.config.seed)

    def predict(
        self,
        scene: Scene,
        frame: FrameTrace,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
        fault_plan=None,
        store: ArtifactStore | None = None,
    ) -> ZatelResult:
        """Run the full pipeline against a profiled frame.

        ``frame`` must cover the whole image plane: its per-pixel costs are
        the profiling input (steps 1-2) and its traces are the workload the
        group simulations replay (step 6).

        ``workers`` runs the K group simulations on separate CPU cores —
        the paper's actual deployment ("simulating each group
        simultaneously on different CPU cores").  Requires a platform with
        ``fork`` (falls back to serial elsewhere); results are identical
        either way since groups are independent.

        ``policy`` configures the fault-tolerant execution engine
        (timeouts, retries, checkpoint/resume, quorum); ``workers`` is a
        shorthand that overrides ``policy.workers`` when both are given.
        ``fault_plan`` injects deterministic faults for testing (see
        :mod:`repro.testing.faults`).

        When groups fail permanently despite retries, the result is
        *degraded*: combined metrics are renormalized over survivors and
        ``result.degraded``/``result.failures`` report what was lost.  If
        fewer than the quorum survive (default ``ceil(K/2)``), a
        :class:`~repro.errors.DegradedResultError` is raised instead of
        returning silently wrong numbers.

        ``store`` is an optional :class:`~repro.core.stages.store.
        ArtifactStore`: when given, every stage output (heatmap,
        quantization, group simulations) is memoized by its content
        fingerprint, so repeated or overlapping predictions reuse shared
        work.  Without one, an ephemeral in-memory store is used and the
        call behaves exactly like the historical monolithic pipeline.

        Returns the combined prediction; compare against a full
        :class:`~repro.gpu.simulator.CycleSimulator` run of the same frame
        to measure error.
        """
        start_time = time.perf_counter()
        if policy is None:
            policy = ExecutionPolicy(workers=workers if workers else 1)
        elif workers is not None and workers != policy.workers:
            policy = dataclasses.replace(policy, workers=workers)
        ctx = StageContext(
            store=store if store is not None else ArtifactStore(),
            policy=policy,
            fault_plan=fault_plan,
        )
        graph, terminal = self.build_graph(scene, frame, quorum=policy.quorum)
        result: ZatelResult = graph.resolve(terminal, ctx).value
        result.host_seconds = time.perf_counter() - start_time
        result.serial_fallback = bool(
            ctx.execution_notes.get("serial_fallback", False)
        )
        return result

    # ------------------------------------------------------------------

    def build_graph(
        self,
        scene: Scene,
        frame: FrameTrace,
        quorum: int | None = None,
    ) -> tuple[StageGraph, StageNode]:
        """The seven-step pipeline as a typed stage graph.

        Returns the graph and its terminal (:class:`~repro.core.stages.
        concrete.CombineStage`) node, whose resolved artifact is the
        :class:`ZatelResult`.  Exposed so the sweep planner can merge
        many predictions' graphs and deduplicate shared nodes by
        fingerprint.
        """
        cfg = self.config
        graph = StageGraph()
        frame_src = source("frame", frame, key=frame_fingerprint(frame))
        scene_src = source("scene", scene, key=scene_fingerprint(scene))
        gpu_src = source(
            "gpu", self.gpu_config, key=gpu_fingerprint(self.gpu_config)
        )
        heatmap = graph.add(
            ProfileStage(cfg.heatmap_percentile, cfg.heatmap_warp_width),
            frame=frame_src,
        )
        quantized = graph.add(
            QuantizeStage(cfg.quantize_colors, cfg.seed), heatmap=heatmap
        )
        scaled = graph.add(DownscaleStage(cfg.downscale_factor), gpu=gpu_src)
        groups = graph.add(
            PartitionStage(cfg.division, cfg.block_width, cfg.block_height),
            frame=frame_src,
            scaled=scaled,
        )
        fractions = graph.add(
            SelectStage(
                cfg.min_fraction,
                cfg.max_fraction,
                cfg.fraction_override,
                sampler_identity=self.sampler.fingerprint_params(),
            ),
            quantized=quantized,
            groups=groups,
        )
        simulated = graph.add(
            SimulateGroupStage(self),
            frame=frame_src,
            quantized=quantized,
            groups=groups,
            scaled=scaled,
            fractions=fractions,
            scene=scene_src,
        )
        combined = graph.add(
            CombineStage(quorum, sampler_provenance=self.sampler_provenance()),
            simulated=simulated,
            groups=groups,
            scaled=scaled,
            heatmap=heatmap,
            quantized=quantized,
            gpu=gpu_src,
        )
        return graph, combined

    def _resolve_policy(self, policy: ExecutionPolicy | None) -> ExecutionPolicy:
        """The policy a simulate stage should run under (default: serial)."""
        return policy if policy is not None else ExecutionPolicy()

    def _simulate_params(self):
        """Methodology knobs that determine group-simulation *content*.

        This is :class:`~repro.core.stages.concrete.SimulateGroupStage`'s
        fingerprint contribution: everything that changes what the group
        simulations compute (selection seeds/distribution, extrapolation
        mode), plus the predictor class so subclasses with different
        per-group logic never share artifacts.  Execution-policy knobs
        are deliberately absent.
        """
        cfg = self.config
        return (
            type(self).__module__ + "." + type(self).__qualname__,
            cfg.distribution,
            cfg.block_width,
            cfg.block_height,
            cfg.seed,
            cfg.extrapolation,
            cfg.regression_fractions,
            cfg.min_fraction,
            cfg.max_fraction,
            cfg.fraction_override,
            ("sampler",) + self.sampler.fingerprint_params(),
        )

    def _group_fraction(
        self, quantized: QuantizedHeatmap, pixels: list[tuple[int, int]]
    ) -> float:
        """Equation (1), unless the caller pinned the fraction."""
        cfg = self.config
        if cfg.fraction_override is not None:
            return cfg.fraction_override
        return compute_fraction(
            quantized, pixels, cfg.min_fraction, cfg.max_fraction
        )

    def _predict_group(
        self,
        index: int,
        pixels: list[tuple[int, int]],
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
        fraction: float | None = None,
    ) -> GroupPrediction:
        """Steps 5-6 for one group, plus its extrapolation.

        ``fraction`` is the group's traced fraction as planned by the
        select stage; ``None`` recomputes it from equation (1) (identical
        by determinism — the parameter only avoids redundant work).
        """
        cfg = self.config
        if fraction is None:
            fraction = self._group_fraction(quantized, pixels)
        group_seed = cfg.seed * 10007 + index

        if cfg.extrapolation == "linear":
            estimate = self._sample_estimate(
                pixels, fraction, frame, quantized, simulator, scene, group_seed
            )
            return GroupPrediction(
                index=index,
                pixel_count=len(pixels),
                fraction=estimate.fraction,
                selected_count=estimate.selected_count,
                stats=estimate.stats,
                metrics=estimate.metrics,
                work_units=estimate.work_units,
                variances=estimate.variances,
                replicates=estimate.replicates,
            )

        # Regression mode fits a saturation curve through the per-fraction
        # point estimates; the fit is nonlinear, so replicate variances do
        # not propagate through it — regression predictions stay point
        # estimates regardless of sampler.
        samples: list[tuple[float, dict[str, float]]] = []
        work = 0
        estimate = None
        for i, sample_fraction in enumerate(cfg.regression_fractions):
            estimate = self._sample_estimate(
                pixels,
                sample_fraction,
                frame,
                quantized,
                simulator,
                scene,
                group_seed + i,
            )
            samples.append((sample_fraction, estimate.metrics))
            work += estimate.work_units
        assert estimate is not None
        return GroupPrediction(
            index=index,
            pixel_count=len(pixels),
            fraction=max(cfg.regression_fractions),
            selected_count=estimate.selected_count,
            stats=estimate.stats,
            metrics=exponential_regression(samples),
            work_units=work,
        )

    def _sample_estimate(
        self,
        pixels: list[tuple[int, int]],
        fraction: float,
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
        seed: int,
    ) -> SubsetEstimate:
        """Design a sample, simulate every replicate, pool the estimates.

        The single-replicate default sampler reduces exactly to the
        historical select → simulate → ``linear_extrapolate`` path (the
        golden predict metrics pin this byte-for-byte).
        """
        design = self.sampler.design(quantized, pixels, fraction, seed)
        estimates: list[dict[str, float]] = []
        work = 0
        stats: SimulationStats | None = None
        for subset, subset_fraction in zip(design.replicates, design.fractions):
            warps = compile_kernel(
                frame, pixels, _addresses_of(scene), selected=subset
            )
            stats = simulator.run(warps)
            # Provenance: which tracing backend produced the replayed trace
            # (getattr: traces cached before the field existed are "scalar").
            stats.backend = getattr(frame, "backend", "scalar")
            estimates.append(linear_extrapolate(stats, subset_fraction))
            work += stats.work_units
        assert stats is not None
        if design.replicate_count == 1:
            metrics, variances = estimates[0], None
        else:
            metrics, variances = replicate_mean_and_variance(estimates)
        return SubsetEstimate(
            metrics=metrics,
            variances=variances,
            stats=stats,
            fraction=math.fsum(design.fractions) / design.replicate_count,
            selected_count=design.selected_count,
            work_units=work,
            replicates=design.replicate_count,
        )

    def _simulate_subset(
        self,
        pixels: list[tuple[int, int]],
        fraction: float,
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
        seed: int,
    ) -> tuple[SimulationStats, int]:
        """Select a subset and run one downscaled simulation instance.

        The historical single-draw path, still used by the sampling-mode
        stage (:class:`~repro.core.stages.concrete.SamplingSimulateStage`),
        which predates the sampler protocol and always uses the paper's
        selection.
        """
        cfg = self.config
        selected = select_pixels(
            quantized,
            pixels,
            fraction,
            distribution=cfg.distribution,
            block_width=cfg.block_width,
            block_height=cfg.block_height,
            seed=seed,
        )
        warps = compile_kernel(
            frame, pixels, _addresses_of(scene), selected=selected
        )
        stats = simulator.run(warps)
        # Provenance: which tracing backend produced the replayed trace
        # (getattr: traces cached before the field existed are "scalar").
        stats.backend = getattr(frame, "backend", "scalar")
        return stats, len(selected)


def _addresses_of(scene: Scene):
    """Scene address map accessor (kept separate for test doubles)."""
    return scene.addresses
