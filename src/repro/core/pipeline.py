"""The Zatel prediction pipeline (the seven steps of Fig. 3).

::

    (1) profile   -> execution-time heatmap
    (2) quantize  -> K-Means color quantization
    (3) downscale -> GPU config divided by K = gcd(SMs, memory partitions)
    (4) divide    -> K image-plane groups (fine- or coarse-grained)
    (5) select    -> representative pixel subset per group (eq. 1-3)
    (6) simulate  -> one downscaled cycle-simulation instance per group,
                     non-selected pixels filtered via filter_shader
    (7) combine   -> extrapolate per group, then sum/average across groups

Usage::

    frame = trace_frame(scene, RenderSettings(width=128, height=128))
    result = Zatel(MOBILE_SOC).predict(scene, frame)
    print(result.metrics["cycles"])
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from ..errors import DegradedResultError, FailureRecord
from ..gpu.config import GPUConfig
from ..gpu.frontend import compile_kernel
from ..gpu.simulator import CycleSimulator
from ..gpu.stats import SimulationStats
from ..scene.scene import Scene
from ..tracer.trace import FrameTrace
from .combine import combine_degraded_metrics, combine_group_metrics
from .downscale import downscale_gpu
from .executor import ExecutionPolicy, GroupExecutor, default_quorum
from .extrapolate import exponential_regression, linear_extrapolate
from .heatmap import Heatmap
from .partition import partition_plane
from .quantize import QuantizedHeatmap, quantize_heatmap
from .selection import (
    MAX_FRACTION,
    MIN_FRACTION,
    compute_fraction,
    select_pixels,
)

__all__ = ["ZatelConfig", "GroupPrediction", "ZatelResult", "Zatel"]


@dataclass(frozen=True)
class ZatelConfig:
    """Tunable knobs of the Zatel methodology.

    Defaults are the paper's final choices (Section IV-C): fine-grained
    division, uniform distribution, 32x2 section blocks, linear
    extrapolation, traced fraction from equation (1) clamped to
    [0.3, 0.6].
    """

    division: str = "fine"
    distribution: str = "uniform"
    quantize_colors: int = 8
    block_width: int = 32
    block_height: int = 2
    min_fraction: float = MIN_FRACTION
    max_fraction: float = MAX_FRACTION
    #: Force the traced fraction (bypasses equation (1)) — e.g. the paper's
    #: "trace only up to 10% of pixels" PARK experiment.
    fraction_override: float | None = None
    #: ``"linear"`` (default) or ``"regression"`` (Section IV-F).
    extrapolation: str = "linear"
    #: Fractions simulated per group when ``extrapolation="regression"``.
    regression_fractions: tuple[float, ...] = (0.2, 0.3, 0.4)
    #: Downscale factor; ``None`` uses the gcd rule.
    downscale_factor: int | None = None
    #: Heatmap construction knobs (DESIGN.md §5): normalization percentile
    #: and SIMT warp-flattening width (0 disables flattening).
    heatmap_percentile: float = 99.5
    heatmap_warp_width: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.division not in ("fine", "coarse"):
            raise ValueError(f"unknown division method {self.division!r}")
        if self.extrapolation not in ("linear", "regression"):
            raise ValueError(f"unknown extrapolation {self.extrapolation!r}")
        if self.fraction_override is not None and not (
            0.0 < self.fraction_override <= 1.0
        ):
            raise ValueError("fraction_override must be in (0, 1]")


@dataclass
class GroupPrediction:
    """One group's simulation outcome and extrapolated metrics."""

    index: int
    pixel_count: int
    fraction: float
    selected_count: int
    stats: SimulationStats
    metrics: dict[str, float]
    #: Work done by this group's simulation instance(s); regression mode
    #: accumulates all three runs.
    work_units: int


@dataclass
class ZatelResult:
    """Zatel's final prediction plus everything needed to audit it.

    ``degraded``/``failures`` report fault-tolerant runs honestly: when
    a group fails permanently the combined metrics are renormalized over
    the survivors (see :func:`~repro.core.combine.combine_degraded_metrics`)
    and every lost group is audited as a
    :class:`~repro.errors.FailureRecord`.
    """

    metrics: dict[str, float]
    groups: list[GroupPrediction]
    downscale_factor: int
    gpu_name: str
    scaled_gpu_name: str
    heatmap: Heatmap
    quantized: QuantizedHeatmap
    host_seconds: float = 0.0
    degraded: bool = False
    failures: list[FailureRecord] = field(default_factory=list)
    _extra: dict = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of the image plane covered by surviving groups."""
        covered = sum(g.pixel_count for g in self.groups)
        lost = sum(f.pixel_count for f in self.failures)
        total = covered + lost
        return covered / total if total else 0.0

    @property
    def total_work_units(self) -> int:
        """Work summed over groups (serial execution cost)."""
        return sum(g.work_units for g in self.groups)

    @property
    def max_group_work_units(self) -> int:
        """Slowest group's work — the cost when groups run in parallel on
        separate CPU cores, which is how the paper deploys Zatel."""
        if not self.groups:
            raise DegradedResultError(
                "no surviving groups: work accounting is undefined "
                f"({len(self.failures)} group(s) failed)"
            )
        return max(g.work_units for g in self.groups)

    def speedup_vs(self, full: SimulationStats, parallel: bool = True) -> float:
        """Simulation-time speedup over a full run (work-unit based).

        ``parallel=True`` assumes the K group instances run concurrently
        (paper's deployment); ``False`` charges their serial sum.
        """
        cost = self.max_group_work_units if parallel else self.total_work_units
        if cost <= 0:
            return float("inf")
        return full.work_units / cost

    def mean_fraction(self) -> float:
        """Average traced fraction across groups."""
        if not self.groups:
            raise DegradedResultError(
                "no surviving groups: mean fraction is undefined "
                f"({len(self.failures)} group(s) failed)"
            )
        return sum(g.fraction for g in self.groups) / len(self.groups)


class Zatel:
    """The Zatel predictor for one GPU configuration.

    Args:
        gpu_config: the *target* (full-size) GPU to predict for.
        config: methodology knobs; defaults are the paper's final tuning.
    """

    def __init__(self, gpu_config: GPUConfig, config: ZatelConfig | None = None) -> None:
        self.gpu_config = gpu_config
        self.config = config if config is not None else ZatelConfig()

    def predict(
        self,
        scene: Scene,
        frame: FrameTrace,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
        fault_plan=None,
    ) -> ZatelResult:
        """Run the full pipeline against a profiled frame.

        ``frame`` must cover the whole image plane: its per-pixel costs are
        the profiling input (steps 1-2) and its traces are the workload the
        group simulations replay (step 6).

        ``workers`` runs the K group simulations on separate CPU cores —
        the paper's actual deployment ("simulating each group
        simultaneously on different CPU cores").  Requires a platform with
        ``fork`` (falls back to serial elsewhere); results are identical
        either way since groups are independent.

        ``policy`` configures the fault-tolerant execution engine
        (timeouts, retries, checkpoint/resume, quorum); ``workers`` is a
        shorthand that overrides ``policy.workers`` when both are given.
        ``fault_plan`` injects deterministic faults for testing (see
        :mod:`repro.testing.faults`).

        When groups fail permanently despite retries, the result is
        *degraded*: combined metrics are renormalized over survivors and
        ``result.degraded``/``result.failures`` report what was lost.  If
        fewer than the quorum survive (default ``ceil(K/2)``), a
        :class:`~repro.errors.DegradedResultError` is raised instead of
        returning silently wrong numbers.

        Returns the combined prediction; compare against a full
        :class:`~repro.gpu.simulator.CycleSimulator` run of the same frame
        to measure error.
        """
        start_time = time.perf_counter()
        cfg = self.config
        if policy is None:
            policy = ExecutionPolicy(workers=workers if workers else 1)
        elif workers is not None and workers != policy.workers:
            policy = dataclasses.replace(policy, workers=workers)

        # (1) + (2): profile and quantize.
        heatmap = Heatmap.from_frame(
            frame,
            percentile=cfg.heatmap_percentile,
            warp_width=cfg.heatmap_warp_width,
        )
        quantized = quantize_heatmap(heatmap, cfg.quantize_colors, seed=cfg.seed)

        # (3): downscale the GPU.
        scaled_gpu, k = downscale_gpu(self.gpu_config, cfg.downscale_factor)

        # (4): divide the image plane.
        groups = partition_plane(
            frame.width,
            frame.height,
            k,
            method=cfg.division,
            chunk_width=cfg.block_width,
            chunk_height=cfg.block_height,
        )

        # (5)-(7): select, simulate, extrapolate each group, then combine.
        simulator = CycleSimulator(scaled_gpu, _addresses_of(scene))
        predictions, failures = self._run_groups(
            groups, frame, quantized, simulator, scene, policy, fault_plan
        )
        if failures:
            failures = [
                dataclasses.replace(
                    record, pixel_count=len(groups[record.index])
                )
                for record in failures
            ]
            quorum = (
                policy.quorum
                if policy.quorum is not None
                else default_quorum(len(groups))
            )
            if len(predictions) < quorum:
                details = "; ".join(record.describe() for record in failures)
                raise DegradedResultError(
                    f"only {len(predictions)} of {len(groups)} groups "
                    f"survived (quorum {quorum}): {details}"
                )
            total_pixels = sum(len(pixels) for pixels in groups)
            surviving_pixels = sum(p.pixel_count for p in predictions)
            combined = combine_degraded_metrics(
                [g.metrics for g in predictions],
                surviving_pixels / total_pixels,
            )
        else:
            combined = combine_group_metrics([g.metrics for g in predictions])
        return ZatelResult(
            metrics=combined,
            groups=predictions,
            downscale_factor=k,
            gpu_name=self.gpu_config.name,
            scaled_gpu_name=scaled_gpu.name,
            heatmap=heatmap,
            quantized=quantized,
            host_seconds=time.perf_counter() - start_time,
            degraded=bool(failures),
            failures=list(failures),
        )

    # ------------------------------------------------------------------

    def _run_groups(
        self,
        groups: list[list[tuple[int, int]]],
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
        policy: ExecutionPolicy,
        fault_plan=None,
    ) -> tuple[list[GroupPrediction], list[FailureRecord]]:
        """Run every group's simulation through the fault-tolerant engine.

        Under ``policy.workers > 1`` each attempt runs in a forked worker
        process (copy-on-write shares the frame trace and scene without
        pickling them); otherwise attempts run in-process.  Either way the
        engine provides retries, checkpoint/resume, and failure auditing,
        and per-group results are deterministic and identical across modes.
        """

        def task(index: int, attempt: int) -> GroupPrediction:  # noqa: ARG001
            # Attempts are idempotent: group simulation is a pure function
            # of (group, frame, config), so retries reproduce bit-identical
            # results.
            return self._predict_group(
                index, groups[index], frame, quantized, simulator, scene
            )

        executor = GroupExecutor(policy, fault_plan=fault_plan)
        report = executor.run(task, len(groups))
        predictions = [report.results[i] for i in sorted(report.results)]
        return predictions, report.failures

    def _group_fraction(
        self, quantized: QuantizedHeatmap, pixels: list[tuple[int, int]]
    ) -> float:
        """Equation (1), unless the caller pinned the fraction."""
        cfg = self.config
        if cfg.fraction_override is not None:
            return cfg.fraction_override
        return compute_fraction(
            quantized, pixels, cfg.min_fraction, cfg.max_fraction
        )

    def _predict_group(
        self,
        index: int,
        pixels: list[tuple[int, int]],
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
    ) -> GroupPrediction:
        """Steps 5-6 for one group, plus its extrapolation."""
        cfg = self.config
        fraction = self._group_fraction(quantized, pixels)
        group_seed = cfg.seed * 10007 + index

        if cfg.extrapolation == "linear":
            stats, selected = self._simulate_subset(
                pixels, fraction, frame, quantized, simulator, scene, group_seed
            )
            metrics = linear_extrapolate(stats, fraction)
            work = stats.work_units
        else:
            samples: list[tuple[float, dict[str, float]]] = []
            work = 0
            stats = None
            selected = 0
            for i, sample_fraction in enumerate(cfg.regression_fractions):
                stats, selected = self._simulate_subset(
                    pixels,
                    sample_fraction,
                    frame,
                    quantized,
                    simulator,
                    scene,
                    group_seed + i,
                )
                samples.append(
                    (sample_fraction, linear_extrapolate(stats, sample_fraction))
                )
                work += stats.work_units
            metrics = exponential_regression(samples)
            fraction = max(cfg.regression_fractions)
        assert stats is not None
        return GroupPrediction(
            index=index,
            pixel_count=len(pixels),
            fraction=fraction,
            selected_count=selected,
            stats=stats,
            metrics=metrics,
            work_units=work,
        )

    def _simulate_subset(
        self,
        pixels: list[tuple[int, int]],
        fraction: float,
        frame: FrameTrace,
        quantized: QuantizedHeatmap,
        simulator: CycleSimulator,
        scene: Scene,
        seed: int,
    ) -> tuple[SimulationStats, int]:
        """Select a subset and run one downscaled simulation instance."""
        cfg = self.config
        selected = select_pixels(
            quantized,
            pixels,
            fraction,
            distribution=cfg.distribution,
            block_width=cfg.block_width,
            block_height=cfg.block_height,
            seed=seed,
        )
        warps = compile_kernel(
            frame, pixels, _addresses_of(scene), selected=selected
        )
        return simulator.run(warps), len(selected)


def _addresses_of(scene: Scene):
    """Scene address map accessor (kept separate for test doubles)."""
    return scene.addresses
