"""Zatel's core methodology: heatmaps, quantization, downscaling,
image-plane division, representative-pixel selection, extrapolation,
combination, and the seven-step pipeline tying them together."""

from .adaptive import AdaptiveConfig, AdaptiveZatel
from .combine import combine_degraded_metrics, combine_group_metrics
from .downscale import choose_downscale_factor, downscale_gpu, valid_factors
from .executor import (
    ExecutionPolicy,
    ExecutionReport,
    GroupExecutor,
    default_quorum,
)
from .extrapolate import (
    exponential_regression,
    fit_power_law,
    linear_extrapolate,
    power_law,
)
from .heatmap import HEAT_GRADIENT, Heatmap, color_to_temperature, temperature_to_color
from .partition import (
    coarse_partition,
    fine_partition,
    partition_plane,
    tile_grid_shape,
)
from .pipeline import GroupPrediction, Zatel, ZatelConfig, ZatelResult
from .quantize import QuantizedHeatmap, kmeans, quantize_heatmap
from .stages import (
    Artifact,
    ArtifactStore,
    Stage,
    StageContext,
    StageCounters,
    StageGraph,
    SweepPlanner,
    SweepPoint,
    SweepResult,
    stable_hash,
)
from .selection import (
    DISTRIBUTIONS,
    MAX_FRACTION,
    MIN_FRACTION,
    SectionBlock,
    color_quotas,
    compute_fraction,
    make_section_blocks,
    select_pixels,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveZatel",
    "Artifact",
    "ArtifactStore",
    "DISTRIBUTIONS",
    "ExecutionPolicy",
    "ExecutionReport",
    "GroupExecutor",
    "GroupPrediction",
    "HEAT_GRADIENT",
    "Heatmap",
    "MAX_FRACTION",
    "MIN_FRACTION",
    "QuantizedHeatmap",
    "SectionBlock",
    "Stage",
    "StageContext",
    "StageCounters",
    "StageGraph",
    "SweepPlanner",
    "SweepPoint",
    "SweepResult",
    "Zatel",
    "ZatelConfig",
    "ZatelResult",
    "choose_downscale_factor",
    "coarse_partition",
    "color_quotas",
    "color_to_temperature",
    "combine_degraded_metrics",
    "combine_group_metrics",
    "compute_fraction",
    "default_quorum",
    "downscale_gpu",
    "exponential_regression",
    "fine_partition",
    "fit_power_law",
    "kmeans",
    "linear_extrapolate",
    "make_section_blocks",
    "partition_plane",
    "power_law",
    "quantize_heatmap",
    "select_pixels",
    "stable_hash",
    "temperature_to_color",
    "tile_grid_shape",
    "valid_factors",
]
