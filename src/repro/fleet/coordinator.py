"""The fleet coordinator: scatter, gather, and survive.

:class:`FleetCoordinator` owns the server side of the fleet protocol.
It listens for worker connections, scatters leased group work to them,
and gathers result *keys* — the artifacts themselves travel through the
shared :class:`~repro.core.stages.store.ArtifactStore`.  Robustness is
the point:

* **heartbeat watchdog** — workers beat on a fixed cadence; a worker
  silent past ``heartbeat_grace`` (hung, OOM-killed, partitioned) is
  declared dead and its leases re-queue immediately;
* **lease deadlines** — every dispatch carries a wall-clock budget; an
  assigned lease past its deadline is revoked and re-queued even if the
  worker still heartbeats (catches the "alive but wedged on this task"
  case);
* **bounded re-dispatch** — each lease gets at most ``max_dispatches``
  attempts with capped-exponential deterministically-jittered backoff,
  then fails permanently and flows into the degraded quorum combine
  exactly like a process-level group failure (PR 1 semantics);
* **circuit breaker** — a worker that fails ``breaker_failures`` leases
  consecutively is ejected (told to shut down, never re-leased), so one
  corrupting host cannot burn every lease's dispatch budget;
* **result validation** — a pluggable validator inspects each reported
  result artifact before the lease completes; tampered artifacts count
  as failures and re-dispatch (the chaos harness's ``corrupt`` kind);
* **graceful drain** — :meth:`drain` stops intake, lets in-flight
  leases finish within a deadline, then tells workers to exit.

All mutable state sits behind one condition variable; the watchdog
thread, per-worker reader threads and :meth:`scatter` callers
synchronize only through it.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import FailureRecord, GroupTimeoutError, WorkerCrashError
from ..gpu.telemetry import FleetStats
from .lease import LEASE_DONE, FleetPolicy, Lease, LeaseTable
from .protocol import FLEET_PROTOCOL_VERSION, MessageChannel, ProtocolError

__all__ = ["FleetCoordinator", "FleetReport", "WorkerHandle"]

logger = logging.getLogger("repro.fleet")

WORKER_LIVE = "live"
WORKER_DEAD = "dead"
WORKER_EJECTED = "ejected"
WORKER_DRAINED = "drained"


class WorkerHandle:
    """Coordinator-side view of one connected worker."""

    __slots__ = (
        "id", "channel", "address", "pid", "state", "last_heartbeat",
        "consecutive_failures", "completed", "connected_at",
    )

    def __init__(
        self, worker_id: str, channel: MessageChannel, address: Any, pid: int
    ) -> None:
        self.id = worker_id
        self.channel = channel
        self.address = address
        self.pid = pid
        self.state = WORKER_LIVE
        self.last_heartbeat = time.monotonic()
        self.consecutive_failures = 0
        self.completed = 0
        self.connected_at = time.monotonic()

    @property
    def live(self) -> bool:
        return self.state == WORKER_LIVE

    def describe(self, now: float) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "pid": self.pid,
            "completed": self.completed,
            "consecutive_failures": self.consecutive_failures,
            "heartbeat_age_seconds": round(now - self.last_heartbeat, 3),
        }


@dataclass
class FleetReport:
    """Everything one :meth:`FleetCoordinator.scatter` observed.

    Mirrors :class:`~repro.core.executor.ExecutionReport` at fleet
    granularity: ``results`` maps group index to the result's artifact
    key; ``failures`` audits permanently-lost groups; ``dispatches``
    counts lease dispatch attempts per group (the fleet analogue of
    per-group ``attempts``).
    """

    results: dict[int, str] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    dispatches: dict[int, int] = field(default_factory=dict)
    redispatches: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.failures


class FleetCoordinator:
    """Scatters leased group work to a pool of socket-connected workers.

    Args:
        policy: robustness knobs (:class:`~.lease.FleetPolicy`).
        host/port: fleet listener bind address; ``port=0`` picks an
            ephemeral port (read ``self.port`` after :meth:`start`).
        stats: a :class:`~repro.gpu.telemetry.FleetStats` to account
            into (the service registers it on its telemetry bus).
        result_validator: ``fn(lease) -> str | None`` — an error string
            rejects the reported result (counts as a failed dispatch);
            ``None`` accepts it.  The dispatch layer plugs in a check
            that the artifact exists in the store and has the expected
            shape.
    """

    def __init__(
        self,
        policy: FleetPolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stats: FleetStats | None = None,
        result_validator: Callable[[Lease], str | None] | None = None,
    ) -> None:
        self.policy = policy if policy is not None else FleetPolicy()
        self.host = host
        self.port = port
        self.stats = stats if stats is not None else FleetStats()
        self.result_validator = result_validator
        self.workers: dict[str, WorkerHandle] = {}
        self.table = LeaseTable(self.policy)
        self._cond = threading.Condition()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._running = False
        self._draining = False
        self._job_counter = 0
        self._no_workers_since: float | None = None
        self._start_time = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FleetCoordinator":
        """Bind the fleet listener and start accept + watchdog threads."""
        listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        self._start_time = time.monotonic()
        for target, name in (
            (self._accept_loop, "fleet-accept"),
            (self._watchdog_loop, "fleet-watchdog"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        logger.info(
            "fleet coordinator listening on %s:%d (lease timeout %gs, "
            "heartbeat grace %gs, max dispatches %d)",
            self.host, self.port, self.policy.lease_timeout,
            self.policy.heartbeat_grace, self.policy.max_dispatches,
        )
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful stop: no new scatters, in-flight leases may finish.

        Returns ``True`` when every active lease reached a terminal
        state within ``timeout``; either way the fleet is shut down
        afterwards (workers told to exit, listener closed).
        """
        with self._cond:
            self._draining = True
            active = len(self.table.active())
        if active:
            logger.info("fleet draining %d in-flight lease(s)", active)
        deadline = time.monotonic() + timeout if timeout is not None else None
        clean = True
        with self._cond:
            while self.table.active():
                remaining = (
                    deadline - time.monotonic() if deadline is not None else None
                )
                if remaining is not None and remaining <= 0:
                    clean = False
                    break
                self._cond.wait(remaining if remaining is None else min(remaining, 0.2))
        self.close()
        return clean

    def close(self) -> None:
        """Hard stop: fail active leases, dismiss workers, stop threads."""
        with self._cond:
            self._running = False
            self._draining = True
            for lease in self.table.active():
                self.table.fail(
                    lease,
                    WorkerCrashError.__name__,
                    "fleet coordinator shut down with the lease in flight",
                )
            for worker in self.workers.values():
                if worker.live:
                    self._send(worker, {"type": "shutdown", "reason": "close"})
                    worker.state = WORKER_DRAINED
                worker.channel.close()
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    # ------------------------------------------------------------------
    # scatter / gather (the executor-facing API)
    # ------------------------------------------------------------------

    def scatter(
        self,
        bundle_key: str,
        count: int,
        timeout: float | None = None,
    ) -> FleetReport:
        """Lease out ``count`` groups of ``bundle_key``; gather results.

        Blocks until every lease is terminal (``timeout`` bounds the
        whole gather; leases still in flight at the deadline fail).
        Never raises for individual group failures — like
        :meth:`GroupExecutor.run`, those land in ``report.failures``
        and the degraded quorum combine downstream decides their fate.

        Raises:
            RuntimeError: when the coordinator is draining or stopped.
        """
        with self._cond:
            if not self._running or self._draining:
                raise RuntimeError("fleet coordinator is not accepting work")
            self._job_counter += 1
            job = f"J{self._job_counter:06d}"
            leases = [
                self.table.add(job, bundle_key, index) for index in range(count)
            ]
            self._cond.notify_all()

        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._cond:
            while not all(lease.terminal for lease in leases):
                remaining = (
                    deadline - time.monotonic() if deadline is not None else None
                )
                if remaining is not None and remaining <= 0:
                    for lease in leases:
                        if not lease.terminal:
                            self.table.fail(
                                lease,
                                GroupTimeoutError.__name__,
                                f"fleet gather exceeded {timeout:g}s with the "
                                f"lease still {lease.state}",
                            )
                            self.stats.leases_failed += 1
                    break
                self._cond.wait(
                    remaining if remaining is None else min(remaining, 0.2)
                )
            report = FleetReport()
            for lease in leases:
                report.dispatches[lease.index] = lease.dispatches
                report.redispatches += max(0, lease.dispatches - 1)
                if lease.state == LEASE_DONE and lease.result_key is not None:
                    report.results[lease.index] = lease.result_key
                else:
                    report.failures.append(self.table.failure_record(lease))
            report.failures.sort(key=lambda record: record.index)
            self.table.forget_job(job)
            return report

    # ------------------------------------------------------------------
    # accept / reader side
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            channel = MessageChannel(conn)
            thread = threading.Thread(
                target=self._reader_loop,
                args=(channel, addr),
                name=f"fleet-reader-{addr[1]}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _register(self, channel: MessageChannel, addr: Any) -> WorkerHandle | None:
        """Handle the hello/welcome handshake; ``None`` rejects."""
        try:
            hello = channel.recv(timeout=10.0)
        except (socket.timeout, ProtocolError, OSError):
            channel.close()
            return None
        if (
            hello is None
            or hello.get("type") != "hello"
            or not isinstance(hello.get("worker"), str)
        ):
            channel.close()
            return None
        if hello.get("version") != FLEET_PROTOCOL_VERSION:
            try:
                channel.send(
                    {
                        "type": "reject",
                        "reason": (
                            f"protocol version {hello.get('version')!r} != "
                            f"{FLEET_PROTOCOL_VERSION}"
                        ),
                    }
                )
            except OSError:
                pass
            channel.close()
            return None
        worker_id = hello["worker"]
        handle = WorkerHandle(worker_id, channel, addr, int(hello.get("pid", 0)))
        with self._cond:
            existing = self.workers.get(worker_id)
            if existing is not None and existing.live:
                channel.close()
                logger.warning(
                    "rejecting duplicate fleet worker id %r from %s",
                    worker_id, addr,
                )
                return None
            self.workers[worker_id] = handle
            self.stats.workers_connected += 1
            live = self._live_count()
            if live > self.stats.workers_peak:
                self.stats.workers_peak = live
            self._no_workers_since = None
            self._cond.notify_all()
        try:
            channel.send(
                {
                    "type": "welcome",
                    "version": FLEET_PROTOCOL_VERSION,
                    "heartbeat_interval": self.policy.heartbeat_interval,
                }
            )
        except OSError:
            with self._cond:
                self._declare_dead(handle, "died during handshake")
            return None
        logger.info("fleet worker %s connected from %s", worker_id, addr)
        return handle

    def _reader_loop(self, channel: MessageChannel, addr: Any) -> None:
        worker = self._register(channel, addr)
        if worker is None:
            return
        while True:
            try:
                message = channel.recv(timeout=1.0)
            except socket.timeout:
                if not self._running or not worker.live:
                    return
                continue
            except (ProtocolError, OSError) as error:
                with self._cond:
                    if worker.live:
                        self._declare_dead(worker, f"protocol failure: {error}")
                return
            if message is None:  # EOF: the worker process is gone
                with self._cond:
                    if worker.live:
                        self._declare_dead(worker, "connection closed")
                return
            self._handle_message(worker, message)
            if not worker.live:
                return

    def _handle_message(self, worker: WorkerHandle, message: dict) -> None:
        kind = message.get("type")
        if kind == "heartbeat":
            with self._cond:
                worker.last_heartbeat = time.monotonic()
                self.stats.heartbeats += 1
            return
        if kind == "result":
            self._handle_result(worker, message)
            return
        if kind == "error":
            with self._cond:
                worker.last_heartbeat = time.monotonic()
                lease = self.table.leases.get(str(message.get("lease")))
                if lease is not None and not lease.terminal:
                    self._lease_failed(
                        lease,
                        worker,
                        str(message.get("error", "SimulationError")),
                        str(message.get("message", "worker reported an error")),
                    )
                self._cond.notify_all()
            return
        if kind == "goodbye":
            with self._cond:
                if worker.live:
                    worker.state = WORKER_DRAINED
                    self.stats.workers_drained += 1
                    self._requeue_worker_leases(
                        worker, "worker drained mid-lease"
                    )
                    self._cond.notify_all()
            worker.channel.close()
            logger.info(
                "fleet worker %s drained (%s)",
                worker.id, message.get("reason", "no reason"),
            )
            return
        logger.debug("ignoring unknown fleet message type %r", kind)

    def _handle_result(self, worker: WorkerHandle, message: dict) -> None:
        with self._cond:
            worker.last_heartbeat = time.monotonic()
            lease = self.table.leases.get(str(message.get("lease")))
        if lease is None:
            return
        result_key = str(message.get("key", ""))
        lease.result_key = result_key
        # Validate outside the lock: it reads an artifact from disk.
        problem = (
            self.result_validator(lease)
            if self.result_validator is not None
            else None
        )
        with self._cond:
            if lease.terminal:
                if lease.state != LEASE_DONE and problem is None:
                    # A straggler dispatch beat the failure bookkeeping:
                    # a valid result is a valid result — accept it.
                    self.table.complete(lease, result_key)
                    self.stats.leases_completed += 1
                self._cond.notify_all()
                return
            if problem is not None:
                self.stats.results_corrupt += 1
                self._lease_failed(
                    lease, worker, "ResultValidationError", problem
                )
            else:
                self.table.complete(lease, result_key)
                worker.consecutive_failures = 0
                worker.completed += 1
                self.stats.leases_completed += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # failure handling (call with the lock held)
    # ------------------------------------------------------------------

    def _live_count(self) -> int:
        return sum(1 for worker in self.workers.values() if worker.live)

    def _lease_failed(
        self, lease: Lease, worker: WorkerHandle | None, error: str, message: str
    ) -> None:
        """One dispatch failed: re-queue or exhaust, then breaker-check."""
        requeued = self.table.release(lease, time.monotonic(), error, message)
        if requeued:
            self.stats.redispatches += 1
        else:
            self.stats.leases_failed += 1
            logger.warning(
                "fleet lease %s (group %d) permanently failed after %d "
                "dispatch(es): %s: %s",
                lease.id, lease.index, lease.dispatches, error, message,
            )
        if worker is not None and worker.live:
            worker.consecutive_failures += 1
            if worker.consecutive_failures >= self.policy.breaker_failures:
                self._eject(worker)

    def _eject(self, worker: WorkerHandle) -> None:
        """Open the circuit breaker: dismiss a repeatedly-failing worker."""
        worker.state = WORKER_EJECTED
        self.stats.workers_ejected += 1
        logger.warning(
            "ejecting fleet worker %s after %d consecutive failures",
            worker.id, worker.consecutive_failures,
        )
        self._requeue_worker_leases(worker, "worker ejected by circuit breaker")
        self._send(worker, {"type": "shutdown", "reason": "circuit breaker"})
        worker.channel.close()

    def _declare_dead(self, worker: WorkerHandle, reason: str) -> None:
        worker.state = WORKER_DEAD
        self.stats.workers_lost += 1
        logger.warning("fleet worker %s declared dead: %s", worker.id, reason)
        self._requeue_worker_leases(worker, f"worker died ({reason})")
        worker.channel.close()
        if self._live_count() == 0:
            self._no_workers_since = time.monotonic()
        self._cond.notify_all()

    def _requeue_worker_leases(self, worker: WorkerHandle, reason: str) -> None:
        for lease in self.table.assigned_to(worker.id):
            self._lease_failed(
                lease, None, WorkerCrashError.__name__,
                f"group {lease.index}: {reason}",
            )

    # ------------------------------------------------------------------
    # watchdog + dispatch
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while self._running:
            with self._cond:
                self._tick(time.monotonic())
            time.sleep(self.policy.watchdog_interval)

    def _tick(self, now: float) -> None:
        """One watchdog pass (lock held): deaths, expiries, dispatch."""
        # 1. heartbeat silence -> dead (hung workers stop beating too).
        for worker in list(self.workers.values()):
            if (
                worker.live
                and now - worker.last_heartbeat > self.policy.heartbeat_grace
            ):
                self._declare_dead(
                    worker,
                    f"no heartbeat for {now - worker.last_heartbeat:.1f}s "
                    f"(grace {self.policy.heartbeat_grace:g}s)",
                )
        # 2. assigned leases past deadline -> revoke and re-queue.
        for lease in self.table.expired(now):
            self.stats.leases_expired += 1
            holder = self.workers.get(lease.worker or "")
            self._lease_failed(
                lease,
                holder,
                GroupTimeoutError.__name__,
                f"group {lease.index} exceeded the "
                f"{self.policy.lease_timeout:g}s lease deadline on worker "
                f"{lease.worker}",
            )
        # 3. a fleet with no live workers cannot make progress: fail
        #    pending leases after a grace period instead of wedging.
        if self._live_count() == 0:
            if self.table.pending_count():
                if self._no_workers_since is None:
                    self._no_workers_since = now
                elif now - self._no_workers_since > self.policy.no_worker_grace:
                    for lease in self.table.active():
                        self.table.fail(
                            lease,
                            WorkerCrashError.__name__,
                            f"no live fleet workers for "
                            f"{self.policy.no_worker_grace:g}s",
                        )
                        self.stats.leases_failed += 1
                    self._cond.notify_all()
        else:
            self._no_workers_since = None
        # 4. dispatch ready leases to the least-loaded live workers.
        self._dispatch(now)

    def _dispatch(self, now: float) -> None:
        ready = sorted(self.table.ready(now), key=lambda lease: lease.id)
        if not ready:
            return
        for lease in ready:
            candidates = [
                worker
                for worker in self.workers.values()
                if worker.live
                and len(self.table.assigned_to(worker.id)) < self.policy.worker_slots
            ]
            if not candidates:
                return
            worker = min(
                candidates,
                key=lambda w: (len(self.table.assigned_to(w.id)), w.id),
            )
            self.table.assign(lease, worker.id, now)
            self.stats.leases_dispatched += 1
            inflight = sum(
                1 for entry in self.table.leases.values()
                if entry.state == "assigned"
            )
            if inflight > self.stats.leases_inflight_peak:
                self.stats.leases_inflight_peak = inflight
            if not self._send(
                worker,
                {
                    "type": "lease",
                    "lease": lease.id,
                    "bundle": lease.bundle_key,
                    "index": lease.index,
                    "attempt": lease.dispatches - 1,
                    "deadline_seconds": self.policy.lease_timeout,
                },
            ):
                self._declare_dead(worker, "send failed")

    def _send(self, worker: WorkerHandle, message: dict) -> bool:
        try:
            worker.channel.send(message)
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def live_workers(self) -> int:
        with self._cond:
            return self._live_count()

    def below_quorum(self) -> bool:
        """Whether the fleet is too small to honor its readiness quorum."""
        return self.live_workers() < self.policy.min_workers

    def fleet_view(self) -> dict:
        """JSON-able fleet state for ``/healthz`` and ``/metrics``."""
        now = time.monotonic()
        with self._cond:
            active = self.table.active()
            return {
                "address": self.address,
                "draining": self._draining,
                "live_workers": self._live_count(),
                "quorum": self.policy.min_workers,
                "workers": [
                    worker.describe(now)
                    for worker in sorted(
                        self.workers.values(), key=lambda w: w.id
                    )
                ],
                "leases": {
                    "active": len(active),
                    "pending": sum(
                        1 for lease in active if lease.state == "pending"
                    ),
                    "assigned": sum(
                        1 for lease in active if lease.state == "assigned"
                    ),
                },
            }
