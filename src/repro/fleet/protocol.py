"""JSON-lines wire protocol between the fleet coordinator and workers.

Messages are single-line JSON objects terminated by ``\\n`` — small
control traffic only (leases, heartbeats, result *keys*).  Bulk data
(frame traces, group bundles, per-group predictions) never crosses the
socket: it flows through the content-addressed
:class:`~repro.core.stages.store.ArtifactStore` both sides share, so
the protocol stays trivially inspectable and a slow socket can never
back-pressure a simulation.

Worker -> coordinator::

    {"type": "hello", "worker": "w0", "pid": 123, "version": 1}
    {"type": "heartbeat", "worker": "w0", "seq": 7}
    {"type": "result", "lease": "L12", "key": "fleet_result_..."}
    {"type": "error", "lease": "L12", "error": "SimulationError",
     "message": "..."}
    {"type": "goodbye", "worker": "w0", "reason": "sigterm"}

Coordinator -> worker::

    {"type": "welcome", "version": 1, "heartbeat_interval": 0.5}
    {"type": "lease", "lease": "L12", "bundle": "<store key>",
     "index": 3, "attempt": 0, "deadline_seconds": 60.0}
    {"type": "reject", "reason": "protocol version mismatch"}
    {"type": "shutdown", "reason": "drain"}

Every message type carries ``type``; unknown types are ignored by both
sides (forward compatibility).  Reads go through a timeout-tolerant
line buffer bounded by :data:`MAX_LINE_BYTES`, so a misbehaving peer
cannot balloon memory and short-timeout polling never loses bytes.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any

__all__ = [
    "FLEET_PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "MessageChannel",
    "ProtocolError",
]

FLEET_PROTOCOL_VERSION = 1

#: Upper bound on one wire line; fleet control messages are < 1 KiB.
MAX_LINE_BYTES = 64 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something that is not a fleet protocol message."""


class MessageChannel:
    """One socket wrapped for framed, thread-safe message exchange.

    Reads must come from a single thread (the owner's reader loop);
    writes may come from any thread — sends are serialized by a lock so
    a watchdog re-dispatch and a drain notice can never interleave
    bytes on the wire.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        # Hand-rolled line buffer rather than sock.makefile(): a buffered
        # file object raises "cannot read from timed out object" forever
        # after one timeout, and timeouts are our normal polling idiom.
        self._buffer = bytearray()
        self._send_lock = threading.Lock()
        self.closed = False

    def send(self, message: dict[str, Any]) -> None:
        """Write one message; raises ``OSError`` when the peer is gone."""
        data = (json.dumps(message, sort_keys=True) + "\n").encode()
        with self._send_lock:
            self.sock.sendall(data)

    def recv(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Read the next message.

        Returns ``None`` on EOF (peer closed cleanly or died).  With a
        ``timeout``, raises ``socket.timeout`` when nothing arrives in
        time — callers poll this way to notice shutdown flags.

        Raises:
            ProtocolError: on an oversized or non-JSON-object line.
        """
        line = self._read_line(timeout)
        if line is None:
            return None
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"malformed fleet message: {error}") from None
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError(
                "fleet messages must be JSON objects with a 'type' field"
            )
        return message

    def _read_line(self, timeout: float | None) -> bytes | None:
        """One ``\\n``-terminated line, or ``None`` on EOF.

        Partial data accumulated before a ``socket.timeout`` stays in
        the buffer, so polling with short timeouts never loses bytes.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError(
                    f"fleet message exceeds {MAX_LINE_BYTES} bytes"
                )
            self.sock.settimeout(timeout)
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError(
                        "connection closed mid-message "
                        f"({len(self._buffer)} dangling bytes)"
                    )
                return None
            self._buffer.extend(chunk)

    def close(self) -> None:
        """Tear the channel down (idempotent, never raises)."""
        self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass
