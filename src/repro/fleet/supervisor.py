"""Worker-process supervision for ``zatel serve --fleet N``.

The coordinator treats workers as cattle: any process that speaks the
protocol may join.  :class:`WorkerSupervisor` is the piece that actually
raises the herd — it spawns ``count`` ``zatel worker`` subprocesses
pointed at the coordinator's listener and the shared cache directory,
watches them, and respawns any that die (chaos kills, OOM, crashes)
with a fresh worker id, up to a bounded respawn budget so a
crash-looping configuration cannot fork-bomb the host.

Worker stdout/stderr pass through to the service's own streams — worker
logs interleave with coordinator logs, which is what an operator
tailing one terminal wants.
"""

from __future__ import annotations

import logging
import signal
import subprocess
import sys
import threading

__all__ = ["WorkerSupervisor"]

logger = logging.getLogger("repro.fleet")


class WorkerSupervisor:
    """Spawns and babysits a fixed-size pool of worker subprocesses.

    Args:
        address: the coordinator's ``host:port`` fleet listener.
        cache_dir: shared artifact-store root (must match the service's).
        count: pool size to maintain.
        chaos_json: optional serialized chaos plan forwarded to each
            worker via ``--chaos``.
        max_respawns: total respawn budget across the pool's lifetime.
        poll_interval: how often the monitor thread checks liveness.
    """

    def __init__(
        self,
        address: str,
        cache_dir: str,
        count: int,
        chaos_json: str | None = None,
        max_respawns: int = 10,
        poll_interval: float = 0.2,
    ) -> None:
        if count < 1:
            raise ValueError("fleet size must be >= 1")
        self.address = address
        self.cache_dir = cache_dir
        self.count = count
        self.chaos_json = chaos_json
        self.max_respawns = max_respawns
        self.poll_interval = poll_interval
        self.processes: dict[str, subprocess.Popen] = {}
        self.respawns = 0
        self._spawn_counter = 0
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    def start(self) -> None:
        for _ in range(self.count):
            self._spawn()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-supervisor", daemon=True
        )
        self._monitor.start()
        logger.info(
            "fleet supervisor started %d worker process(es) -> %s",
            self.count, self.address,
        )

    def stop(self, timeout: float = 5.0) -> None:
        """SIGTERM every worker (graceful drain), SIGKILL stragglers."""
        self._stopping.set()
        with self._lock:
            procs = list(self.processes.values())
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        for proc in procs:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                logger.warning(
                    "fleet worker pid %d ignored SIGTERM; killing", proc.pid
                )
                proc.kill()
                proc.wait(timeout=5.0)
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)

    def live_count(self) -> int:
        with self._lock:
            return sum(
                1 for proc in self.processes.values() if proc.poll() is None
            )

    # ------------------------------------------------------------------

    def _spawn(self) -> None:
        self._spawn_counter += 1
        worker_id = f"w{self._spawn_counter}"
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            self.address,
            "--cache-dir",
            self.cache_dir,
            "--worker-id",
            worker_id,
        ]
        if self.chaos_json:
            command += ["--chaos", self.chaos_json]
        proc = subprocess.Popen(command)
        with self._lock:
            self.processes[worker_id] = proc
        logger.info("spawned fleet worker %s (pid %d)", worker_id, proc.pid)

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.poll_interval):
            with self._lock:
                dead = [
                    (worker_id, proc)
                    for worker_id, proc in self.processes.items()
                    if proc.poll() is not None
                ]
                for worker_id, _ in dead:
                    del self.processes[worker_id]
            for worker_id, proc in dead:
                if self._stopping.is_set():
                    return
                logger.warning(
                    "fleet worker %s (pid %d) exited with code %s",
                    worker_id, proc.pid, proc.returncode,
                )
                if self.respawns >= self.max_respawns:
                    logger.error(
                        "fleet respawn budget (%d) exhausted; not replacing "
                        "worker %s", self.max_respawns, worker_id,
                    )
                    continue
                self.respawns += 1
                self._spawn()
