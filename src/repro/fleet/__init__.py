"""Fault-tolerant distributed prediction fleet.

Scatters :class:`~repro.core.stages.concrete.SimulateGroupStage` work
from the service coordinator to a pool of worker processes over a
JSON-lines socket protocol, with the content-addressed
:class:`~repro.core.stages.store.ArtifactStore` as the shared bulk-data
substrate.  Robustness machinery: lease-based assignment with
deadlines, worker heartbeats and a coordinator watchdog, bounded
re-dispatch with capped deterministic backoff, a per-worker circuit
breaker, result validation, and graceful drain — all exercised by the
seeded chaos harness in :mod:`repro.testing.chaos`.

See ``docs/architecture.md`` ("Fleet & failure domains") for the lease
lifecycle and failover state machine.
"""

from .coordinator import FleetCoordinator, FleetReport, WorkerHandle
from .dispatch import (
    bundle_key_for,
    execute_lease,
    make_result_validator,
    pack_bundle,
    result_key_for,
    scatter_groups,
)
from .lease import FleetPolicy, Lease, LeaseTable
from .protocol import (
    FLEET_PROTOCOL_VERSION,
    MAX_LINE_BYTES,
    MessageChannel,
    ProtocolError,
)
from .supervisor import WorkerSupervisor
from .worker import FleetWorker

__all__ = [
    "FLEET_PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "FleetCoordinator",
    "FleetPolicy",
    "FleetReport",
    "FleetWorker",
    "Lease",
    "LeaseTable",
    "MessageChannel",
    "ProtocolError",
    "WorkerHandle",
    "WorkerSupervisor",
    "bundle_key_for",
    "execute_lease",
    "make_result_validator",
    "pack_bundle",
    "result_key_for",
    "scatter_groups",
]
