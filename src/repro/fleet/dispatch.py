"""Dispatch glue between the stage graph and the fleet coordinator.

The boundary has two halves sharing one naming scheme:

* **coordinator side** — :func:`scatter_groups` packs everything a
  group simulation needs into one content-addressed *bundle* artifact,
  scatters the per-group leases through a
  :class:`~repro.fleet.coordinator.FleetCoordinator`, then gathers the
  validated result artifacts back into the exact ``(predictions,
  failures)`` shape :class:`~repro.core.stages.concrete.
  SimulateGroupStage` produces locally — so the combine stage (and its
  degraded-quorum semantics) never knows which path ran;
* **worker side** — :func:`execute_lease` loads the bundle from the
  shared store, rebuilds the scene and simulator, runs the predictor's
  own ``_predict_group`` (bit-identical to the local path: same
  ``(seed, index)``-derived group seed, same selection), and stores the
  prediction under a deterministic per-group key.

Result keys are pure functions of ``(bundle_key, index)``, which makes
re-dispatch idempotent: a straggler from a revoked lease and its
replacement write the *same* artifact with the same content.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.pipeline import GroupPrediction
from ..core.stages.fingerprint import (
    frame_fingerprint,
    gpu_fingerprint,
    stable_hash,
)
from ..core.stages.store import ArtifactStore
from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import FleetCoordinator

__all__ = [
    "bundle_key_for",
    "execute_lease",
    "make_result_validator",
    "pack_bundle",
    "result_key_for",
    "scatter_groups",
]


def bundle_key_for(predictor, frame, quantized, groups, scaled_gpu, fractions, scene) -> str:  # noqa: ARG001
    """Content address of a scatter bundle.

    Derived from the same ingredients as the simulate stage's
    fingerprint: the predictor's full methodology config plus the
    fingerprints of every input.  ``quantized`` and ``groups`` are
    deterministic functions of ``(frame, config)``, so the frame
    fingerprint and config cover them without hashing array content.
    Two predictions that would share simulation work share one bundle.
    """
    return stable_hash(
        (
            "fleet_bundle",
            # Bundle layout version.  v2: the scene travels as a
            # SceneSpec (recipe knobs/seed/frame included), so two
            # recipes sharing a display name never share a bundle.
            2,
            predictor._simulate_params(),
            predictor.config,
            frame_fingerprint(frame),
            gpu_fingerprint(scaled_gpu),
            len(groups),
            list(fractions),
            _scene_identity(scene),
        )
    )


def _scene_identity(scene):
    """The scene's spec when the registry built it, else its name.

    The spec is what lets a worker rebuild procedural scenes it has
    never seen: it is self-contained (recipe + knobs + seed + frame),
    whereas a bare name only resolves against the fixed library.
    """
    return getattr(scene, "spec", None) or scene.name


def result_key_for(bundle_key: str, index: int) -> str:
    """Deterministic store key for group ``index`` of a bundle."""
    return stable_hash(("fleet_result", bundle_key, index))


def pack_bundle(
    store: ArtifactStore, predictor, frame, quantized, groups, scaled_gpu,
    fractions, scene,
) -> str:
    """Persist one scatter bundle; returns its key (idempotent)."""
    key = bundle_key_for(
        predictor, frame, quantized, groups, scaled_gpu, fractions, scene
    )
    if not store.contains(key):
        store.put(
            key,
            {
                "predictor": predictor,
                "frame": frame,
                "quantized": quantized,
                "groups": groups,
                "scaled_gpu": scaled_gpu,
                "fractions": fractions,
                "scene": _scene_identity(scene),
            },
        )
    return key


def execute_lease(store: ArtifactStore, bundle_key: str, index: int) -> str:
    """Worker side: compute one leased group, store its prediction.

    Pure function of the bundle content — retries and straggler
    dispatches reproduce bit-identical artifacts, so overwriting under
    the deterministic key is always safe.
    """
    from ..scene.registry import resolve_scene
    from ..gpu.simulator import make_simulator

    bundle = store.get(bundle_key)
    if bundle is None:
        raise SimulationError(
            f"fleet bundle {bundle_key} is not in the shared store (are the "
            "coordinator and worker pointed at the same cache directory?)"
        )
    groups = bundle["groups"]
    if not 0 <= index < len(groups):
        raise SimulationError(
            f"lease index {index} out of range for a {len(groups)}-group bundle"
        )
    # A SceneSpec rebuilds recipes and sequence frames from scratch; a
    # bare string is the legacy library-name form.
    scene = resolve_scene(bundle["scene"])
    simulator = make_simulator(bundle["scaled_gpu"], scene.addresses)
    prediction = bundle["predictor"]._predict_group(
        index,
        groups[index],
        bundle["frame"],
        bundle["quantized"],
        simulator,
        scene,
        fraction=bundle["fractions"][index],
    )
    result_key = result_key_for(bundle_key, index)
    store.put(result_key, prediction)
    return result_key


def make_result_validator(store: ArtifactStore):
    """Coordinator-side defense against silent result corruption.

    Returns the ``result_validator`` callback the coordinator runs
    before completing a lease: the reported artifact must exist, be a
    :class:`~repro.core.pipeline.GroupPrediction`, and carry the leased
    group's index.  A rejected artifact is purged from the store (memo
    *and* disk) so the re-dispatched computation starts clean.
    """

    def validate(lease) -> str | None:
        expected = result_key_for(lease.bundle_key, lease.index)
        if lease.result_key != expected:
            return (
                f"worker reported key {lease.result_key!r}, expected "
                f"{expected!r}"
            )
        value = store.get(lease.result_key)
        problem: str | None = None
        if value is None:
            problem = "reported result artifact is missing from the store"
        elif not isinstance(value, GroupPrediction):
            problem = (
                "result artifact is not a GroupPrediction "
                f"(got {type(value).__name__})"
            )
        elif value.index != lease.index:
            problem = (
                f"result artifact is for group {value.index}, "
                f"lease was for group {lease.index}"
            )
        if problem is not None:
            store.forget(lease.result_key)
        return problem

    return validate


def scatter_groups(
    fleet: "FleetCoordinator",
    store: ArtifactStore,
    predictor,
    frame,
    quantized,
    groups,
    scaled_gpu,
    fractions,
    scene,
    gather_timeout: float | None = None,
):
    """Scatter one prediction's groups across the fleet; gather results.

    Returns ``(predictions, failures, redispatches)`` where the first
    two match :meth:`SimulateGroupStage.run`'s local return shape
    exactly (predictions sorted by group index, failures as
    :class:`~repro.errors.FailureRecord`).
    """
    if store.root is None:
        raise SimulationError(
            "fleet execution requires a disk-backed artifact store: workers "
            "exchange bundles and results through it (start the service "
            "with a cache directory)"
        )
    bundle_key = pack_bundle(
        store, predictor, frame, quantized, groups, scaled_gpu, fractions, scene
    )
    report = fleet.scatter(bundle_key, len(groups), timeout=gather_timeout)
    predictions = []
    failures = list(report.failures)
    failed_indices = {record.index for record in failures}
    for index in sorted(report.results):
        value = store.get(report.results[index])
        if isinstance(value, GroupPrediction) and value.index == index:
            predictions.append(value)
        elif index not in failed_indices:
            # Validated at completion time but unreadable now (e.g. the
            # artifact file vanished): audit it as a lost group rather
            # than crashing the combine.
            failures.append(
                predictor_failure(index, report.dispatches.get(index, 1))
            )
    failures.sort(key=lambda record: record.index)
    return predictions, failures, report.redispatches


def predictor_failure(index: int, attempts: int):
    from ..errors import CacheCorruptionError, FailureRecord

    return FailureRecord(
        index=index,
        error=CacheCorruptionError.__name__,
        message="fleet result artifact disappeared between validation and gather",
        attempts=attempts,
    )
