"""The fleet worker: lease in, compute, artifact out, heartbeat always.

A :class:`FleetWorker` connects to the coordinator, handshakes, then
loops: receive a lease, execute its group via the shared
:class:`~repro.core.stages.store.ArtifactStore` (see
:func:`~repro.fleet.dispatch.execute_lease`), report the result *key*
back.  A background thread heartbeats on the cadence the coordinator's
``welcome`` prescribed, so the watchdog can tell "busy simulating" from
"dead".

Two modes share all of this logic:

* **subprocess** (``zatel worker``) — the production shape; chaos kills
  are a hard ``os._exit`` and the supervisor respawns the process;
* **in-process** (``in_process=True``) — test workers running on
  threads; chaos kills raise :class:`~repro.testing.chaos.WorkerKilled`,
  which the run loop turns into an abrupt connection drop — exactly the
  signal a crashed process leaves behind — without killing the test
  runner.

Workers are deliberately stateless between leases: every input comes
from the store by key, every output goes back by key, so a worker that
dies mid-lease loses nothing but time.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time

from ..core.stages.store import ArtifactStore
from .dispatch import execute_lease
from .protocol import FLEET_PROTOCOL_VERSION, MessageChannel, ProtocolError

__all__ = ["FleetWorker"]

logger = logging.getLogger("repro.fleet")


class FleetWorker:
    """One fleet worker process (or test thread).

    Args:
        host/port: the coordinator's fleet listener.
        store: artifact store rooted at the *same directory* the
            coordinator uses — the shared substrate all bulk data
            crosses through.
        worker_id: stable identity for lease accounting and chaos
            targeting; defaults to ``w<pid>``.
        chaos: optional chaos oracle (:class:`~repro.testing.chaos.
            ChaosPlan`-shaped) fired before each leased group executes.
        in_process: test mode — chaos kills drop the connection instead
            of exiting the interpreter.
    """

    def __init__(
        self,
        host: str,
        port: int,
        store: ArtifactStore,
        worker_id: str | None = None,
        chaos=None,
        in_process: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.worker_id = worker_id if worker_id is not None else f"w{os.getpid()}"
        self.chaos = chaos
        self.in_process = in_process
        self.channel: MessageChannel | None = None
        self.heartbeat_interval = 0.5
        self.completed = 0
        self._draining = threading.Event()
        self._mute_heartbeats = threading.Event()
        self._stopped = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def connect(self, timeout: float = 10.0) -> None:
        """Dial the coordinator and complete the hello/welcome handshake."""
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        channel = MessageChannel(sock)
        channel.send(
            {
                "type": "hello",
                "worker": self.worker_id,
                "pid": os.getpid(),
                "version": FLEET_PROTOCOL_VERSION,
            }
        )
        reply = channel.recv(timeout=timeout)
        if reply is None or reply.get("type") != "welcome":
            reason = (
                reply.get("reason", "no reason given")
                if isinstance(reply, dict)
                else "connection closed during handshake"
            )
            channel.close()
            raise RuntimeError(f"fleet coordinator rejected worker: {reason}")
        self.heartbeat_interval = float(
            reply.get("heartbeat_interval", self.heartbeat_interval)
        )
        self.channel = channel
        logger.info(
            "worker %s connected to fleet at %s:%d",
            self.worker_id, self.host, self.port,
        )

    def request_drain(self) -> None:
        """Ask the run loop to finish its current lease and exit cleanly
        (the worker process's SIGTERM handler calls this)."""
        self._draining.set()

    def run(self) -> None:
        """The worker main loop; returns when drained or dismissed."""
        if self.channel is None:
            self.connect()
        assert self.channel is not None
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        try:
            self._serve_leases()
        finally:
            self._stopped.set()
            self.channel.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        seq = 0
        while not self._stopped.is_set():
            if not self._mute_heartbeats.is_set():
                seq += 1
                try:
                    self.channel.send(
                        {"type": "heartbeat", "worker": self.worker_id, "seq": seq}
                    )
                except OSError:
                    return
            self._stopped.wait(self.heartbeat_interval)

    def _serve_leases(self) -> None:
        from ..testing.chaos import WorkerKilled

        while True:
            try:
                message = self.channel.recv(timeout=0.2)
            except socket.timeout:
                if self._draining.is_set():
                    self._say_goodbye("sigterm drain")
                    return
                continue
            except (ProtocolError, OSError):
                return
            if message is None:  # coordinator gone
                return
            kind = message.get("type")
            if kind == "shutdown":
                logger.info(
                    "worker %s dismissed by coordinator (%s)",
                    self.worker_id, message.get("reason", "no reason"),
                )
                return
            if kind == "lease":
                try:
                    self._execute(message)
                except WorkerKilled:
                    # Chaos kill, in-process mode: vanish abruptly — the
                    # coordinator sees the same EOF a dead process leaves.
                    return
                if self._draining.is_set():
                    self._say_goodbye("sigterm drain")
                    return
                continue
            logger.debug("worker ignoring unknown message type %r", kind)

    def _say_goodbye(self, reason: str) -> None:
        try:
            self.channel.send(
                {"type": "goodbye", "worker": self.worker_id, "reason": reason}
            )
        except OSError:
            pass

    def _execute(self, message: dict) -> None:
        lease_id = str(message.get("lease"))
        bundle_key = str(message.get("bundle"))
        index = int(message.get("index", -1))
        attempt = int(message.get("attempt", 0))

        action = (
            self.chaos.action(self.worker_id, index, attempt)
            if self.chaos is not None
            else None
        )
        if action == "kill":
            logger.warning(
                "worker %s: chaos kill on group %d attempt %d",
                self.worker_id, index, attempt,
            )
            self.chaos.die(self.in_process)
        if action == "hang":
            # A wedged worker does not heartbeat either — that silence is
            # exactly what the coordinator's watchdog must catch.
            logger.warning(
                "worker %s: chaos hang on group %d attempt %d",
                self.worker_id, index, attempt,
            )
            self._mute_heartbeats.set()
            self.chaos.apply_timing("hang")
            self._mute_heartbeats.clear()
            return  # never reports; the lease expired long ago
        if action == "slow":
            self.chaos.apply_timing("slow")

        started = time.perf_counter()
        try:
            if action == "corrupt":
                from ..testing.chaos import CORRUPT_PAYLOAD
                from .dispatch import result_key_for

                result_key = result_key_for(bundle_key, index)
                self.store.put(result_key, dict(CORRUPT_PAYLOAD))
                logger.warning(
                    "worker %s: chaos corrupted result for group %d",
                    self.worker_id, index,
                )
            else:
                result_key = execute_lease(self.store, bundle_key, index)
        except Exception as error:  # noqa: BLE001 - reported, not raised
            try:
                self.channel.send(
                    {
                        "type": "error",
                        "lease": lease_id,
                        "error": type(error).__name__,
                        "message": str(error),
                    }
                )
            except OSError:
                pass
            return
        self.completed += 1
        try:
            self.channel.send(
                {"type": "result", "lease": lease_id, "key": result_key}
            )
        except OSError:
            return
        logger.info(
            "worker %s finished group %d in %.3fs",
            self.worker_id, index, time.perf_counter() - started,
        )
