"""Lease-based work assignment: the fleet's unit of failure recovery.

A *lease* is the right to compute one group of one scattered job for a
bounded time.  Ownership is always explicit — a lease is ``pending``
(queued, possibly backing off), ``assigned`` (held by one worker with a
deadline), or terminal (``done`` / ``failed``) — so every failover
question ("who was computing group 3 when worker w1 died?") has an
answer in the table, and re-queueing after a crash is a state
transition, not a guess.

The lifecycle::

        add()                 assign(worker)
    ──────────▶  PENDING  ─────────────────────▶  ASSIGNED
                   ▲                                 │
                   │  release(): re-dispatch         │ complete() ─▶ DONE
                   │  (capped-backoff delay,         │
                   │   bounded by max_dispatches)    │ release() on
                   └─────────────────────────────────┘ error / expiry /
                                                       worker death
                               │
                               └─ dispatches exhausted ─▶ FAILED

Backoff between dispatches is capped exponential with deterministic
seeded jitter — the same ``(seed, index, attempt)`` pure function the
process-level :class:`~repro.core.executor.ExecutionPolicy` uses, so a
chaos schedule replays identically across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import FailureRecord

__all__ = [
    "LEASE_ASSIGNED",
    "LEASE_DONE",
    "LEASE_FAILED",
    "LEASE_PENDING",
    "FleetPolicy",
    "Lease",
    "LeaseTable",
]

LEASE_PENDING = "pending"
LEASE_ASSIGNED = "assigned"
LEASE_DONE = "done"
LEASE_FAILED = "failed"


@dataclass(frozen=True)
class FleetPolicy:
    """Coordinator-side robustness knobs.

    Execution-only, like :class:`~repro.core.executor.ExecutionPolicy`:
    these change how the fleet schedules and recovers work, never what a
    prediction computes — a fleet run with no faults is byte-identical
    to the single-process path.

    Attributes:
        lease_timeout: per-dispatch wall-clock budget; an assigned lease
            past its deadline is revoked and re-queued.
        heartbeat_interval: cadence workers are told to beat at.
        heartbeat_grace: silence after which the watchdog declares a
            worker dead (its leases re-queue; must comfortably exceed
            the interval).
        max_dispatches: total dispatch attempts per lease before it is
            recorded as permanently failed (degraded-combine input).
        backoff_base/backoff_cap/seed: capped exponential re-dispatch
            backoff with deterministic seeded jitter.
        breaker_failures: consecutive failures after which a worker's
            circuit breaker opens and the worker is ejected.
        worker_slots: concurrent leases one worker may hold.
        min_workers: readiness quorum — below this many live workers
            the coordinator reports itself unready.
        no_worker_grace: how long pending leases may wait with zero
            live workers before failing fast (prevents a dead fleet
            from wedging a predict forever).
        watchdog_interval: coordinator watchdog tick.
    """

    lease_timeout: float = 120.0
    heartbeat_interval: float = 0.5
    heartbeat_grace: float = 5.0
    max_dispatches: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0
    breaker_failures: int = 3
    worker_slots: int = 1
    min_workers: int = 1
    no_worker_grace: float = 30.0
    watchdog_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_grace <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_grace must exceed heartbeat_interval, or every "
                "scheduling hiccup counts as a death"
            )
        if self.max_dispatches < 1:
            raise ValueError("max_dispatches must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.worker_slots < 1:
            raise ValueError("worker_slots must be >= 1")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Deterministic delay before dispatch ``attempt`` of group
        ``index`` — same shape as ``ExecutionPolicy.backoff_delay``."""
        jitter = random.Random(
            (self.seed * 1_000_003 + index) * 97 + attempt
        ).random()
        delay = self.backoff_base * (2.0 ** max(0, attempt - 1)) * (1.0 + jitter)
        return min(self.backoff_cap, delay)


class Lease:
    """One group's dispatchable unit of work within a scattered job."""

    __slots__ = (
        "id", "job", "bundle_key", "index", "state", "dispatches",
        "worker", "deadline", "not_before", "result_key",
        "last_error", "last_message",
    )

    def __init__(self, lease_id: str, job: str, bundle_key: str, index: int) -> None:
        self.id = lease_id
        self.job = job
        self.bundle_key = bundle_key
        self.index = index
        self.state = LEASE_PENDING
        #: Dispatch attempts consumed (== the ``attempt`` workers see).
        self.dispatches = 0
        self.worker: str | None = None
        self.deadline: float | None = None
        self.not_before = 0.0
        self.result_key: str | None = None
        self.last_error: str | None = None
        self.last_message: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in (LEASE_DONE, LEASE_FAILED)

    def describe(self) -> dict:
        """JSON-able state for the ``/healthz`` fleet view."""
        return {
            "lease": self.id,
            "index": self.index,
            "state": self.state,
            "dispatches": self.dispatches,
            "worker": self.worker,
        }


class LeaseTable:
    """All live leases, indexed for the coordinator's scheduling loop.

    Not thread-safe on its own — the coordinator serializes access
    under its single lock; the table only encodes the state machine.
    """

    def __init__(self, policy: FleetPolicy) -> None:
        self.policy = policy
        self.leases: dict[str, Lease] = {}
        self._counter = 0

    # -- creation -------------------------------------------------------

    def add(self, job: str, bundle_key: str, index: int) -> Lease:
        self._counter += 1
        lease = Lease(f"L{self._counter:06d}", job, bundle_key, index)
        self.leases[lease.id] = lease
        return lease

    # -- scheduling queries ---------------------------------------------

    def ready(self, now: float) -> list[Lease]:
        """Pending leases whose backoff has elapsed, FIFO by id."""
        return [
            lease
            for lease in self.leases.values()
            if lease.state == LEASE_PENDING and lease.not_before <= now
        ]

    def next_wakeup(self) -> float | None:
        """Earliest future time at which scheduling state can change."""
        times = [
            lease.not_before
            for lease in self.leases.values()
            if lease.state == LEASE_PENDING
        ]
        times += [
            lease.deadline
            for lease in self.leases.values()
            if lease.state == LEASE_ASSIGNED and lease.deadline is not None
        ]
        return min(times) if times else None

    def assigned_to(self, worker: str) -> list[Lease]:
        return [
            lease
            for lease in self.leases.values()
            if lease.state == LEASE_ASSIGNED and lease.worker == worker
        ]

    def expired(self, now: float) -> list[Lease]:
        return [
            lease
            for lease in self.leases.values()
            if lease.state == LEASE_ASSIGNED
            and lease.deadline is not None
            and now > lease.deadline
        ]

    def pending_count(self) -> int:
        return sum(
            1 for lease in self.leases.values() if lease.state == LEASE_PENDING
        )

    def active(self) -> list[Lease]:
        return [lease for lease in self.leases.values() if not lease.terminal]

    # -- transitions ----------------------------------------------------

    def assign(self, lease: Lease, worker: str, now: float) -> None:
        assert lease.state == LEASE_PENDING, lease.state
        lease.state = LEASE_ASSIGNED
        lease.worker = worker
        lease.dispatches += 1
        lease.deadline = now + self.policy.lease_timeout
        lease.last_error = None
        lease.last_message = None

    def complete(self, lease: Lease, result_key: str) -> None:
        lease.state = LEASE_DONE
        lease.result_key = result_key
        lease.worker = None
        lease.deadline = None

    def release(
        self, lease: Lease, now: float, error: str, message: str
    ) -> bool:
        """Return a failed/revoked lease to the queue — or exhaust it.

        Returns ``True`` when the lease re-queued (another dispatch is
        allowed) and ``False`` when dispatch attempts are exhausted and
        the lease is now permanently ``FAILED``.
        """
        lease.worker = None
        lease.deadline = None
        lease.last_error = error
        lease.last_message = message
        if lease.dispatches >= self.policy.max_dispatches:
            lease.state = LEASE_FAILED
            return False
        lease.state = LEASE_PENDING
        lease.not_before = now + self.policy.backoff_delay(
            lease.index, lease.dispatches
        )
        return True

    def fail(self, lease: Lease, error: str, message: str) -> None:
        """Terminal failure without re-queueing (e.g. dead fleet)."""
        lease.state = LEASE_FAILED
        lease.worker = None
        lease.deadline = None
        lease.last_error = error
        lease.last_message = message

    def failure_record(self, lease: Lease, pixel_count: int = 0) -> FailureRecord:
        return FailureRecord(
            index=lease.index,
            error=lease.last_error or "SimulationError",
            message=lease.last_message or "fleet lease failed",
            attempts=lease.dispatches,
            pixel_count=pixel_count,
        )

    def forget_job(self, job: str) -> None:
        """Drop a gathered job's leases so the table stays bounded."""
        for lease_id in [
            lease_id
            for lease_id, lease in self.leases.items()
            if lease.job == job
        ]:
            del self.leases[lease_id]
