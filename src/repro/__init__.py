"""Zatel: sample complexity-aware scale-model simulation for ray tracing.

A reproduction of Grigoryan, Chou and Aamodt (ISPASS 2024).  The package
splits into:

* :mod:`repro.scene`  — geometry, BVH, materials and the LumiBench-like
  procedural scene library;
* :mod:`repro.tracer` — the functional ray tracer producing per-pixel
  traces (heatmap profiling + workload definition);
* :mod:`repro.gpu`    — the cycle-level GPU timing simulator (the
  Vulkan-Sim stand-in) with Table II's Mobile SoC / RTX 2060 presets;
* :mod:`repro.core`   — the Zatel methodology itself (Fig. 3's seven
  steps);
* :mod:`repro.models` — baselines (sampling-only, analytical, PKA-style);
* :mod:`repro.harness`— cached experiment runner and reporting.

Quickstart::

    from repro import (
        MOBILE_SOC, RenderSettings, Zatel, make_scene, trace_frame,
    )

    scene = make_scene("PARK")
    frame = trace_frame(scene, RenderSettings(width=128, height=128))
    result = Zatel(MOBILE_SOC).predict(scene, frame)
    print(result.metrics)
"""

from .core import (
    ExecutionPolicy,
    Heatmap,
    Zatel,
    ZatelConfig,
    ZatelResult,
    quantize_heatmap,
)
from .errors import (
    CacheCorruptionError,
    DegradedResultError,
    FailureRecord,
    GroupTimeoutError,
    SimulationError,
    WorkerCrashError,
)
from .gpu import (
    METRICS,
    MOBILE_SOC,
    RTX_2060,
    CycleSimulator,
    GPUConfig,
    SimulationStats,
    compile_kernel,
)
from .harness import Runner, Workload, shared_runner
from .models import AnalyticalModel, PKAProjection, SamplingPredictor
from .scene import (
    REPRESENTATIVE_SUBSET,
    SCENE_NAMES,
    TUNING_SCENES,
    Scene,
    build_scene,
    make_scene,
)
from .tracer import FrameTrace, FunctionalTracer, RenderSettings, trace_frame

__version__ = "1.0.0"

__all__ = [
    "AnalyticalModel",
    "CacheCorruptionError",
    "CycleSimulator",
    "DegradedResultError",
    "ExecutionPolicy",
    "FailureRecord",
    "FrameTrace",
    "GroupTimeoutError",
    "SimulationError",
    "WorkerCrashError",
    "FunctionalTracer",
    "GPUConfig",
    "Heatmap",
    "METRICS",
    "MOBILE_SOC",
    "PKAProjection",
    "REPRESENTATIVE_SUBSET",
    "RTX_2060",
    "Runner",
    "SCENE_NAMES",
    "SamplingPredictor",
    "Scene",
    "SimulationStats",
    "TUNING_SCENES",
    "Workload",
    "Zatel",
    "ZatelConfig",
    "ZatelResult",
    "build_scene",
    "compile_kernel",
    "make_scene",
    "quantize_heatmap",
    "shared_runner",
    "trace_frame",
    "__version__",
]
