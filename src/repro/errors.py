"""Structured error taxonomy for the execution engine and harness.

Every failure mode the fault-tolerant paths can hit has a dedicated
exception type, so callers can distinguish "a worker died" from "the
cached artifact is unreadable" from "too few groups survived to combine
honestly".  All of them derive from :class:`SimulationError`, which the
CLI maps to a non-zero exit code with a one-line message.

:class:`FailureRecord` is the audit entry attached to degraded results:
one record per permanently-failed group, preserving what went wrong and
how many attempts were spent before giving up.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SimulationError",
    "GroupTimeoutError",
    "WorkerCrashError",
    "CacheCorruptionError",
    "DegradedResultError",
    "FailureRecord",
]


class SimulationError(RuntimeError):
    """Base class for all structured simulation/execution failures."""


class GroupTimeoutError(SimulationError):
    """A group simulation exceeded its per-attempt wall-clock budget."""


class WorkerCrashError(SimulationError):
    """A worker process died (segfault, OOM-kill, ``os._exit``) without
    reporting a result."""


class CacheCorruptionError(SimulationError):
    """An on-disk cached artifact (frame trace, full-sim stats, group
    checkpoint) failed to load — typically a truncated pickle from an
    interrupted run.  Loaders delete the file and recompute; this error
    is raised only when recovery is impossible, otherwise it is logged."""


class DegradedResultError(SimulationError):
    """Too few groups survived to produce a trustworthy combined result
    (quorum violation), or a degraded result was used where full
    coverage is required."""


@dataclass(frozen=True)
class FailureRecord:
    """Audit entry for one permanently-failed group.

    Attributes:
        index: the group's index in the image-plane partition.
        error: exception class name of the final failure
            (e.g. ``"WorkerCrashError"``, ``"GroupTimeoutError"``).
        message: human-readable detail of the final failure.
        attempts: total attempts spent (first try + retries).
        pixel_count: pixels the group covered; lets degraded combines
            and reports quantify lost plane coverage.
    """

    index: int
    error: str
    message: str
    attempts: int
    pixel_count: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"group {self.index}: {self.error} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}"
            f" — {self.message}"
        )
