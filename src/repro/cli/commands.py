"""Implementations of the CLI subcommands.

Each command takes the parsed ``argparse`` namespace and returns an exit
code.  Output goes to stdout; images to the path given (or a default under
the working directory).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core import (
    AdaptiveZatel,
    ExecutionPolicy,
    Heatmap,
    Zatel,
    ZatelConfig,
    quantize_heatmap,
)
from ..core.extrapolate import fit_power_law
from ..gpu import METRICS, compile_kernel
from ..gpu.configfile import resolve_gpu
from ..harness import (
    Workload,
    degraded_summary,
    format_table,
    metric_errors,
    shared_runner,
)
from ..scene import SCENE_NAMES, make_scene
from ..scene.library import EXTRA_SCENES
from ..tracer import FunctionalTracer
from ..viz import write_ppm

__all__ = [
    "cmd_scenes",
    "cmd_configs",
    "cmd_render",
    "cmd_heatmap",
    "cmd_simulate",
    "cmd_predict",
    "cmd_serve",
    "cmd_sweep",
    "cmd_campaign",
]


def _apply_sim_backend(gpu, args):
    """Fold ``--sim-backend`` / ``--sim-shards`` overrides into a config.

    The flags beat both the preset default and an INI file's
    ``sim_backend`` key; absent flags leave the resolved config alone.
    """
    from dataclasses import replace

    overrides = {}
    if getattr(args, "sim_backend", None):
        overrides["sim_backend"] = args.sim_backend
    if getattr(args, "sim_shards", None):
        overrides["sim_shards"] = args.sim_shards
    return replace(gpu, **overrides) if overrides else gpu


def _workload(args) -> Workload:
    name = args.scene.upper()
    if name not in SCENE_NAMES + EXTRA_SCENES:
        raise ValueError(
            f"unknown scene {args.scene!r}; available: "
            f"{', '.join(SCENE_NAMES + EXTRA_SCENES)}"
        )
    return Workload(
        name, width=args.size, height=args.size,
        samples_per_pixel=args.spp, seed=args.seed,
        backend=getattr(args, "backend", "packet"),
    )


def cmd_scenes(args) -> int:  # noqa: ARG001 - uniform command signature
    """List the scene library with geometry statistics."""
    rows = []
    for name in SCENE_NAMES + EXTRA_SCENES:
        scene = make_scene(name)
        rows.append(
            [
                name + ("*" if name in EXTRA_SCENES else ""),
                scene.triangle_count(),
                scene.node_count(),
                scene.bvh.depth(),
                len(scene.lights),
                scene.max_bounces,
            ]
        )
    print(
        format_table(
            ["scene", "triangles", "BVH nodes", "depth", "lights", "bounces"],
            rows,
            title="Scene library (LumiBench stand-ins; see DESIGN.md)",
        )
    )
    print("* extra scene, outside the paper's evaluated set")
    return 0


def cmd_configs(args) -> int:  # noqa: ARG001
    """Show the Table II GPU presets and their downscaled derivations."""
    from ..gpu.config import preset

    for key in ("mobile", "rtx2060"):
        gpu = preset(key)
        print(gpu.describe())
        k = gpu.downscale_factor()
        print(f"  downscale factor K = {k} -> {gpu.downscale(k).name}")
        print()
    return 0


def cmd_render(args) -> int:
    """Render the scene's radiance image to PPM."""
    workload = _workload(args)
    scene = make_scene(workload.scene_name)
    image = FunctionalTracer(scene, workload.settings()).render_image()
    out = Path(args.out or f"{workload.scene_name.lower()}_{args.size}.ppm")
    write_ppm(out, image)
    print(f"wrote {out}")
    return 0


def cmd_heatmap(args) -> int:
    """Write the execution-time heatmap (optionally quantized)."""
    workload = _workload(args)
    runner = shared_runner()
    frame = runner.frame(workload)
    heatmap = Heatmap.from_frame(frame)
    if args.quantize > 0:
        quantized = quantize_heatmap(heatmap, args.quantize, seed=args.seed)
        image = quantized.to_colors()
        print(
            "quantized to "
            f"{quantized.num_colors} colors; coolness values "
            f"{[round(float(c), 2) for c in quantized.coolness]}"
        )
    else:
        image = heatmap.to_colors()
    out = Path(args.out or f"{workload.scene_name.lower()}_heatmap.ppm")
    write_ppm(out, image)
    print(
        f"wrote {out} (mean temperature {heatmap.mean_temperature():.2f})"
    )
    return 0


def cmd_simulate(args) -> int:
    """Run the full cycle-level simulation and print Table I metrics."""
    workload = _workload(args)
    gpu = _apply_sim_backend(resolve_gpu(args.gpu), args)
    runner = shared_runner()
    stats = runner.full_sim(workload, gpu)
    print(stats.summary())
    return 0


def cmd_predict(args) -> int:
    """Run the Zatel pipeline, optionally validating against ground truth."""
    if getattr(args, "remote", None):
        return _cmd_predict_remote(args)
    workload = _workload(args)
    gpu = _apply_sim_backend(resolve_gpu(args.gpu), args)
    runner = shared_runner()
    scene = runner.scene(workload.scene_name)
    frame = runner.frame(workload)
    config = ZatelConfig(
        division=args.division,
        distribution=args.distribution,
        fraction_override=args.fraction,
        sampler=getattr(args, "sampler", "heatmap"),
        replicates=getattr(args, "replicates", 5),
    )
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.resume:
        checkpoint_dir = runner.checkpoint_dir(workload, gpu)
    policy = ExecutionPolicy(
        workers=args.workers if args.workers else 1,
        timeout=args.timeout,
        retries=args.retries,
        checkpoint_dir=checkpoint_dir,
        resume=args.resume,
        seed=args.seed,
    )
    predictor_class = AdaptiveZatel if args.adaptive else Zatel
    result = predictor_class(gpu, config).predict(scene, frame, policy=policy)
    if getattr(args, "json", False):
        return _print_predict_json(args, workload, gpu, runner, result)
    sampler_name = result.sampler.get("name", "heatmap")
    sampler_note = (
        "" if sampler_name == "heatmap" else f", sampler {sampler_name}"
    )
    print(
        f"Zatel on {workload.scene_name} / {gpu.name}: "
        f"K={result.downscale_factor}, "
        f"mean traced fraction {result.mean_fraction():.0%}{sampler_note}"
    )
    if result.degraded:
        print(degraded_summary(result))
    intervals = result.confidence_intervals()
    if args.compare:
        full = runner.full_sim(workload, gpu)
        errors = metric_errors(result.metrics, full)
        rows = [
            [name, full.metric(name), result.metrics[name], errors[name]]
            for name in METRICS
        ]
        print(
            format_table(
                ["metric", "full sim", "Zatel", "error"], rows,
                title=f"prediction vs ground truth "
                f"(speedup {result.speedup_vs(full):.1f}x)",
            )
        )
        for name in METRICS:
            if name in intervals:
                lo, hi = intervals[name]
                print(f"  {name:16s} 95% CI [{lo:.4f}, {hi:.4f}]")
    else:
        for name in METRICS:
            line = f"  {name:16s} {result.metrics[name]:12.4f}"
            if name in intervals:
                lo, hi = intervals[name]
                line += f"  95% CI [{lo:.4f}, {hi:.4f}]"
            print(line)
    return 0


def _cmd_predict_remote(args) -> int:
    """``predict --remote URL``: run the prediction on a ``zatel serve``
    instance instead of in-process.

    The request carries only declarative spec fields; execution knobs
    (``--workers``, ``--timeout``, ``--resume``, ...) stay with the
    server's operator, and ``--compare`` needs a local full simulation,
    so both are rejected here.
    """
    import json

    from .client import ZatelClient

    for flag in ("compare", "resume"):
        if getattr(args, flag, False):
            raise ValueError(f"--{flag} is not supported with --remote")
    if getattr(args, "checkpoint_dir", None):
        raise ValueError("--checkpoint-dir is not supported with --remote")

    request = {
        "scene": args.scene.upper(),
        "size": args.size,
        "spp": args.spp,
        "seed": args.seed,
        "backend": args.backend,
        "gpu": args.gpu,
        "division": args.division,
        "distribution": args.distribution,
        "adaptive": bool(args.adaptive),
        "sampler": getattr(args, "sampler", "heatmap"),
        "replicates": getattr(args, "replicates", 5),
    }
    if args.fraction is not None:
        request["fraction"] = args.fraction
    payload = ZatelClient(
        args.remote,
        backpressure_retries=max(0, getattr(args, "max_retries", 5)),
    ).predict(request)
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    source = "cache" if payload.get("cached") else f"job {payload.get('job')}"
    print(
        f"Zatel on {payload['scene']} / {payload['gpu']} "
        f"(served by {args.remote}, {source}): "
        f"K={payload['downscale_factor']}, "
        f"mean traced fraction {payload['mean_fraction']:.0%}"
    )
    if payload.get("degraded"):
        print(
            f"  DEGRADED: coverage {payload['coverage']:.0%}, "
            f"{len(payload['failures'])} failed group(s)"
        )
    intervals = payload.get("confidence_intervals") or {}
    for name in METRICS:
        line = f"  {name:16s} {payload['metrics'][name]:12.4f}"
        if name in intervals:
            lo, hi = intervals[name]
            line += f"  95% CI [{lo:.4f}, {hi:.4f}]"
        print(line)
    return 0


def cmd_serve(args) -> int:
    """``zatel serve``: run the HTTP prediction service until Ctrl-C.

    With ``--fleet N`` the service becomes a coordinator: it opens the
    fleet listener, spawns N supervised ``repro worker`` processes
    against the shared cache directory, and scatters every prediction's
    group simulations to them.  SIGTERM drains gracefully either way:
    stop intake, finish (or abandon) in-flight jobs, dismiss the fleet.
    """
    import logging
    import signal

    from ..harness.runner import Runner
    from ..service import ZatelService

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    runner = (
        Runner(cache_dir=args.cache_dir) if args.cache_dir else shared_runner()
    )
    policy = ExecutionPolicy(
        workers=args.exec_workers if args.exec_workers else 1
    )
    fleet = None
    supervisor = None
    if getattr(args, "fleet", 0):
        from ..fleet import FleetCoordinator, FleetPolicy, WorkerSupervisor

        fleet = FleetCoordinator(
            policy=FleetPolicy(
                lease_timeout=args.lease_timeout,
                heartbeat_grace=args.heartbeat_grace,
                min_workers=args.min_workers,
            ),
            host=args.host,
            port=args.fleet_port,
        ).start()
        from ..fleet.dispatch import make_result_validator

        fleet.result_validator = make_result_validator(runner.store)
        supervisor = WorkerSupervisor(
            address=fleet.address,
            cache_dir=str(runner.store.root),
            count=args.fleet,
            chaos_json=getattr(args, "chaos", None),
        )
        supervisor.start()
    service = ZatelService(
        runner=runner,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        policy=policy,
        use_cache=not args.no_cache,
        fleet=fleet,
        fleet_supervisor=supervisor,
        timeline_interval=getattr(args, "timeline_interval", 1024),
    )
    signal.signal(signal.SIGTERM, lambda signum, frame: service.shutdown())
    try:
        service.run()
    finally:
        if supervisor is not None:
            supervisor.stop()
        if fleet is not None:
            fleet.close()
    return 0


def cmd_worker(args) -> int:
    """``zatel worker``: one fleet worker process.

    Connects to the coordinator named by ``--connect``, executes leased
    groups through the shared cache directory, and drains gracefully on
    SIGTERM (finishes the current lease, says goodbye, exits 0).
    """
    import logging
    import signal

    from ..core.stages.store import ArtifactStore
    from ..fleet import FleetWorker

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(
            f"--connect must be HOST:PORT, got {args.connect!r}"
        )
    chaos = None
    if getattr(args, "chaos", None):
        from ..testing.chaos import ChaosPlan

        chaos = ChaosPlan.from_json(args.chaos)
    worker = FleetWorker(
        host=host,
        port=int(port_text),
        store=ArtifactStore(args.cache_dir),
        worker_id=args.worker_id,
        chaos=chaos,
    )
    signal.signal(signal.SIGTERM, lambda signum, frame: worker.request_drain())
    worker.connect()
    worker.run()
    return 0


def _print_predict_json(args, workload, gpu, runner, result) -> int:
    """``predict --json``: machine-readable result for scripting.

    The payload is :func:`~repro.harness.service.result_payload` — the
    same schema ``POST /predict`` returns — so scripts can switch
    between local and remote execution without reparsing: metrics plus
    the full audit surface (degraded flag, plane coverage, one entry per
    permanently-failed group, serial-fallback note).
    """
    import json

    from ..harness.service import result_payload

    payload = result_payload(
        workload.scene_name, workload.backend, gpu.name, result
    )
    if args.compare:
        full = runner.full_sim(workload, gpu)
        errors = metric_errors(result.metrics, full)
        payload["full_sim"] = {name: full.metric(name) for name in METRICS}
        payload["errors"] = errors
        payload["speedup"] = result.speedup_vs(full)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_trace(args) -> int:
    """Export a frame trace (.ztrace), or with ``--timeline`` a telemetry
    timeline trace (.zperf); ``--serve FILE.zperf`` instead explores an
    existing trace in the browser dashboard, offline."""
    if getattr(args, "serve", None):
        from ..service.dashboard import serve_trace

        if not Path(args.serve).is_file():
            raise ValueError(f"no such trace file: {args.serve}")
        serve_trace(args.serve, host=args.host, port=args.port)
        return 0
    if args.scene is None:
        raise ValueError(
            "a scene name is required (only `trace --serve FILE.zperf` "
            "runs without one)"
        )
    if getattr(args, "timeline", False):
        return _cmd_trace_timeline(args)
    from ..tracer import save_frame

    workload = _workload(args)
    runner = shared_runner()
    frame = runner.frame(workload)
    out = Path(
        args.out
        or f"{workload.scene_name.lower()}_{args.size}x{args.size}.ztrace"
    )
    save_frame(frame, out)
    size_kb = out.stat().st_size / 1024
    print(
        f"wrote {out} ({size_kb:.0f} KB, {len(frame.pixels)} pixels, "
        f"{sum(t.total_nodes() for t in frame.pixels.values())} node visits)"
    )
    return 0


def _cmd_trace_timeline(args) -> int:
    """``trace --timeline``: simulate with the telemetry bus on and write
    a ``.zperf`` JSON-lines file, then render the timeline to the
    terminal."""
    from ..gpu.telemetry import export_zperf
    from ..viz.timeline import render_interval_activity, render_timeline

    workload = _workload(args)
    if args.interval <= 0:
        raise ValueError("--interval must be a positive cycle count")
    gpu = resolve_gpu(args.gpu)
    runner = shared_runner()
    stats = runner.telemetry_sim(workload, gpu, interval=args.interval)
    record = stats.telemetry
    out = Path(
        args.out
        or f"{workload.scene_name.lower()}_{args.size}x{args.size}.zperf"
    )
    export_zperf(
        out,
        stats,
        meta={
            "scene": workload.scene_name,
            "width": workload.width,
            "height": workload.height,
            "spp": workload.samples_per_pixel,
            "seed": workload.seed,
        },
    )
    size_kb = out.stat().st_size / 1024
    print(
        f"wrote {out} ({size_kb:.0f} KB, {len(record.snapshots)} interval "
        f"snapshots @ {record.interval} cycles, "
        f"{len(record.events)} timeline events)"
    )
    print()
    print(render_timeline(record.events, stats.cycles))
    print()
    print(render_interval_activity(record.deltas()))
    return 0


def cmd_inspect(args) -> int:
    """Summarize a .ztrace file without loading the owning scene."""
    from ..tracer import load_frame

    frame = load_frame(args.file)
    nodes = sum(t.total_nodes() for t in frame.pixels.values())
    tris = sum(t.total_tris() for t in frame.pixels.values())
    instructions = sum(
        t.total_instructions() for t in frame.pixels.values()
    )
    print(
        f"{args.file}: scene {frame.scene_name}, "
        f"{frame.width}x{frame.height} @ {frame.samples_per_pixel} spp"
    )
    print(f"  pixels traced      {len(frame.pixels)}")
    print(f"  BVH node visits    {nodes}")
    print(f"  triangle tests     {tris}")
    print(f"  shader instructions {instructions}")
    print(f"  total cost proxy   {frame.total_cost():.0f}")
    return 0


def cmd_sweep(args) -> int:
    """§IV-D in miniature: error and speedup per traced percentage.

    Deprecated alias: the sweep is now a one-point-per-percentage
    sampling-mode samplesheet executed by the campaign engine, so its
    profile/quantize stages deduplicate through the same planner (and
    the same shared store) every other campaign uses.  Output and
    numbers are unchanged; prefer ``campaign run`` for multi-scene or
    multi-GPU grids.
    """
    from ..core.stages.campaign import parse_samplesheet
    from ..errors import SimulationError

    workload = _workload(args)
    gpu = resolve_gpu(args.gpu)
    runner = shared_runner()
    full = runner.full_sim(workload, gpu)

    percentages = [int(p) for p in args.percentages.split(",") if p.strip()]
    document = {
        "campaign": {
            "name": f"sweep-{workload.scene_name.lower()}",
            "size": args.size,
            "spp": args.spp,
            "seed": args.seed,
            "backend": workload.backend,
            "gpus": [args.gpu],
        },
        "points": [
            {
                "scene": workload.scene_name,
                "mode": "sampling",
                "fraction": perc / 100.0,
                "config": {"seed": args.seed},
            }
            for perc in percentages
        ],
    }
    result = runner.campaign(parse_samplesheet(document))

    rows = []
    speedups = []
    for perc, outcome in zip(percentages, result.outcomes):
        if not outcome.ok:
            raise SimulationError(
                f"sweep point at {perc}% failed: {outcome.error}"
            )
        prediction = outcome.value
        errors = metric_errors(prediction.metrics, full)
        speedup = prediction.speedup_vs(full)
        speedups.append(speedup)
        rows.append([f"{perc}%", errors["cycles"], errors["ipc"], speedup])
    print(
        format_table(
            ["traced", "cycles err %", "ipc err %", "speedup x"], rows,
            title=f"sampling sweep on {workload.scene_name} / {gpu.name}",
            precision=1,
        )
    )
    if len(percentages) >= 2:
        a, b = fit_power_law(
            [float(p) for p in percentages], speedups
        )
        print(f"fitted speedup(perc) = {a:.1f} * perc^{b:.2f} "
              "(paper eq. 4: 181 * perc^-1.15)")
    print("note: `sweep` is a deprecated alias over the campaign engine "
          "(see `campaign run --help`)")
    return 0


def _print_campaign_report(report: dict) -> None:
    """Human summary of a campaign report (local or served)."""
    rows = []
    for entry in report["points"]:
        notes: list[str] = []
        if entry.get("error"):
            notes.append(entry["error"])
        notes.extend(entry.get("violations", ()))
        sequence = entry.get("sequence_cache")
        if sequence:
            notes.append(
                f"carried {sequence['carried_hits']}/{sequence['lookups']} "
                "occlusion lookups"
            )
        cycles = entry.get("metrics", {}).get("cycles", "-")
        rows.append(
            [
                entry["scene"],
                entry["gpu"],
                entry["mode"],
                entry["verdict"],
                cycles,
                "; ".join(notes) if notes else "",
            ]
        )
    print(
        format_table(
            ["point", "gpu", "mode", "verdict", "cycles", "notes"], rows,
            title=(
                f"campaign {report['campaign']} "
                f"({report['fingerprint'][:12]}): "
                f"{len(report['points'])} points, {report['waves']} wave(s)"
            ),
            precision=0,
        )
    )
    dag = report["dag"]
    print(
        f"dag: {dag['total_nodes']} stage nodes planned, "
        f"{dag['unique_nodes']} unique "
        f"({dag['deduplicated_nodes']} deduplicated)"
    )
    if report.get("sequence_hit_rate"):
        print(
            "sequence cache: "
            f"{report['sequence_hit_rate']:.1%} of confirmed occlusion "
            "predictions came from entries carried across frames"
        )
    verdicts = ", ".join(
        f"{name}={count}"
        for name, count in report["verdicts"].items()
        if count
    )
    print(f"verdicts: {verdicts}")


def cmd_campaign(args) -> int:
    """``campaign run``/``campaign status``: the samplesheet front end."""
    from .client import ZatelClient

    if args.action == "status":
        payload = ZatelClient(args.remote).campaign_status(args.job_id)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 3 if payload.get("status") == "failed" else 0

    if args.remote is not None:
        from ..core.stages.campaign import (
            load_samplesheet_document,
            parse_samplesheet,
        )

        document = load_samplesheet_document(args.samplesheet)
        # Validate locally first: a schema error costs one parse, not a
        # round trip, and the message names the offending row either way.
        parse_samplesheet(document, name=Path(args.samplesheet).stem)
        client = ZatelClient(
            args.remote,
            backpressure_retries=max(0, getattr(args, "max_retries", 5)),
        )
        payload = client.campaign({**document, "wait": not args.no_wait})
        if args.no_wait:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        report = payload
    else:
        from ..core.stages.campaign import load_samplesheet
        from ..harness.reporting import campaign_report

        campaign = load_samplesheet(args.samplesheet)
        result = shared_runner().campaign(campaign)
        report = campaign_report(result)

    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print_campaign_report(report)
        if args.out:
            print(f"wrote {args.out}")
    return 0 if report.get("succeeded", False) else 3
