"""``python -m repro`` — the command-line interface.

Subcommands cover the workflows a downstream user runs most:

=============  ==========================================================
``scenes``     list the scene library with geometry statistics
``configs``    show the Table II GPU presets (and their downscaled forms)
``render``     render a scene to a PPM image
``heatmap``    write a scene's execution-time heatmap (optionally
               quantized) as a PPM
``simulate``   run the full cycle-level simulation and print Table I
``predict``    run the Zatel pipeline (optionally validating against a
               full simulation)
``sweep``      the accuracy/speedup trade-off sweep of §IV-D (now a thin
               alias over the campaign engine)
``campaign``   run a TOML/JSON samplesheet of scene recipes x GPU grids
               as one deduplicated DAG with QC gates (``campaign run``),
               locally or against a service (``POST /campaigns``); poll a
               submitted job with ``campaign status``
``trace``      export a frame trace as a portable ``.ztrace`` file; with
               ``--timeline`` run the simulator with telemetry on and
               export a ``.zperf`` timeline trace; with ``--serve`` host
               the observability dashboard over an existing ``.zperf``
               (offline, no service needed)
``inspect``    summarize a ``.ztrace`` file
``serve``      run the HTTP prediction service (``POST /predict``,
               ``GET /jobs/<id>``, ``GET /healthz``, ``GET /readyz``,
               ``GET /metrics``); ``--fleet N`` scatters group work to
               N supervised worker processes
``worker``     run one fleet worker process connected to a coordinator
               (normally spawned by ``serve --fleet``)
=============  ==========================================================

Every command accepts ``--size`` (plane side length) and caches frame
traces under ``.cache/`` through the shared harness runner, so repeated
invocations are fast.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import SimulationError
from .commands import (
    cmd_campaign,
    cmd_configs,
    cmd_heatmap,
    cmd_inspect,
    cmd_predict,
    cmd_render,
    cmd_scenes,
    cmd_serve,
    cmd_simulate,
    cmd_sweep,
    cmd_trace,
    cmd_worker,
)

__all__ = ["build_parser", "console_main", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Zatel: sample complexity-aware scale-model simulation for "
            "ray tracing (ISPASS 2024 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("scenes", help="list the scene library").set_defaults(
        func=cmd_scenes
    )
    subparsers.add_parser(
        "configs", help="show GPU configuration presets"
    ).set_defaults(func=cmd_configs)

    def add_workload_args(
        p: argparse.ArgumentParser,
        default_size: int = 96,
        scene_optional: bool = False,
    ):
        if scene_optional:
            p.add_argument(
                "scene", nargs="?", default=None,
                help="library scene name (see `repro scenes`)",
            )
        else:
            p.add_argument(
                "scene", help="library scene name (see `repro scenes`)"
            )
        p.add_argument("--size", type=int, default=default_size,
                       help="image plane side length")
        p.add_argument("--spp", type=int, default=1, help="samples per pixel")
        p.add_argument("--seed", type=int, default=0, help="trace RNG seed")
        p.add_argument(
            "--backend", choices=("packet", "scalar"), default="packet",
            help=(
                "tracing backend: batched wavefront kernels (packet) or "
                "one ray at a time (scalar); traces are byte-identical"
            ),
        )

    def add_sim_backend_args(p: argparse.ArgumentParser):
        p.add_argument(
            "--sim-backend", choices=("serial", "sharded"), default=None,
            help=(
                "cycle-simulator backend: exact event loop (serial, the "
                "default) or epoch-synchronized parallel SM shards "
                "(sharded; deterministic, bounded timing drift)"
            ),
        )
        p.add_argument(
            "--sim-shards", type=int, default=None,
            help=(
                "shard count for --sim-backend sharded (clamped to a "
                "divisor of gcd(SMs, memory partitions))"
            ),
        )

    render = subparsers.add_parser("render", help="render a scene to PPM")
    add_workload_args(render)
    render.add_argument("--out", default=None, help="output .ppm path")
    render.set_defaults(func=cmd_render)

    heatmap = subparsers.add_parser(
        "heatmap", help="write a scene's execution-time heatmap"
    )
    add_workload_args(heatmap)
    heatmap.add_argument("--out", default=None, help="output .ppm path")
    heatmap.add_argument(
        "--quantize", type=int, default=0, metavar="K",
        help="K-Means quantize to K colors before writing (0 = raw)",
    )
    heatmap.set_defaults(func=cmd_heatmap)

    simulate = subparsers.add_parser(
        "simulate", help="full cycle-level simulation (ground truth)"
    )
    add_workload_args(simulate)
    simulate.add_argument("--gpu", default="mobile",
                          help="GPU preset: mobile or rtx2060")
    add_sim_backend_args(simulate)
    simulate.set_defaults(func=cmd_simulate)

    predict = subparsers.add_parser("predict", help="run the Zatel pipeline")
    add_workload_args(predict)
    predict.add_argument("--gpu", default="mobile")
    add_sim_backend_args(predict)
    predict.add_argument("--division", choices=("fine", "coarse"), default="fine")
    predict.add_argument(
        "--distribution", choices=("uniform", "lintmp", "exptmp"),
        default="uniform",
    )
    predict.add_argument(
        "--fraction", type=float, default=None,
        help="pin the traced fraction (default: equation (1))",
    )
    predict.add_argument(
        "--sampler", choices=("heatmap", "ranked_set", "two_phase"),
        default="heatmap",
        help=(
            "pixel-selection engine: the paper's K-Means heatmap quotas "
            "(heatmap, point prediction), ranked set sampling with "
            "repeated subsampling (ranked_set), or two-phase stratified "
            "sampling with Neyman allocation (two_phase); the latter two "
            "report per-metric variances and confidence intervals"
        ),
    )
    predict.add_argument(
        "--replicates", type=int, default=5, metavar="R",
        help=(
            "independent replicate subsets for the variance-estimating "
            "samplers (default 5; ignored by the heatmap sampler)"
        ),
    )
    predict.add_argument(
        "--workers", type=int, default=None,
        help="run the K group simulations on this many CPU cores",
    )
    predict.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-group-attempt wall-clock budget; a hung worker is "
            "killed and retried (requires --workers > 1)"
        ),
    )
    predict.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-attempts per group after a crash/timeout/error (default 2)",
    )
    predict.add_argument(
        "--resume", action="store_true",
        help=(
            "checkpoint each completed group under the cache dir and "
            "resume a previously interrupted prediction from there"
        ),
    )
    predict.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help=(
            "directory for per-group checkpoints (default: derived from "
            "the workload under .cache/checkpoints/; implies checkpointing)"
        ),
    )
    predict.add_argument(
        "--compare", action="store_true",
        help="also run the full simulation and print per-metric errors",
    )
    predict.add_argument(
        "--json", action="store_true",
        help=(
            "emit the result as JSON on stdout (metrics, degraded flag, "
            "plane coverage, failure audit) instead of tables"
        ),
    )
    predict.add_argument(
        "--adaptive", action="store_true",
        help=(
            "use the adaptive sample-complexity controller instead of the "
            "paper's fixed equation-(1) fraction (extension)"
        ),
    )
    predict.add_argument(
        "--remote", default=None, metavar="URL",
        help=(
            "send the prediction to a running `repro serve` instance "
            "(e.g. http://127.0.0.1:8700) instead of computing locally"
        ),
    )
    predict.add_argument(
        "--max-retries", type=int, default=5, metavar="N",
        help=(
            "with --remote: 429 backpressure responses to absorb (capped "
            "exponential backoff) before giving up (default 5)"
        ),
    )
    predict.set_defaults(func=cmd_predict)

    sweep = subparsers.add_parser(
        "sweep",
        help=(
            "accuracy/speedup sweep over traced fractions (§IV-D); "
            "deprecated alias: runs as a one-point-per-percentage "
            "campaign (prefer `campaign run` for grids)"
        ),
    )
    add_workload_args(sweep)
    sweep.add_argument("--gpu", default="mobile")
    sweep.add_argument(
        "--percentages", default="10,20,30,40,50,60,70,80,90",
        help="comma-separated traced percentages",
    )
    sweep.set_defaults(func=cmd_sweep)

    campaign = subparsers.add_parser(
        "campaign",
        help=(
            "execute a TOML/JSON samplesheet (scene recipes x GPU grids "
            "x samplers) as one deduplicated DAG with QC gates"
        ),
    )
    campaign_sub = campaign.add_subparsers(dest="action", required=True)
    campaign_run = campaign_sub.add_parser(
        "run", help="run a samplesheet locally or on a serve instance"
    )
    campaign_run.add_argument(
        "samplesheet", help="path to a .toml or .json samplesheet"
    )
    campaign_run.add_argument(
        "--remote", default=None, metavar="URL",
        help=(
            "submit to a running `repro serve` instance "
            "(POST /campaigns) instead of executing locally"
        ),
    )
    campaign_run.add_argument(
        "--no-wait", action="store_true",
        help=(
            "with --remote: enqueue and print the job id instead of "
            "blocking (poll with `campaign status`)"
        ),
    )
    campaign_run.add_argument(
        "--json", action="store_true",
        help="emit the full campaign report as JSON on stdout",
    )
    campaign_run.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON campaign report to FILE",
    )
    campaign_run.add_argument(
        "--max-retries", type=int, default=5, metavar="N",
        help=(
            "with --remote: 429 backpressure responses to absorb before "
            "giving up (default 5)"
        ),
    )
    campaign_run.set_defaults(func=cmd_campaign)
    campaign_status = campaign_sub.add_parser(
        "status", help="poll a campaign job submitted with --no-wait"
    )
    campaign_status.add_argument("job_id", help="the job id the 202 returned")
    campaign_status.add_argument(
        "--remote", required=True, metavar="URL",
        help="the serve instance holding the job",
    )
    campaign_status.set_defaults(func=cmd_campaign)

    trace = subparsers.add_parser(
        "trace",
        help=(
            "export a frame trace (.ztrace), a telemetry timeline trace "
            "(.zperf) with --timeline, or explore an existing .zperf in "
            "the browser with --serve"
        ),
    )
    add_workload_args(trace, scene_optional=True)
    trace.add_argument("--out", default=None,
                       help="output .ztrace/.zperf path")
    trace.add_argument(
        "--timeline", action="store_true",
        help=(
            "run the cycle simulator with the telemetry bus enabled and "
            "export a .zperf timeline trace (JSON lines: interval "
            "snapshots, contention windows, summary) instead of a .ztrace"
        ),
    )
    trace.add_argument(
        "--gpu", default="mobile",
        help="GPU preset or INI path for --timeline (default mobile)",
    )
    trace.add_argument(
        "--interval", type=int, default=1024, metavar="CYCLES",
        help=(
            "cycles between telemetry interval snapshots for --timeline "
            "(default 1024)"
        ),
    )
    trace.add_argument(
        "--serve", default=None, metavar="FILE.zperf",
        help=(
            "serve the observability dashboard over an existing .zperf "
            "trace (offline: no scene, no simulation, no service needed); "
            "open /dashboard on the printed address"
        ),
    )
    trace.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --serve (default 127.0.0.1)",
    )
    trace.add_argument(
        "--port", type=int, default=0,
        help="bind port for --serve; 0 picks an ephemeral port (default)",
    )
    trace.set_defaults(func=cmd_trace)

    inspect = subparsers.add_parser(
        "inspect", help="summarize a .ztrace file"
    )
    inspect.add_argument("file", help="path to a .ztrace file")
    inspect.set_defaults(func=cmd_inspect)

    serve = subparsers.add_parser(
        "serve", help="run the HTTP prediction service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8700,
                       help="bind port; 0 picks an ephemeral port")
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker threads consuming the job queue (default 2)",
    )
    serve.add_argument(
        "--exec-workers", type=int, default=None, metavar="N",
        help=(
            "forked CPU workers per prediction (GroupExecutor); "
            "default: serial in-process groups"
        ),
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=16, metavar="N",
        help=(
            "max jobs queued + running before requests get "
            "429 Too Many Requests (default 16)"
        ),
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact/result cache root (default: the shared .cache/)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the fingerprint-keyed result cache",
    )
    serve.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help=(
            "scatter group simulations to N supervised `repro worker` "
            "processes instead of running them in-process (0 = off)"
        ),
    )
    serve.add_argument(
        "--fleet-port", type=int, default=0, metavar="PORT",
        help="fleet coordinator listener port (default: ephemeral)",
    )
    serve.add_argument(
        "--min-workers", type=int, default=1, metavar="N",
        help=(
            "readiness quorum: /readyz turns 503 while fewer live fleet "
            "workers are connected (default 1)"
        ),
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=120.0, metavar="SECONDS",
        help=(
            "per-dispatch wall-clock budget for one leased group before "
            "the coordinator revokes and re-queues it (default 120)"
        ),
    )
    serve.add_argument(
        "--heartbeat-grace", type=float, default=5.0, metavar="SECONDS",
        help=(
            "heartbeat silence after which a fleet worker is declared "
            "dead and its leases re-queue (default 5)"
        ),
    )
    serve.add_argument(
        "--chaos", default=None, metavar="JSON",
        help=(
            "deterministic chaos schedule forwarded to every fleet "
            "worker (see repro.testing.chaos; testing only)"
        ),
    )
    serve.add_argument(
        "--timeline-interval", type=int, default=1024, metavar="CYCLES",
        help=(
            "telemetry snapshot interval served predictions run with, "
            "feeding GET /dashboard's timeline view (default 1024; 0 "
            "disables instrumentation — results are identical either way)"
        ),
    )
    serve.set_defaults(func=cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help="run one fleet worker (normally spawned by `serve --fleet`)",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's fleet listener address",
    )
    worker.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help=(
            "artifact-store root shared with the coordinator (bundles "
            "and results travel through it, not the socket)"
        ),
    )
    worker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable worker identity (default: w<pid>)",
    )
    worker.add_argument(
        "--chaos", default=None, metavar="JSON",
        help="deterministic chaos schedule for this worker (testing only)",
    )
    worker.set_defaults(func=cmd_worker)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SimulationError as error:
        # Structured execution failures (quorum violations, unrecoverable
        # corruption, ...) get their own exit code so sweep scripts can
        # tell "bad arguments" from "run degraded beyond rescue".
        print(f"execution error: {error}", file=sys.stderr)
        return 3
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def console_main() -> None:
    """``zatel`` console-script entry point (exits with :func:`main`'s code)."""
    sys.exit(main())
