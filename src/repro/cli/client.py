"""Stdlib HTTP client for a running ``zatel serve`` instance.

``zatel predict --remote http://host:port ...`` goes through
:class:`ZatelClient`, but it is equally usable from scripts::

    from repro.cli.client import ZatelClient

    client = ZatelClient("http://127.0.0.1:8700")
    payload = client.predict({"scene": "SPRNG", "size": 64})
    print(payload["metrics"]["cycles"])

The client speaks the :mod:`repro.service.protocol` schema, honors the
server's backpressure (retries a 429 after its ``Retry-After`` hint),
and raises :class:`RemoteServiceError` with the server's JSON error
payload for everything else.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any

from ..errors import SimulationError

__all__ = ["RemoteServiceError", "ZatelClient"]


class RemoteServiceError(SimulationError):
    """A non-retryable error response from the service.

    Derives from :class:`~repro.errors.SimulationError` so the CLI maps
    it to the execution-failure exit code (3) instead of a traceback.
    """

    def __init__(self, status: int, payload: dict | None) -> None:
        detail = (payload or {}).get("error", "no detail")
        super().__init__(f"service returned HTTP {status}: {detail}")
        self.status = status
        self.payload = payload or {}


class ZatelClient:
    """Minimal client for the prediction service.

    Args:
        base_url: e.g. ``http://127.0.0.1:8700`` (scheme required;
            a trailing slash is tolerated).
        timeout: per-request socket timeout in seconds.  A ``wait=true``
            predict blocks server-side for the whole computation, so
            this must cover the slowest expected prediction.
        backpressure_retries: how many 429 responses to absorb before
            giving up.
        backoff_base/backoff_cap: capped exponential backoff between 429
            retries.  The server's ``Retry-After`` hint, when present,
            acts as a floor — but never trusts the server alone: a 429
            without a hint still backs off instead of hot-looping.
        retry_seed: seeds the backoff jitter deterministically, so retry
            timing is reproducible in tests and no two misconfigured
            clients are *forced* to sync up their retry storms.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        backpressure_retries: int = 5,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
        retry_seed: int = 0,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(
                f"base_url must start with http:// or https://, got {base_url!r}"
            )
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.backpressure_retries = backpressure_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_seed = retry_seed

    def backoff_delay(self, attempt: int, hint: float | None = None) -> float:
        """Sleep before retry ``attempt`` (0-based): capped exponential
        with deterministic seeded jitter, floored by the server's
        ``Retry-After`` ``hint`` when one was given."""
        jitter = random.Random(self.retry_seed * 1_000_003 + attempt).random()
        delay = min(
            self.backoff_cap, self.backoff_base * (2.0**attempt) * (1.0 + jitter)
        )
        if hint is not None:
            delay = max(delay, min(self.backoff_cap, hint))
        return delay

    # -- endpoints ------------------------------------------------------

    def predict(self, request: dict[str, Any]) -> dict:
        """POST a predict request; returns the result payload.

        Retries while the server answers 429 (queue full), backing off
        exponentially — honoring the server's ``Retry-After`` hint as a
        floor when present, and never hot-looping when it is absent.
        """
        return self._post_backpressure("/predict", request)

    def campaign(self, samplesheet: dict[str, Any]) -> dict:
        """POST a samplesheet document to ``/campaigns``.

        ``samplesheet`` is the ``{"campaign": {...}, "points": [...]}``
        document (plus an optional transport-level ``wait`` key).  With
        ``wait`` true (the default) the response is the full campaign
        report; with ``wait: false`` it is a 202 body carrying the
        ``job`` id to poll via :meth:`campaign_status`.  Shares the
        predict endpoint's 429 backpressure handling.
        """
        return self._post_backpressure("/campaigns", samplesheet)

    def campaign_status(self, job_id: str) -> dict:
        """``GET /campaigns/<id>`` — status and, once done, the report."""
        return self._request("GET", f"/campaigns/{job_id}")

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — status and, once done, the result."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait_for(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.25
    ) -> dict:
        """Poll a ``wait=false`` job until it finishes.

        Raises:
            TimeoutError: if the job is still running after ``timeout``.
            RemoteServiceError: if the job failed (status 500-equivalent
                carried in the job body) or is unknown.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["status"] == "done":
                return payload["result"]
            if payload["status"] == "failed":
                raise RemoteServiceError(500, payload)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['status']} after {timeout:g}s"
                )
            time.sleep(poll)

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        """``GET /readyz``; raises :class:`RemoteServiceError` (503 with
        the reasons payload) while the service is unready."""
        return self._request("GET", "/readyz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # -- transport ------------------------------------------------------

    def _post_backpressure(self, path: str, body: dict[str, Any]) -> dict:
        """POST with the capped-exponential 429 retry loop."""
        attempts = self.backpressure_retries + 1
        for attempt in range(attempts):
            try:
                return self._request("POST", path, body=body)
            except RemoteServiceError as error:
                if error.status != 429 or attempt == attempts - 1:
                    raise
                raw_hint = error.payload.get("retry_after")
                try:
                    hint = float(raw_hint) if raw_hint is not None else None
                except (TypeError, ValueError):
                    hint = None
                time.sleep(self.backoff_delay(attempt, hint))
        raise AssertionError("unreachable")

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read())
            except (json.JSONDecodeError, ValueError):
                payload = {"error": f"non-JSON response ({error.reason})"}
            raise RemoteServiceError(error.code, payload) from None
        except urllib.error.URLError as error:
            raise RemoteServiceError(
                0, {"error": f"cannot reach {self.base_url}: {error.reason}"}
            ) from None
