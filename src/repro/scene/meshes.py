"""Procedural triangle-mesh generators.

The LumiBench scene assets used by the paper are not redistributable, so the
scene library (:mod:`repro.scene.library`) assembles synthetic stand-ins from
these generators.  Each function returns a list of :class:`Triangle` so
callers can concatenate meshes freely before handing them to a scene.
"""

from __future__ import annotations

import math

import numpy as np

from .geometry import Triangle
from .vecmath import normalize, vec3

__all__ = [
    "quad",
    "grid_quad",
    "ground_plane",
    "box",
    "icosphere",
    "cylinder",
    "fractal_tree",
    "column_grid",
    "random_blob_field",
    "transform",
]


def quad(
    origin: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    material_id: int = 0,
) -> list[Triangle]:
    """Two triangles spanning the parallelogram ``origin + u*edge_u + v*edge_v``."""
    p00 = origin
    p10 = origin + edge_u
    p01 = origin + edge_v
    p11 = origin + edge_u + edge_v
    return [
        Triangle(p00, p10, p11, material_id),
        Triangle(p00, p11, p01, material_id),
    ]


def grid_quad(
    origin: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    divisions_u: int,
    divisions_v: int,
    material_id: int = 0,
) -> list[Triangle]:
    """A parallelogram tessellated into a ``divisions_u x divisions_v`` grid.

    Walls and floors in the scene library are tessellated so their BVH
    footprint (and hence cache working set) resembles real scene geometry
    rather than two giant triangles.
    """
    if divisions_u <= 0 or divisions_v <= 0:
        raise ValueError("grid divisions must be positive")
    triangles: list[Triangle] = []
    du = edge_u / divisions_u
    dv = edge_v / divisions_v
    for i in range(divisions_u):
        for j in range(divisions_v):
            corner = origin + du * i + dv * j
            triangles.extend(quad(corner, du, dv, material_id))
    return triangles


def ground_plane(
    size: float,
    y: float = 0.0,
    material_id: int = 0,
    divisions: int = 1,
) -> list[Triangle]:
    """A square ground plane of side ``2 * size`` centred at the origin.

    ``divisions`` tessellates the plane into a grid (see :func:`grid_quad`)
    so large floors contribute realistically to the BVH working set.
    """
    return grid_quad(
        vec3(-size, y, -size),
        vec3(2.0 * size, 0.0, 0.0),
        vec3(0.0, 0.0, 2.0 * size),
        divisions,
        divisions,
        material_id,
    )


def box(
    center: np.ndarray, half_extents: np.ndarray, material_id: int = 0
) -> list[Triangle]:
    """An axis-aligned box (12 triangles)."""
    hx, hy, hz = (float(h) for h in half_extents)
    cx, cy, cz = (float(c) for c in center)
    triangles: list[Triangle] = []
    # Each face as a quad: (origin, edge_u, edge_v) with outward winding.
    faces = [
        # +X / -X
        (vec3(cx + hx, cy - hy, cz - hz), vec3(0, 2 * hy, 0), vec3(0, 0, 2 * hz)),
        (vec3(cx - hx, cy - hy, cz - hz), vec3(0, 0, 2 * hz), vec3(0, 2 * hy, 0)),
        # +Y / -Y
        (vec3(cx - hx, cy + hy, cz - hz), vec3(2 * hx, 0, 0), vec3(0, 0, 2 * hz)),
        (vec3(cx - hx, cy - hy, cz - hz), vec3(0, 0, 2 * hz), vec3(2 * hx, 0, 0)),
        # +Z / -Z
        (vec3(cx - hx, cy - hy, cz + hz), vec3(2 * hx, 0, 0), vec3(0, 2 * hy, 0)),
        (vec3(cx - hx, cy - hy, cz - hz), vec3(0, 2 * hy, 0), vec3(2 * hx, 0, 0)),
    ]
    for origin, edge_u, edge_v in faces:
        triangles.extend(quad(origin, edge_u, edge_v, material_id))
    return triangles


def icosphere(
    center: np.ndarray,
    radius: float,
    subdivisions: int = 1,
    material_id: int = 0,
) -> list[Triangle]:
    """A geodesic sphere built by subdividing an icosahedron.

    ``subdivisions`` quadruples the face count each level: 20, 80, 320,
    1280, ...  Level 2-3 gives a mesh dense enough to behave like the
    paper's BUNNY-style "warm" workloads.
    """
    phi = (1.0 + math.sqrt(5.0)) / 2.0
    raw = [
        (-1, phi, 0), (1, phi, 0), (-1, -phi, 0), (1, -phi, 0),
        (0, -1, phi), (0, 1, phi), (0, -1, -phi), (0, 1, -phi),
        (phi, 0, -1), (phi, 0, 1), (-phi, 0, -1), (-phi, 0, 1),
    ]
    vertices = [normalize(vec3(*v)) for v in raw]
    faces = [
        (0, 11, 5), (0, 5, 1), (0, 1, 7), (0, 7, 10), (0, 10, 11),
        (1, 5, 9), (5, 11, 4), (11, 10, 2), (10, 7, 6), (7, 1, 8),
        (3, 9, 4), (3, 4, 2), (3, 2, 6), (3, 6, 8), (3, 8, 9),
        (4, 9, 5), (2, 4, 11), (6, 2, 10), (8, 6, 7), (9, 8, 1),
    ]
    for _ in range(subdivisions):
        midpoint_cache: dict[tuple[int, int], int] = {}

        def midpoint(i: int, j: int) -> int:
            key = (i, j) if i < j else (j, i)
            if key not in midpoint_cache:
                vertices.append(normalize(vertices[i] + vertices[j]))
                midpoint_cache[key] = len(vertices) - 1
            return midpoint_cache[key]

        new_faces: list[tuple[int, int, int]] = []
        for a, b, c in faces:
            ab = midpoint(a, b)
            bc = midpoint(b, c)
            ca = midpoint(c, a)
            new_faces.extend([(a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)])
        faces = new_faces

    return [
        Triangle(
            center + vertices[a] * radius,
            center + vertices[b] * radius,
            center + vertices[c] * radius,
            material_id,
        )
        for a, b, c in faces
    ]


def cylinder(
    base: np.ndarray,
    height: float,
    radius: float,
    segments: int = 8,
    material_id: int = 0,
) -> list[Triangle]:
    """An open vertical cylinder (no caps), used for tree trunks and columns."""
    triangles: list[Triangle] = []
    for i in range(segments):
        a0 = 2.0 * math.pi * i / segments
        a1 = 2.0 * math.pi * (i + 1) / segments
        p0 = base + vec3(radius * math.cos(a0), 0.0, radius * math.sin(a0))
        p1 = base + vec3(radius * math.cos(a1), 0.0, radius * math.sin(a1))
        p2 = p0 + vec3(0.0, height, 0.0)
        p3 = p1 + vec3(0.0, height, 0.0)
        triangles.append(Triangle(p0, p1, p3, material_id))
        triangles.append(Triangle(p0, p3, p2, material_id))
    return triangles


def fractal_tree(
    base: np.ndarray,
    height: float,
    depth: int,
    rng: np.random.Generator,
    trunk_material: int = 0,
    leaf_material: int = 1,
) -> list[Triangle]:
    """A simple recursive branching tree (trunk cylinders + leaf spheres).

    Stands in for the paper's foliage-heavy scenes (PARK, CHSNT) whose rays
    traverse deep, incoherent BVH subtrees.
    """
    triangles: list[Triangle] = []

    def grow(origin: np.ndarray, direction: np.ndarray, length: float, level: int) -> None:
        tip = origin + direction * length
        radius = max(0.02, 0.08 * length)
        if level == 0:
            # The trunk grows straight up; model it as a proper cylinder.
            triangles.extend(
                cylinder(origin, length, radius, segments=5, material_id=trunk_material)
            )
        else:
            triangles.extend(_branch_quad(origin, tip, radius, trunk_material))
        if level >= depth:
            triangles.extend(
                icosphere(tip, length * 0.5, subdivisions=0, material_id=leaf_material)
            )
            return
        n_children = 2 + int(rng.integers(0, 2))
        for _ in range(n_children):
            jitter = rng.uniform(-0.6, 0.6, size=3)
            child_dir = normalize(direction + jitter)
            if child_dir[1] < 0.1:  # keep branches growing upward-ish
                child_dir = normalize(child_dir + vec3(0.0, 0.8, 0.0))
            grow(tip, child_dir, length * 0.65, level + 1)

    grow(base, vec3(0.0, 1.0, 0.0), height, 0)
    return triangles


def _branch_quad(
    start: np.ndarray, end: np.ndarray, radius: float, material_id: int
) -> list[Triangle]:
    """Two crossed quads approximating a thin branch between two points."""
    axis = end - start
    side = vec3(radius, 0.0, 0.0)
    side2 = vec3(0.0, 0.0, radius)
    out: list[Triangle] = []
    out.extend(quad(start - side, 2 * side, axis, material_id))
    out.extend(quad(start - side2, 2 * side2, axis, material_id))
    return out


def column_grid(
    rows: int,
    cols: int,
    spacing: float,
    column_height: float,
    column_radius: float,
    material_id: int = 0,
    segments: int = 6,
) -> list[Triangle]:
    """A grid of columns, the skeleton of an atrium scene (SPNZA stand-in)."""
    triangles: list[Triangle] = []
    x0 = -0.5 * (cols - 1) * spacing
    z0 = -0.5 * (rows - 1) * spacing
    for r in range(rows):
        for c in range(cols):
            base = vec3(x0 + c * spacing, 0.0, z0 + r * spacing)
            triangles.extend(
                cylinder(base, column_height, column_radius, segments=segments,
                         material_id=material_id)
            )
    return triangles


def random_blob_field(
    count: int,
    area: float,
    radius_range: tuple[float, float],
    rng: np.random.Generator,
    material_id: int = 0,
    subdivisions: int = 1,
) -> list[Triangle]:
    """Spheres scattered over the ground plane — generic clutter geometry."""
    triangles: list[Triangle] = []
    for _ in range(count):
        radius = float(rng.uniform(*radius_range))
        x = float(rng.uniform(-area, area))
        z = float(rng.uniform(-area, area))
        center = vec3(x, radius, z)
        triangles.extend(
            icosphere(center, radius, subdivisions=subdivisions, material_id=material_id)
        )
    return triangles


def transform(
    triangles: list[Triangle],
    translate: np.ndarray | None = None,
    scale: float = 1.0,
) -> list[Triangle]:
    """Uniformly scale then translate a mesh, returning new triangles."""
    offset = translate if translate is not None else vec3(0.0, 0.0, 0.0)
    return [
        Triangle(
            t.v0 * scale + offset,
            t.v1 * scale + offset,
            t.v2 * scale + offset,
            t.material_id,
        )
        for t in triangles
    ]
