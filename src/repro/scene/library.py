"""The LumiBench-like scene library.

LumiBench's assets are not redistributable, so each scene here is a
procedural stand-in engineered to match the *characterization* the paper
gives it (Figs. 9 and 12, Sections IV-B through IV-E):

================  ==========================================================
``SPNZA``         atrium of columns; moderate occlusion, low cycles error
``BUNNY``         dense single mesh filling the frame; *warmest* heatmap
``CHSNT``         large tree; deep, incoherent BVH traversals
``SPRNG``         only two objects; rays terminate early, GPU under-saturated
``PARK``          trees + clutter path-traced deep; the hardest workload
``BATH``          mirrored interior; longest-running scene
``SHIP``          small distant object; *coldest* heatmap
``WKND``          half-complex, half-empty frame; mixed warm/cold heatmap
================  ==========================================================

Scenes are deterministic: all randomness comes from fixed per-scene seeds.
Use :func:`make_scene` (cached) or :func:`build_scene` (fresh instance).
"""

from __future__ import annotations

import numpy as np

from .camera import Camera
from .lights import DirectionalLight, PointLight
from .materials import MaterialTable, diffuse, emissive, mirror
from .meshes import (
    box,
    column_grid,
    fractal_tree,
    grid_quad,
    ground_plane,
    icosphere,
    quad,
    random_blob_field,
)
from .scene import Scene
from .vecmath import vec3

__all__ = [
    "SCENE_NAMES",
    "REPRESENTATIVE_SUBSET",
    "TUNING_SCENES",
    "EXTRA_SCENES",
    "build_scene",
    "make_scene",
]

#: All scenes used in the paper's evaluation (Fig. 9 set).
SCENE_NAMES = (
    "SPNZA",
    "BUNNY",
    "CHSNT",
    "SPRNG",
    "PARK",
    "BATH",
    "SHIP",
    "WKND",
)

#: LumiBench's "representative subset" used for Fig. 17 — the scenes that
#: adequately stress a downscaled GPU (excludes the under-saturating ones).
REPRESENTATIVE_SUBSET = ("PARK", "BUNNY", "BATH", "CHSNT")

#: Additional scenes beyond the paper's evaluated set, for users extending
#: the study (LumiBench itself ships more scenes than the paper uses).
EXTRA_SCENES = ("CRNL", "FRST", "DRGN")

#: The three temperature-distribution scenes of Fig. 12 / Table III.
TUNING_SCENES = ("SHIP", "WKND", "BUNNY")


def build_scene(name: str) -> Scene:
    """Construct a fresh instance of a library scene by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scene {name!r}; available: "
            f"{', '.join(SCENE_NAMES + EXTRA_SCENES)}"
        ) from None
    return builder()


def make_scene(name) -> Scene:
    """Cached scene factory; experiments share one instance per scene.

    Accepts a library name or any :class:`~repro.scene.spec.SceneSpec`
    and delegates to the registry's bounded, content-fingerprint-keyed
    cache (:func:`~repro.scene.registry.resolve_scene`) — the old
    unbounded per-name ``lru_cache`` would leak under procedural sweeps
    that mint unlimited distinct recipes.
    """
    from .registry import resolve_scene

    return resolve_scene(name)


def _spnza() -> Scene:
    """Atrium of columns under a directional sun (Sponza stand-in)."""
    materials = MaterialTable()
    stone = materials.add(diffuse(0.75, 0.7, 0.6))
    floor = materials.add(diffuse(0.5, 0.5, 0.55))
    tris = ground_plane(14.0, material_id=floor, divisions=12)
    tris += column_grid(
        rows=4, cols=8, spacing=2.6, column_height=6.0, column_radius=0.45,
        segments=10, material_id=stone,
    )
    # Upper gallery slab creating indoor-style occlusion, plus a coffered
    # ceiling and ornamental spheres to give the BVH a realistic footprint.
    tris += box(vec3(0.0, 6.4, 0.0), vec3(10.5, 0.3, 5.5), material_id=stone)
    for gx in range(-4, 5):
        for gz in (-4.2, 4.2):
            tris += box(
                vec3(gx * 2.4, 7.2, gz), vec3(1.0, 0.25, 1.0),
                material_id=stone,
            )
    rng = np.random.default_rng(9)
    for gx in range(-3, 4):
        tris += icosphere(
            vec3(gx * 3.0, 6.9, 0.0), 0.4, subdivisions=2, material_id=stone
        )
    camera = Camera(
        position=vec3(-10.0, 3.2, 0.0), look_at=vec3(6.0, 2.4, 0.0),
        fov_degrees=68.0,
    )
    lights = [DirectionalLight(direction=vec3(0.4, -1.0, 0.25))]
    return Scene(tris, camera, lights, materials, name="SPNZA", max_bounces=2)


def _bunny() -> Scene:
    """Dense geodesic mesh filling the frame — uniformly warm heatmap."""
    materials = MaterialTable()
    fur = materials.add(diffuse(0.85, 0.78, 0.65, shade_cost=16))
    floor = materials.add(diffuse(0.4, 0.45, 0.4))
    tris = ground_plane(3.2, material_id=floor, divisions=6)
    # A "body" and "head" of dense spheres approximating a bunny silhouette.
    # Subdivision level 4 puts the mesh working set well beyond the L1D,
    # like LumiBench's real 69k-triangle bunny.
    tris += icosphere(vec3(0.0, 1.2, 0.0), 1.2, subdivisions=4, material_id=fur)
    tris += icosphere(vec3(0.0, 2.6, 0.7), 0.7, subdivisions=3, material_id=fur)
    tris += icosphere(vec3(-0.35, 3.3, 0.75), 0.22, subdivisions=2, material_id=fur)
    tris += icosphere(vec3(0.35, 3.3, 0.75), 0.22, subdivisions=2, material_id=fur)
    # Tight framing: the mesh fills most of the image plane, so nearly every
    # pixel traverses the dense subtree (the paper's warmest heatmap).
    camera = Camera(
        position=vec3(0.0, 1.9, 3.1), look_at=vec3(0.0, 1.7, 0.0),
        fov_degrees=56.0,
    )
    lights = [PointLight(position=vec3(4.0, 7.0, 5.0))]
    return Scene(tris, camera, lights, materials, name="BUNNY", max_bounces=2)


def _chsnt() -> Scene:
    """A large chestnut-like tree — deep, incoherent traversals."""
    rng = np.random.default_rng(1203)
    materials = MaterialTable()
    bark = materials.add(diffuse(0.45, 0.32, 0.2))
    leaf = materials.add(diffuse(0.25, 0.55, 0.2, shade_cost=20))
    floor = materials.add(diffuse(0.35, 0.5, 0.3))
    tris = ground_plane(12.0, material_id=floor, divisions=10)
    tris += fractal_tree(
        vec3(0.0, 0.0, 0.0), height=2.6, depth=5, rng=rng,
        trunk_material=bark, leaf_material=leaf,
    )
    camera = Camera(
        position=vec3(0.0, 3.4, 9.0), look_at=vec3(0.0, 4.2, 0.0),
        fov_degrees=55.0,
    )
    lights = [DirectionalLight(direction=vec3(-0.3, -1.0, -0.4))]
    return Scene(tris, camera, lights, materials, name="CHSNT", max_bounces=2)


def _sprng() -> Scene:
    """Two lone objects in a void — rays terminate early (under-saturating).

    The paper singles SPRNG out: "Since there are only two objects in the
    scene, most rays end up terminating early", making linear extrapolation
    of its cycles badly over-predict.
    """
    materials = MaterialTable()
    coil = materials.add(diffuse(0.7, 0.7, 0.75))
    base = materials.add(diffuse(0.6, 0.55, 0.5))
    tris = icosphere(vec3(-1.2, 1.0, 0.0), 0.9, subdivisions=2, material_id=coil)
    tris += box(vec3(1.4, 0.6, 0.0), vec3(0.6, 0.6, 0.6), material_id=base)
    camera = Camera(
        position=vec3(0.0, 1.4, 6.0), look_at=vec3(0.0, 0.9, 0.0),
        fov_degrees=45.0,
    )
    lights = [PointLight(position=vec3(3.0, 6.0, 4.0))]
    return Scene(tris, camera, lights, materials, name="SPRNG", max_bounces=1)


def _park() -> Scene:
    """Trees, clutter and deep paths — the hardest path-tracing workload."""
    rng = np.random.default_rng(77)
    materials = MaterialTable()
    bark = materials.add(diffuse(0.4, 0.3, 0.2))
    leaf = materials.add(diffuse(0.2, 0.5, 0.18, shade_cost=22))
    grass = materials.add(diffuse(0.3, 0.45, 0.25))
    bench = materials.add(diffuse(0.5, 0.4, 0.3))
    pond = materials.add(mirror(0.8))
    tris = ground_plane(16.0, material_id=grass, divisions=12)
    for tx, tz in [(-4.0, -2.0), (2.5, -4.5), (5.0, 1.5), (-1.5, 3.0)]:
        tris += fractal_tree(
            vec3(tx, 0.0, tz), height=2.2, depth=4, rng=rng,
            trunk_material=bark, leaf_material=leaf,
        )
    tris += random_blob_field(
        count=12, area=7.0, radius_range=(0.25, 0.7), rng=rng,
        material_id=bench, subdivisions=2,
    )
    # Reflective pond patch to force long secondary chains.
    tris += quad(
        vec3(-2.0, 0.02, -1.0), vec3(4.0, 0.0, 0.0), vec3(0.0, 0.0, 3.0),
        material_id=pond,
    )
    camera = Camera(
        position=vec3(0.0, 2.6, 10.0), look_at=vec3(0.0, 1.8, 0.0),
        fov_degrees=62.0,
    )
    lights = [
        DirectionalLight(direction=vec3(0.35, -1.0, -0.3)),
        PointLight(position=vec3(-5.0, 5.0, 5.0),
                   intensity=vec3(0.6, 0.6, 0.7)),
    ]
    return Scene(tris, camera, lights, materials, name="PARK", max_bounces=4)


def _bath() -> Scene:
    """Mirrored interior — the longest-running scene (highest saturation)."""
    materials = MaterialTable()
    tile = materials.add(diffuse(0.8, 0.85, 0.9, shade_cost=16))
    glass = materials.add(mirror(0.9))
    fixture = materials.add(diffuse(0.9, 0.9, 0.92))
    lamp = materials.add(emissive(4.0, 4.0, 3.6))
    wet = materials.add(mirror(0.5))  # wet tiled floor: long reflection chains
    room = 4.0
    tris: list = []
    # Five walls of a closed room (open towards the camera at +Z), each
    # tessellated so the BVH working set resembles a real tiled interior.
    tris += grid_quad(
        vec3(-room, 0, -room), vec3(2 * room, 0, 0), vec3(0, 0, 2 * room),
        12, 12, wet,
    )
    tris += grid_quad(
        vec3(-room, 2 * room, -room), vec3(0, 0, 2 * room), vec3(2 * room, 0, 0),
        12, 12, tile,
    )
    tris += grid_quad(
        vec3(-room, 0, -room), vec3(0, 2 * room, 0), vec3(2 * room, 0, 0),
        12, 12, tile,
    )
    tris += grid_quad(
        vec3(-room, 0, -room), vec3(0, 0, 2 * room), vec3(0, 2 * room, 0),
        10, 10, glass,
    )
    tris += grid_quad(
        vec3(room, 0, -room), vec3(0, 2 * room, 0), vec3(0, 0, 2 * room),
        10, 10, glass,
    )
    # Fixtures: tub, sink, mirror-ball, towel spheres.
    tris += box(vec3(0.0, 0.5, -2.5), vec3(1.6, 0.5, 0.9), material_id=fixture)
    tris += box(vec3(-3.0, 0.9, 0.5), vec3(0.5, 0.9, 0.5), material_id=fixture)
    tris += icosphere(vec3(2.2, 1.4, 0.0), 0.8, subdivisions=3, material_id=glass)
    tris += icosphere(vec3(-2.2, 0.4, 2.0), 0.4, subdivisions=2, material_id=fixture)
    tris += icosphere(vec3(1.0, 0.3, 2.4), 0.3, subdivisions=2, material_id=fixture)
    # Ceiling lamp panel.
    tris += quad(vec3(-1.0, 2 * room - 0.01, -1.0), vec3(2, 0, 0), vec3(0, 0, 2), lamp)
    camera = Camera(
        position=vec3(0.0, 3.2, 7.5), look_at=vec3(0.0, 2.0, -1.0),
        fov_degrees=58.0,
    )
    lights = [PointLight(position=vec3(0.0, 7.0, 0.0))]
    return Scene(tris, camera, lights, materials, name="BATH", max_bounces=4)


def _ship() -> Scene:
    """A small, distant but detailed object — most rays terminate cheaply
    on the sea or sky, so the heatmap is the library's coldest."""
    materials = MaterialTable()
    hull = materials.add(diffuse(0.5, 0.35, 0.25, shade_cost=24))
    sail = materials.add(diffuse(0.9, 0.9, 0.85, shade_cost=20))
    sea = materials.add(diffuse(0.15, 0.25, 0.4, shade_cost=8))
    rng = np.random.default_rng(40)
    tris = ground_plane(40.0, y=0.0, material_id=sea, divisions=2)
    # A detailed ship: hull, two masts, sails, deck clutter.  The dense
    # local geometry makes ship pixels far hotter than the flat sea, which
    # is what pushes the sea/sky majority towards temperature ~0.
    tris += box(vec3(0.0, 0.6, -14.0), vec3(2.0, 0.5, 0.7), material_id=hull)
    tris += box(vec3(0.0, 1.25, -14.0), vec3(1.6, 0.15, 0.55), material_id=hull)
    for mx in (-0.9, 0.7):
        tris += box(vec3(mx, 2.4, -14.0), vec3(0.07, 1.3, 0.07), material_id=hull)
        tris += quad(
            vec3(mx - 0.9, 1.6, -14.05), vec3(1.8, 0.0, 0.0), vec3(0.0, 1.7, 0.0),
            sail,
        )
    for _ in range(14):  # deck clutter (crates/barrels)
        cx = float(rng.uniform(-1.4, 1.4))
        cz = float(rng.uniform(-14.4, -13.6))
        tris += icosphere(vec3(cx, 1.5, cz), 0.16, subdivisions=2, material_id=hull)
    # Rigging spheres along the masts for extra local BVH density.
    for i in range(12):
        tris += icosphere(
            vec3(-0.9 + 0.15 * i, 2.0 + 0.12 * i, -14.0), 0.06,
            subdivisions=1, material_id=sail,
        )
    camera = Camera(
        position=vec3(0.0, 2.8, 6.0), look_at=vec3(0.0, 1.6, -14.0),
        fov_degrees=55.0,
    )
    lights = [DirectionalLight(direction=vec3(0.2, -1.0, -0.5))]
    return Scene(tris, camera, lights, materials, name="SHIP", max_bounces=2)


def _wknd() -> Scene:
    """Half-complex, half-empty frame — mixed warm/cold heatmap."""
    rng = np.random.default_rng(5150)
    materials = MaterialTable()
    wood = materials.add(diffuse(0.55, 0.4, 0.25, shade_cost=16))
    leaf = materials.add(diffuse(0.3, 0.55, 0.25, shade_cost=18))
    lawn = materials.add(diffuse(0.35, 0.5, 0.3))
    chrome = materials.add(mirror(0.75))
    tris = ground_plane(14.0, material_id=lawn, divisions=8)
    # Cabin, a dense tree and a mirror sphere fill the left half of the
    # frame; the right half is bare lawn/sky — the warm/cold split the
    # paper's Fig. 12 shows for WKND.
    tris += box(vec3(-3.3, 1.2, -1.0), vec3(1.6, 1.2, 1.4), material_id=wood)
    tris += fractal_tree(
        vec3(-4.6, 0.0, 1.2), height=2.4, depth=5, rng=rng,
        trunk_material=wood, leaf_material=leaf,
    )
    tris += icosphere(vec3(-0.8, 1.1, 1.6), 1.1, subdivisions=3, material_id=chrome)
    camera = Camera(
        position=vec3(0.8, 2.2, 6.0), look_at=vec3(-1.8, 1.6, 0.0),
        fov_degrees=62.0,
    )
    lights = [
        DirectionalLight(direction=vec3(0.3, -1.0, -0.2)),
        PointLight(position=vec3(4.0, 4.0, 4.0), intensity=vec3(0.4, 0.4, 0.4)),
    ]
    return Scene(tris, camera, lights, materials, name="WKND", max_bounces=3)


def _crnl() -> Scene:
    """A Cornell-box-style enclosure with emissive ceiling light.

    Not in the paper's evaluated set; the classic global-illumination
    sanity scene for users extending the study.
    """
    materials = MaterialTable()
    white = materials.add(diffuse(0.75, 0.75, 0.75))
    red = materials.add(diffuse(0.65, 0.06, 0.06))
    green = materials.add(diffuse(0.12, 0.48, 0.1))
    lamp = materials.add(emissive(6.0, 6.0, 5.4))
    s = 2.75
    tris: list = []
    tris += grid_quad(vec3(-s, 0, -s), vec3(2 * s, 0, 0), vec3(0, 0, 2 * s), 10, 10, white)
    tris += grid_quad(vec3(-s, 2 * s, -s), vec3(0, 0, 2 * s), vec3(2 * s, 0, 0), 10, 10, white)
    tris += grid_quad(vec3(-s, 0, -s), vec3(0, 2 * s, 0), vec3(2 * s, 0, 0), 10, 10, white)
    tris += grid_quad(vec3(-s, 0, -s), vec3(0, 0, 2 * s), vec3(0, 2 * s, 0), 8, 8, red)
    tris += grid_quad(vec3(s, 0, -s), vec3(0, 2 * s, 0), vec3(0, 0, 2 * s), 8, 8, green)
    # Tall and short blocks plus a dense sphere for BVH depth.
    tris += box(vec3(-1.0, 1.6, -1.0), vec3(0.7, 1.6, 0.7), material_id=white)
    tris += box(vec3(1.1, 0.65, 0.6), vec3(0.65, 0.65, 0.65), material_id=white)
    tris += icosphere(vec3(1.1, 1.9, 0.6), 0.55, subdivisions=3, material_id=white)
    tris += quad(vec3(-0.8, 2 * s - 0.01, -0.8), vec3(1.6, 0, 0), vec3(0, 0, 1.6), lamp)
    camera = Camera(
        position=vec3(0.0, s, 9.0), look_at=vec3(0.0, s, 0.0), fov_degrees=40.0,
    )
    lights = [PointLight(position=vec3(0.0, 2 * s - 0.4, 0.0))]
    return Scene(tris, camera, lights, materials, name="CRNL", max_bounces=3)


def _frst() -> Scene:
    """A dense forest — many trees, extreme traversal incoherence.

    Not in the paper's evaluated set; a heavier foliage workload than PARK
    for stress-testing samplers.
    """
    rng = np.random.default_rng(2718)
    materials = MaterialTable()
    bark = materials.add(diffuse(0.42, 0.3, 0.2))
    leaf = materials.add(diffuse(0.18, 0.45, 0.16, shade_cost=22))
    moss = materials.add(diffuse(0.25, 0.4, 0.22))
    tris = ground_plane(18.0, material_id=moss, divisions=10)
    for i in range(7):
        tx = float(rng.uniform(-8.0, 8.0))
        tz = float(rng.uniform(-6.0, 4.0))
        tris += fractal_tree(
            vec3(tx, 0.0, tz), height=float(rng.uniform(1.8, 2.6)), depth=4,
            rng=rng, trunk_material=bark, leaf_material=leaf,
        )
    camera = Camera(
        position=vec3(0.0, 2.8, 10.0), look_at=vec3(0.0, 2.6, 0.0),
        fov_degrees=64.0,
    )
    lights = [DirectionalLight(direction=vec3(0.25, -1.0, -0.35))]
    return Scene(tris, camera, lights, materials, name="FRST", max_bounces=3)


def _drgn() -> Scene:
    """A single dense "dragon" mesh on a pedestal (museum-piece workload).

    Not in the paper's evaluated set; a BUNNY-like single-object scene with
    an even deeper local BVH.
    """
    materials = MaterialTable()
    jade = materials.add(diffuse(0.3, 0.6, 0.45, shade_cost=18))
    stone = materials.add(diffuse(0.55, 0.55, 0.5))
    tris = ground_plane(5.0, material_id=stone, divisions=6)
    tris += box(vec3(0.0, 0.4, 0.0), vec3(1.4, 0.4, 0.9), material_id=stone)
    # Body segments of decreasing radius approximating a serpentine mesh.
    for i in range(6):
        t = i / 5.0
        center = vec3(-1.2 + 2.4 * t, 1.3 + 0.5 * np.sin(t * 6.0), 0.0)
        tris += icosphere(
            center, 0.55 - 0.28 * t, subdivisions=3, material_id=jade
        )
    camera = Camera(
        position=vec3(0.0, 1.8, 4.2), look_at=vec3(0.0, 1.3, 0.0),
        fov_degrees=52.0,
    )
    lights = [PointLight(position=vec3(3.0, 5.0, 4.0))]
    return Scene(tris, camera, lights, materials, name="DRGN", max_bounces=2)



_BUILDERS = {
    "SPNZA": _spnza,
    "BUNNY": _bunny,
    "CHSNT": _chsnt,
    "SPRNG": _sprng,
    "PARK": _park,
    "BATH": _bath,
    "SHIP": _ship,
    "WKND": _wknd,
    "CRNL": _crnl,
    "FRST": _frst,
    "DRGN": _drgn,
}
