"""Bounding volume hierarchy construction and traversal.

The BVH is the acceleration structure every ray walks, and — crucially for
this reproduction — the *node indices a ray visits* are what the GPU timing
model replays through the cache hierarchy.  Traversal therefore optionally
records visited node indices and tested primitive indices into a
:class:`TraversalRecord`.

Two build strategies are provided:

* ``median`` — split on the centroid median of the longest axis (fast,
  predictable tree shape; handy in tests).
* ``sah`` — binned surface-area-heuristic split (better trees for the
  clutter-heavy library scenes; the default).

The traversal hot path is written in scalar Python floats rather than numpy:
per-node numpy ops on 3-vectors cost microseconds each, which would dominate
the multi-million-node-visit frame traces the experiments run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .geometry import AABB, HitRecord, Ray, Triangle

__all__ = ["BVHNode", "BVH", "TraversalRecord", "build_bvh"]

#: Number of SAH candidate planes evaluated per axis.
_SAH_BINS = 8

#: Leaves stop subdividing at or below this primitive count.
_LEAF_SIZE = 4

_INF = float("inf")


@dataclass
class BVHNode:
    """One node of the flattened BVH.

    Interior nodes have ``left``/``right`` child indices; leaves carry a
    ``first``/``count`` range into the BVH's primitive-index permutation.
    """

    bounds: AABB
    left: int = -1
    right: int = -1
    first: int = 0
    count: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.count > 0


@dataclass
class TraversalRecord:
    """Trace of one ray's walk through the BVH.

    ``nodes_visited`` lists node indices in visit order; ``tris_tested``
    lists primitive indices whose intersection test actually ran.  These feed
    the shader model and the GPU timing simulator's memory streams.
    """

    nodes_visited: list[int] = field(default_factory=list)
    tris_tested: list[int] = field(default_factory=list)


class BVH:
    """An immutable BVH over a list of triangles.

    Build via :func:`build_bvh`.  ``primitive_order`` is the permutation of
    the caller's triangle list induced by the build; leaf ranges index into
    it.
    """

    def __init__(
        self,
        triangles: list[Triangle],
        nodes: list[BVHNode],
        primitive_order: list[int],
    ) -> None:
        self.triangles = triangles
        self.nodes = nodes
        self.primitive_order = primitive_order
        self._flatten()

    def _flatten(self) -> None:
        """Precompute scalar-tuple views of nodes/triangles for traversal."""
        # Per-node: (lox, loy, loz, hix, hiy, hiz, left, right, first, count).
        flat_nodes = []
        for node in self.nodes:
            lo, hi = node.bounds.lo, node.bounds.hi
            flat_nodes.append(
                (
                    float(lo[0]), float(lo[1]), float(lo[2]),
                    float(hi[0]), float(hi[1]), float(hi[2]),
                    node.left, node.right, node.first, node.count,
                )
            )
        self._flat_nodes = flat_nodes
        # Per-interior-node traversal-order hint: axis of largest child
        # centroid separation and whether the left child sits on its lower
        # side.  Leaves get (0, True) placeholders.
        order_hints: list[tuple[int, bool]] = []
        for node in self.nodes:
            if node.is_leaf:
                order_hints.append((0, True))
                continue
            lc = self.nodes[node.left].bounds.centroid()
            rc = self.nodes[node.right].bounds.centroid()
            sep = lc - rc
            axis = int(np.argmax(np.abs(sep)))
            order_hints.append((axis, bool(sep[axis] <= 0.0)))
        self._order_hints = order_hints
        # Per-triangle Moller-Trumbore operands as scalars:
        # (v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z).
        flat_tris = []
        for tri in self.triangles:
            v0, v1, v2 = tri.v0, tri.v1, tri.v2
            e1 = v1 - v0
            e2 = v2 - v0
            flat_tris.append(
                (
                    float(v0[0]), float(v0[1]), float(v0[2]),
                    float(e1[0]), float(e1[1]), float(e1[2]),
                    float(e2[0]), float(e2[1]), float(e2[2]),
                )
            )
        self._flat_tris = flat_tris

    @property
    def root(self) -> BVHNode:
        return self.nodes[0]

    def depth(self) -> int:
        """Maximum leaf depth (root = depth 0)."""

        def node_depth(index: int) -> int:
            node = self.nodes[index]
            if node.is_leaf:
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(0)

    def intersect(
        self, ray: Ray, record: TraversalRecord | None = None
    ) -> HitRecord | None:
        """Closest-hit traversal with near-child-first ordering.

        If ``record`` is given, every visited node and tested triangle is
        appended to it (in visit order).
        """
        flat_nodes = self._flat_nodes
        flat_tris = self._flat_tris
        hints = self._order_hints
        order = self.primitive_order
        ox, oy, oz = float(ray.origin[0]), float(ray.origin[1]), float(ray.origin[2])
        dx, dy, dz = (
            float(ray.direction[0]),
            float(ray.direction[1]),
            float(ray.direction[2]),
        )
        # copysign keeps the slab signs right for -0.0 components: plain
        # ``dx != 0.0`` is False for -0.0, which used to yield +inf where
        # -inf was meant.
        idx = 1.0 / dx if dx != 0.0 else math.copysign(_INF, dx)
        idy = 1.0 / dy if dy != 0.0 else math.copysign(_INF, dy)
        idz = 1.0 / dz if dz != 0.0 else math.copysign(_INF, dz)
        dir_nonneg = (dx >= 0.0, dy >= 0.0, dz >= 0.0)
        t_min = ray.t_min
        t_max = ray.t_max
        rec_nodes = record.nodes_visited if record is not None else None
        rec_tris = record.tris_tested if record is not None else None

        best_t = t_max
        best_tri = -1
        stack = [0]
        push = stack.append
        pop = stack.pop
        while stack:
            node_index = pop()
            if rec_nodes is not None:
                rec_nodes.append(node_index)
            n = flat_nodes[node_index]
            # Scalar slab test.
            tx0 = (n[0] - ox) * idx
            tx1 = (n[3] - ox) * idx
            if tx0 > tx1:
                tx0, tx1 = tx1, tx0
            ty0 = (n[1] - oy) * idy
            ty1 = (n[4] - oy) * idy
            if ty0 > ty1:
                ty0, ty1 = ty1, ty0
            tz0 = (n[2] - oz) * idz
            tz1 = (n[5] - oz) * idz
            if tz0 > tz1:
                tz0, tz1 = tz1, tz0
            enter = max(tx0, ty0, tz0, t_min)
            exit_ = min(tx1, ty1, tz1, best_t)
            if enter > exit_:
                continue
            count = n[9]
            if count > 0:  # leaf
                first = n[8]
                for slot in range(first, first + count):
                    tri_index = order[slot]
                    if rec_tris is not None:
                        rec_tris.append(tri_index)
                    t = flat_tris[tri_index]
                    hit_t = _moller_trumbore(
                        t, ox, oy, oz, dx, dy, dz, t_min, best_t
                    )
                    if hit_t is not None:
                        best_t = hit_t
                        best_tri = tri_index
            else:
                axis, left_is_lower = hints[node_index]
                if dir_nonneg[axis] == left_is_lower:
                    push(n[7])  # far: right
                    push(n[6])  # near: left
                else:
                    push(n[6])
                    push(n[7])
        if best_tri < 0:
            return None
        tri = self.triangles[best_tri]
        point = ray.at(best_t)
        normal = tri.normal
        if normal[0] * dx + normal[1] * dy + normal[2] * dz > 0.0:
            normal = -normal
        return HitRecord(
            t=best_t,
            point=point,
            normal=normal,
            material_id=tri.material_id,
            primitive_index=best_tri,
        )

    def occluded(self, ray: Ray, record: TraversalRecord | None = None) -> bool:
        """Any-hit traversal for shadow rays: stops at the first hit."""
        flat_nodes = self._flat_nodes
        flat_tris = self._flat_tris
        order = self.primitive_order
        ox, oy, oz = float(ray.origin[0]), float(ray.origin[1]), float(ray.origin[2])
        dx, dy, dz = (
            float(ray.direction[0]),
            float(ray.direction[1]),
            float(ray.direction[2]),
        )
        idx = 1.0 / dx if dx != 0.0 else math.copysign(_INF, dx)
        idy = 1.0 / dy if dy != 0.0 else math.copysign(_INF, dy)
        idz = 1.0 / dz if dz != 0.0 else math.copysign(_INF, dz)
        t_min = ray.t_min
        t_max = ray.t_max
        rec_nodes = record.nodes_visited if record is not None else None
        rec_tris = record.tris_tested if record is not None else None

        stack = [0]
        push = stack.append
        pop = stack.pop
        while stack:
            node_index = pop()
            if rec_nodes is not None:
                rec_nodes.append(node_index)
            n = flat_nodes[node_index]
            tx0 = (n[0] - ox) * idx
            tx1 = (n[3] - ox) * idx
            if tx0 > tx1:
                tx0, tx1 = tx1, tx0
            ty0 = (n[1] - oy) * idy
            ty1 = (n[4] - oy) * idy
            if ty0 > ty1:
                ty0, ty1 = ty1, ty0
            tz0 = (n[2] - oz) * idz
            tz1 = (n[5] - oz) * idz
            if tz0 > tz1:
                tz0, tz1 = tz1, tz0
            enter = max(tx0, ty0, tz0, t_min)
            exit_ = min(tx1, ty1, tz1, t_max)
            if enter > exit_:
                continue
            count = n[9]
            if count > 0:
                first = n[8]
                for slot in range(first, first + count):
                    tri_index = order[slot]
                    if rec_tris is not None:
                        rec_tris.append(tri_index)
                    t = flat_tris[tri_index]
                    if _moller_trumbore(t, ox, oy, oz, dx, dy, dz, t_min, t_max) is not None:
                        return True
            else:
                push(n[7])
                push(n[6])
        return False


def _moller_trumbore(
    tri: tuple[float, ...],
    ox: float, oy: float, oz: float,
    dx: float, dy: float, dz: float,
    t_min: float, t_max: float,
) -> float | None:
    """Scalar Moller-Trumbore: returns the hit ``t`` or ``None``.

    ``tri`` is a flattened (v0, edge1, edge2) tuple from :meth:`BVH._flatten`.
    """
    v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z = tri
    # pvec = d x e2
    px = dy * e2z - dz * e2y
    py = dz * e2x - dx * e2z
    pz = dx * e2y - dy * e2x
    det = e1x * px + e1y * py + e1z * pz
    if -1e-12 < det < 1e-12:
        return None
    inv_det = 1.0 / det
    tvx = ox - v0x
    tvy = oy - v0y
    tvz = oz - v0z
    u = (tvx * px + tvy * py + tvz * pz) * inv_det
    if u < 0.0 or u > 1.0:
        return None
    # qvec = tvec x e1
    qx = tvy * e1z - tvz * e1y
    qy = tvz * e1x - tvx * e1z
    qz = tvx * e1y - tvy * e1x
    v = (dx * qx + dy * qy + dz * qz) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None
    t = (e2x * qx + e2y * qy + e2z * qz) * inv_det
    if t < t_min or t > t_max:
        return None
    return t


def build_bvh(
    triangles: list[Triangle],
    method: str = "sah",
    leaf_size: int = _LEAF_SIZE,
) -> BVH:
    """Build a BVH over ``triangles``.

    Args:
        triangles: primitive list (not modified; the BVH stores a reference).
        method: ``"sah"`` (binned SAH) or ``"median"`` (longest-axis median).
        leaf_size: stop splitting at or below this many primitives.

    Raises:
        ValueError: for an empty triangle list or unknown ``method``.
    """
    if not triangles:
        raise ValueError("cannot build a BVH over zero triangles")
    if method not in ("sah", "median"):
        raise ValueError(f"unknown BVH build method: {method!r}")

    centroids = np.array([t.centroid() for t in triangles])
    prim_bounds = [t.bounds() for t in triangles]
    order = list(range(len(triangles)))
    nodes: list[BVHNode] = []

    def bounds_of(slots: range) -> AABB:
        b = AABB.empty()
        for slot in slots:
            b = b.union(prim_bounds[order[slot]])
        return b

    def centroid_bounds_of(slots: range) -> AABB:
        b = AABB.empty()
        for slot in slots:
            b = b.union_point(centroids[order[slot]])
        return b

    def build_range(first: int, count: int) -> int:
        """Recursively build the subtree over ``order[first:first+count]``."""
        slots = range(first, first + count)
        node_index = len(nodes)
        nodes.append(BVHNode(bounds=bounds_of(slots)))
        cb = centroid_bounds_of(slots)
        too_small = count <= leaf_size
        # All centroids coincident: no split can separate them.
        degenerate = bool(np.all(cb.hi - cb.lo < 1e-12))
        if too_small or degenerate:
            nodes[node_index].first = first
            nodes[node_index].count = count
            return node_index

        if method == "median":
            mid = _median_split(order, centroids, first, count, cb)
        else:
            mid = _sah_split(order, centroids, prim_bounds, first, count, cb)
        left = build_range(first, mid - first)
        right = build_range(mid, first + count - mid)
        nodes[node_index].left = left
        nodes[node_index].right = right
        return node_index

    build_range(0, len(triangles))
    return BVH(triangles, nodes, order)


def _median_split(
    order: list[int],
    centroids: np.ndarray,
    first: int,
    count: int,
    centroid_bounds: AABB,
) -> int:
    """Partition ``order[first:first+count]`` at the centroid median."""
    axis = centroid_bounds.longest_axis()
    segment = order[first : first + count]
    segment.sort(key=lambda i: centroids[i][axis])
    order[first : first + count] = segment
    return first + count // 2


def _sah_split(
    order: list[int],
    centroids: np.ndarray,
    prim_bounds: list[AABB],
    first: int,
    count: int,
    centroid_bounds: AABB,
) -> int:
    """Binned SAH partition; falls back to median when SAH finds no win."""
    axis = centroid_bounds.longest_axis()
    lo = float(centroid_bounds.lo[axis])
    hi = float(centroid_bounds.hi[axis])
    extent = hi - lo
    if extent < 1e-12:
        return _median_split(order, centroids, first, count, centroid_bounds)

    # Bin primitives by centroid.
    bin_counts = [0] * _SAH_BINS
    bin_bounds = [AABB.empty() for _ in range(_SAH_BINS)]
    tri_bins: dict[int, int] = {}
    for slot in range(first, first + count):
        tri = order[slot]
        b = min(
            _SAH_BINS - 1,
            int(_SAH_BINS * (float(centroids[tri][axis]) - lo) / extent),
        )
        tri_bins[tri] = b
        bin_counts[b] += 1
        bin_bounds[b] = bin_bounds[b].union(prim_bounds[tri])

    # Sweep candidate split planes between bins, minimizing SAH cost.
    best_cost = math.inf
    best_plane = -1
    for plane in range(1, _SAH_BINS):
        left_count = sum(bin_counts[:plane])
        right_count = count - left_count
        if left_count == 0 or right_count == 0:
            continue
        left_box = AABB.empty()
        for b in range(plane):
            left_box = left_box.union(bin_bounds[b])
        right_box = AABB.empty()
        for b in range(plane, _SAH_BINS):
            right_box = right_box.union(bin_bounds[b])
        cost = (
            left_count * left_box.surface_area()
            + right_count * right_box.surface_area()
        )
        if cost < best_cost:
            best_cost = cost
            best_plane = plane
    if best_plane < 0:
        return _median_split(order, centroids, first, count, centroid_bounds)

    # Stable partition of the slot range by bin side.
    segment = order[first : first + count]
    left_side = [t for t in segment if tri_bins[t] < best_plane]
    right_side = [t for t in segment if tri_bins[t] >= best_plane]
    order[first : first + count] = left_side + right_side
    return first + len(left_side)
