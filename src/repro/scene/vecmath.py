"""Small 3D vector-math toolkit used throughout the scene and tracer layers.

Vectors are plain ``numpy`` arrays of shape ``(3,)`` and dtype ``float64``.
Keeping them as raw arrays (rather than a ``Vec3`` class) lets the BVH and
tracer hot loops stay allocation-light while remaining readable.  The helpers
here exist so call sites can say *what* they compute (``reflect``,
``normalize``) instead of spelling out the algebra.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "vec3",
    "normalize",
    "length",
    "dot",
    "cross",
    "reflect",
    "lerp",
    "clamp",
    "orthonormal_basis",
    "spherical_direction",
    "EPSILON",
]

#: Geometric tolerance used for ray offsets and degenerate-triangle checks.
EPSILON = 1e-9


def vec3(x: float, y: float, z: float) -> np.ndarray:
    """Build a 3-component float vector."""
    return np.array([x, y, z], dtype=np.float64)


def length(v: np.ndarray) -> float:
    """Euclidean length of ``v``."""
    return float(math.sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))


def normalize(v: np.ndarray) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises:
        ValueError: if ``v`` is (numerically) the zero vector, since a
            direction cannot be recovered from it.
    """
    n = length(v)
    if n < EPSILON:
        raise ValueError("cannot normalize a zero-length vector")
    return v / n


def dot(a: np.ndarray, b: np.ndarray) -> float:
    """Dot product as a Python float (faster than ``np.dot`` for 3-vectors)."""
    return float(a[0] * b[0] + a[1] * b[1] + a[2] * b[2])


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product ``a x b``."""
    return np.array(
        [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ],
        dtype=np.float64,
    )


def reflect(direction: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Reflect ``direction`` about ``normal`` (both assumed unit length)."""
    return direction - 2.0 * dot(direction, normal) * normal


def lerp(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Linear interpolation between ``a`` and ``b`` at parameter ``t``."""
    return a + (b - a) * t


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp scalar ``x`` into ``[lo, hi]``."""
    return lo if x < lo else hi if x > hi else x


def orthonormal_basis(normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build two unit tangents forming a right-handed frame with ``normal``.

    Uses the branchless Duff et al. construction, which is stable for any
    unit ``normal``.
    """
    sign = math.copysign(1.0, normal[2])
    a = -1.0 / (sign + normal[2])
    b = normal[0] * normal[1] * a
    tangent = np.array(
        [1.0 + sign * normal[0] * normal[0] * a, sign * b, -sign * normal[0]],
        dtype=np.float64,
    )
    bitangent = np.array(
        [b, sign + normal[1] * normal[1] * a, -normal[1]], dtype=np.float64
    )
    return tangent, bitangent


def spherical_direction(u: float, v: float, normal: np.ndarray) -> np.ndarray:
    """Map uniform samples ``(u, v)`` to a cosine-weighted hemisphere direction.

    The hemisphere is oriented around ``normal``.  Used by the path tracer for
    diffuse bounces; cosine weighting keeps the estimator low-variance without
    explicit PDF bookkeeping for Lambertian surfaces.
    """
    r = math.sqrt(u)
    theta = 2.0 * math.pi * v
    x = r * math.cos(theta)
    y = r * math.sin(theta)
    z = math.sqrt(max(0.0, 1.0 - u))
    tangent, bitangent = orthonormal_basis(normal)
    return normalize(x * tangent + y * bitangent + z * normal)
