"""Parameterized workload generators.

The library scenes are fixed stand-ins for LumiBench; these generators
produce *families* of scenes with controlled knobs, so methodology
properties can be tested as controlled experiments instead of anecdotes.

The central one is :func:`saturation_scene`: a clutter scene whose
``level`` knob monotonically increases how hard the workload saturates a
GPU (geometry density, frame coverage and path depth all scale with it).
The paper's recurring hypothesis — "the better the scene saturates the
GPU, the more accurate Zatel estimates performance metrics" — becomes
directly sweepable (``benchmarks/bench_saturation_hypothesis.py``).
"""

from __future__ import annotations

import numpy as np

from .camera import Camera
from .lights import DirectionalLight, PointLight
from .materials import MaterialTable, diffuse, mirror
from .meshes import ground_plane, icosphere, random_blob_field
from .scene import Scene
from .vecmath import vec3

__all__ = ["saturation_scene", "clutter_scene"]


def saturation_scene(level: float, seed: int = 0) -> Scene:
    """A clutter scene whose GPU saturation scales with ``level`` in [0, 1].

    Three workload dimensions scale together, each of which the paper ties
    to saturation:

    * **geometry density** — sphere count and tessellation grow, deepening
      the BVH and its cache working set;
    * **frame coverage** — the camera tightens so more rays hit geometry
      instead of terminating on the sky;
    * **path depth** — max bounces rise from 1 (Whitted-style, SPRNG-like)
      to 4 (PARK-like path tracing).

    ``level=0`` is an under-saturating two-object scene; ``level=1``
    approaches PARK's weight.

    Raises:
        ValueError: for a level outside [0, 1].
    """
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"saturation level must be in [0, 1], got {level}")
    rng = np.random.default_rng(seed + 90001)
    materials = MaterialTable()
    matte = materials.add(diffuse(0.6, 0.55, 0.5))
    shiny = materials.add(mirror(0.7))
    floor = materials.add(diffuse(0.35, 0.4, 0.35))

    count = 2 + int(round(level * 28))
    subdivisions = 1 + int(round(level * 2))
    bounces = 1 + int(round(level * 3))
    area = 6.0 - 2.0 * level          # denser packing at high levels
    camera_back = 9.0 - 4.0 * level   # tighter framing at high levels

    tris = ground_plane(
        10.0, material_id=floor, divisions=4 + int(level * 8)
    )
    tris += random_blob_field(
        count=count,
        area=area,
        radius_range=(0.35, 0.9),
        rng=rng,
        material_id=matte,
        subdivisions=subdivisions,
    )
    # A couple of mirrors appear once paths are deep enough to use them.
    if bounces >= 2:
        tris += icosphere(
            vec3(0.0, 1.0, 0.0), 0.9, subdivisions=subdivisions,
            material_id=shiny,
        )
    camera = Camera(
        position=vec3(0.0, 2.4, camera_back),
        look_at=vec3(0.0, 1.0, 0.0),
        fov_degrees=58.0,
    )
    lights = [
        DirectionalLight(direction=vec3(0.3, -1.0, -0.3)),
        PointLight(position=vec3(-4.0, 5.0, 4.0),
                   intensity=vec3(0.5, 0.5, 0.5)),
    ]
    return Scene(
        tris,
        camera,
        lights,
        materials,
        name=f"SAT{int(round(level * 100)):03d}",
        max_bounces=bounces,
    )


def clutter_scene(
    triangles_target: int,
    seed: int = 0,
    reflective_share: float = 0.2,
) -> Scene:
    """A generic clutter scene sized to roughly ``triangles_target``.

    Useful for cache studies: the BVH working set scales ~linearly with
    the target.  Sphere subdivision is chosen per-blob to land near the
    requested count.

    Raises:
        ValueError: for a non-positive target or a share outside [0, 1].
    """
    if triangles_target <= 0:
        raise ValueError("triangles_target must be positive")
    if not 0.0 <= reflective_share <= 1.0:
        raise ValueError("reflective_share must be in [0, 1]")
    rng = np.random.default_rng(seed + 77003)
    materials = MaterialTable()
    matte = materials.add(diffuse(0.55, 0.5, 0.45))
    shiny = materials.add(mirror(0.8))
    floor = materials.add(diffuse(0.4, 0.4, 0.45))

    tris = ground_plane(9.0, material_id=floor, divisions=6)
    # Each subdiv-2 sphere is 320 triangles; add blobs until the target.
    per_blob = 320
    blobs = max(1, (triangles_target - len(tris)) // per_blob)
    for _ in range(blobs):
        material = shiny if rng.random() < reflective_share else matte
        radius = float(rng.uniform(0.4, 0.8))
        center = vec3(
            float(rng.uniform(-5.0, 5.0)), radius, float(rng.uniform(-4.0, 3.0))
        )
        tris += icosphere(center, radius, subdivisions=2, material_id=material)
    camera = Camera(
        position=vec3(0.0, 2.6, 7.5), look_at=vec3(0.0, 0.9, 0.0),
        fov_degrees=60.0,
    )
    lights = [PointLight(position=vec3(3.0, 6.0, 4.0))]
    return Scene(
        tris, camera, lights, materials,
        name=f"CLTR{triangles_target}", max_bounces=2,
    )
