"""Pinhole camera generating primary rays for an image plane.

The camera defines the mapping ``(pixel x, pixel y) -> primary ray`` that
both the functional tracer (heatmap profiling) and the timing simulation use,
so a pixel's identity is consistent across every Zatel step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .geometry import Ray
from .vecmath import cross, normalize, vec3

__all__ = ["Camera"]


@dataclass
class Camera:
    """A pinhole camera.

    Attributes:
        position: eye point.
        look_at: target point the camera faces.
        up: world up hint (need not be orthogonal to the view direction).
        fov_degrees: full vertical field of view.
    """

    position: np.ndarray
    look_at: np.ndarray
    up: np.ndarray = None  # type: ignore[assignment]
    fov_degrees: float = 60.0

    def __post_init__(self) -> None:
        if self.up is None:
            self.up = vec3(0.0, 1.0, 0.0)
        forward = normalize(self.look_at - self.position)
        right = normalize(cross(forward, self.up))
        true_up = cross(right, forward)
        self._forward = forward
        self._right = right
        self._up = true_up
        self._tan_half_fov = math.tan(math.radians(self.fov_degrees) * 0.5)

    def primary_ray(
        self,
        px: int,
        py: int,
        width: int,
        height: int,
        jitter: tuple[float, float] = (0.5, 0.5),
    ) -> Ray:
        """Ray through pixel ``(px, py)`` of a ``width x height`` plane.

        ``jitter`` is the sub-pixel sample position in [0, 1)^2; the default
        samples pixel centres, and the path tracer passes stratified offsets
        for multi-sample rendering.  Pixel (0, 0) is the top-left corner, as
        in the paper's image-plane figures.
        """
        if not (0 <= px < width and 0 <= py < height):
            raise ValueError(f"pixel ({px}, {py}) outside {width}x{height} plane")
        aspect = width / height
        # NDC in [-1, 1], y flipped so py=0 is the top row.
        ndc_x = (2.0 * (px + jitter[0]) / width - 1.0) * aspect
        ndc_y = 1.0 - 2.0 * (py + jitter[1]) / height
        direction = normalize(
            self._forward
            + self._right * (ndc_x * self._tan_half_fov)
            + self._up * (ndc_y * self._tan_half_fov)
        )
        return Ray(origin=self.position.copy(), direction=direction)
