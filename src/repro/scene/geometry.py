"""Geometric primitives: rays, axis-aligned bounding boxes and triangles.

These are the only primitive types the BVH and tracer operate on.  Spheres
and other analytic shapes in the scene library are tessellated into triangle
meshes (see :mod:`repro.scene.meshes`), mirroring how real ray-tracing
pipelines feed a BVH builder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .vecmath import EPSILON, cross, dot, normalize

__all__ = ["Ray", "AABB", "Triangle", "HitRecord"]

_INF = float("inf")


@dataclass
class Ray:
    """A half-line ``origin + t * direction`` for ``t in [t_min, t_max]``.

    ``direction`` should be unit length so ``t`` values are distances; the
    intersection routines do not renormalize.
    """

    origin: np.ndarray
    direction: np.ndarray
    t_min: float = 1e-6
    t_max: float = _INF

    def at(self, t: float) -> np.ndarray:
        """Point on the ray at parameter ``t``."""
        return self.origin + self.direction * t

    def inv_direction(self) -> np.ndarray:
        """Component-wise reciprocal of the direction, for slab AABB tests.

        Zero components map to +/-inf which the slab test handles correctly
        via IEEE semantics.
        """
        with np.errstate(divide="ignore"):
            return np.divide(1.0, self.direction)


@dataclass
class AABB:
    """Axis-aligned bounding box given by two corner points."""

    lo: np.ndarray
    hi: np.ndarray

    @staticmethod
    def empty() -> "AABB":
        """A degenerate box that unions as the identity element."""
        return AABB(
            lo=np.full(3, _INF, dtype=np.float64),
            hi=np.full(3, -_INF, dtype=np.float64),
        )

    def union(self, other: "AABB") -> "AABB":
        """Smallest box enclosing both ``self`` and ``other``."""
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def union_point(self, point: np.ndarray) -> "AABB":
        """Smallest box enclosing ``self`` and ``point``."""
        return AABB(np.minimum(self.lo, point), np.maximum(self.hi, point))

    def contains(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies inside the box (within tolerance)."""
        return bool(
            np.all(point >= self.lo - tol) and np.all(point <= self.hi + tol)
        )

    def contains_box(self, other: "AABB", tol: float = 1e-9) -> bool:
        """Whether ``other`` is fully enclosed by this box (within tolerance)."""
        return bool(
            np.all(other.lo >= self.lo - tol) and np.all(other.hi <= self.hi + tol)
        )

    def centroid(self) -> np.ndarray:
        """Box center point."""
        return 0.5 * (self.lo + self.hi)

    def surface_area(self) -> float:
        """Total surface area; the SAH build cost metric."""
        d = self.hi - self.lo
        if d[0] < 0 or d[1] < 0 or d[2] < 0:  # empty box
            return 0.0
        return float(2.0 * (d[0] * d[1] + d[1] * d[2] + d[2] * d[0]))

    def longest_axis(self) -> int:
        """Index (0/1/2) of the axis with the largest extent."""
        d = self.hi - self.lo
        return int(np.argmax(d))

    def is_empty(self) -> bool:
        """True for boxes that enclose no volume (e.g. ``AABB.empty()``)."""
        return bool(np.any(self.hi < self.lo))

    def intersect(self, ray: Ray, inv_dir: np.ndarray, t_max: float) -> bool:
        """Slab test: does ``ray`` hit the box before ``t_max``?"""
        t0 = (self.lo - ray.origin) * inv_dir
        t1 = (self.hi - ray.origin) * inv_dir
        t_near = np.minimum(t0, t1)
        t_far = np.maximum(t0, t1)
        enter = max(float(np.max(t_near)), ray.t_min)
        exit_ = min(float(np.min(t_far)), t_max)
        return enter <= exit_


@dataclass
class HitRecord:
    """Result of a successful ray/primitive intersection."""

    t: float
    point: np.ndarray
    normal: np.ndarray
    material_id: int
    primitive_index: int


@dataclass
class Triangle:
    """A triangle primitive with a precomputed geometric normal.

    ``material_id`` indexes into the owning scene's material table.  The
    normal is the (unit) geometric normal; scenes here use flat shading so no
    per-vertex normals are stored.
    """

    v0: np.ndarray
    v1: np.ndarray
    v2: np.ndarray
    material_id: int = 0
    normal: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.normal is None:
            n = cross(self.v1 - self.v0, self.v2 - self.v0)
            norm = math.sqrt(float(n @ n))
            if norm < EPSILON:
                # Degenerate (zero-area) triangle: give it an arbitrary
                # normal; it can never be hit by the Moller-Trumbore test.
                self.normal = np.array([0.0, 0.0, 1.0])
            else:
                self.normal = n / norm

    def bounds(self) -> AABB:
        """Tight AABB of the three vertices."""
        lo = np.minimum(np.minimum(self.v0, self.v1), self.v2)
        hi = np.maximum(np.maximum(self.v0, self.v1), self.v2)
        return AABB(lo, hi)

    def centroid(self) -> np.ndarray:
        """Average of the vertices; used as the BVH partition key."""
        return (self.v0 + self.v1 + self.v2) / 3.0

    def area(self) -> float:
        """Surface area of the triangle."""
        n = cross(self.v1 - self.v0, self.v2 - self.v0)
        return 0.5 * math.sqrt(float(n @ n))

    def intersect(self, ray: Ray, t_max: float, index: int) -> HitRecord | None:
        """Moller-Trumbore ray/triangle test.

        Returns a :class:`HitRecord` (with the normal flipped to face the
        ray) or ``None`` on a miss / out-of-range hit.
        """
        edge1 = self.v1 - self.v0
        edge2 = self.v2 - self.v0
        pvec = cross(ray.direction, edge2)
        det = dot(edge1, pvec)
        if abs(det) < EPSILON:
            return None
        inv_det = 1.0 / det
        tvec = ray.origin - self.v0
        u = dot(tvec, pvec) * inv_det
        if u < 0.0 or u > 1.0:
            return None
        qvec = cross(tvec, edge1)
        v = dot(ray.direction, qvec) * inv_det
        if v < 0.0 or u + v > 1.0:
            return None
        t = dot(edge2, qvec) * inv_det
        if t < ray.t_min or t > t_max:
            return None
        normal = self.normal
        if dot(normal, ray.direction) > 0.0:
            normal = -normal
        return HitRecord(
            t=t,
            point=ray.at(t),
            normal=normal,
            material_id=self.material_id,
            primitive_index=index,
        )
