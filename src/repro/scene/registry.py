"""The scene registry: one factory for library scenes and recipes.

:mod:`~repro.scene.library` and :mod:`~repro.scene.generators` used to be
separate worlds — named scenes went through a cached ``make_scene`` while
generated scenes were built ad hoc at every call site.  The registry
unifies them behind :class:`~repro.scene.spec.SceneSpec`:

* :data:`RECIPES` catalogues every generator with typed, range-checked
  knobs, so a samplesheet (or service payload) fails loudly on an
  out-of-range or misspelled knob instead of building a nonsense scene;
* :func:`build_scene_from_spec` constructs any spec kind — library,
  recipe, or interpolated sequence frame (knobs *and* camera orbit);
* :func:`resolve_scene` is the process-wide scene cache.  Unlike the old
  unbounded ``lru_cache`` over names (safe for 11 library scenes, a leak
  under procedural sweeps that mint unlimited distinct specs), it keys
  by content fingerprint with an LRU bound — equal-content specs share
  one instance, and old recipe scenes age out.

Every scene built here carries its spec on ``scene.spec``, which is what
lets fingerprints and fleet bundles round-trip scene identity without
the library.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping

from .camera import Camera
from .scene import Scene
from .spec import SceneSpec, as_scene_spec
from .vecmath import vec3

__all__ = [
    "Knob",
    "Recipe",
    "RECIPES",
    "RECIPE_NAMES",
    "validate_recipe_knobs",
    "build_scene_from_spec",
    "resolve_scene",
    "scene_cache_info",
    "clear_scene_cache",
]


@dataclass(frozen=True)
class Knob:
    """One generator parameter: default value and valid closed range."""

    name: str
    default: float
    lo: float
    hi: float
    #: Integer knobs are rounded after sequence interpolation.
    integer: bool = False


@dataclass(frozen=True)
class Recipe:
    """A registered procedural generator and its knob schema."""

    name: str
    build: Callable[[dict[str, float], int], Scene]
    knobs: tuple[Knob, ...]

    def knob(self, name: str) -> Knob:
        for knob in self.knobs:
            if knob.name == name:
                return knob
        raise KeyError(name)


def _build_saturation(knobs: dict[str, float], seed: int) -> Scene:
    from .generators import saturation_scene

    return saturation_scene(knobs["level"], seed=seed)


def _build_clutter(knobs: dict[str, float], seed: int) -> Scene:
    from .generators import clutter_scene

    return clutter_scene(
        int(knobs["triangles_target"]),
        seed=seed,
        reflective_share=knobs["reflective_share"],
    )


RECIPES: dict[str, Recipe] = {
    "saturation": Recipe(
        name="saturation",
        build=_build_saturation,
        knobs=(Knob("level", default=0.5, lo=0.0, hi=1.0),),
    ),
    "clutter": Recipe(
        name="clutter",
        build=_build_clutter,
        knobs=(
            Knob("triangles_target", default=2000.0, lo=1.0, hi=50000.0,
                 integer=True),
            Knob("reflective_share", default=0.2, lo=0.0, hi=1.0),
        ),
    ),
}

RECIPE_NAMES = tuple(sorted(RECIPES))


def validate_recipe_knobs(
    recipe: str, knobs: Mapping[str, float]
) -> dict[str, float]:
    """Resolve ``knobs`` against a recipe's schema.

    Fills defaults, coerces integer knobs, and raises ``ValueError``
    naming the offending knob and its valid range for anything unknown
    or out of range.
    """
    try:
        entry = RECIPES[recipe]
    except KeyError:
        raise ValueError(
            f"unknown scene recipe {recipe!r}; available: "
            f"{', '.join(RECIPE_NAMES)}"
        ) from None
    known = {knob.name for knob in entry.knobs}
    unknown = sorted(set(knobs) - known)
    if unknown:
        raise ValueError(
            f"unknown knob(s) {', '.join(map(repr, unknown))} for recipe "
            f"{recipe!r}; known: {', '.join(sorted(known))}"
        )
    resolved: dict[str, float] = {}
    for knob in entry.knobs:
        value = float(knobs.get(knob.name, knob.default))
        if not knob.lo <= value <= knob.hi:
            raise ValueError(
                f"knob {knob.name!r} of recipe {recipe!r} must be in "
                f"[{knob.lo:g}, {knob.hi:g}], got {value:g}"
            )
        resolved[knob.name] = float(round(value)) if knob.integer else value
    return resolved


def _orbit_camera(camera: Camera, degrees: float) -> Camera:
    """The camera rotated ``degrees`` about the look-at point's Y axis."""
    angle = math.radians(degrees)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    offset = camera.position - camera.look_at
    rotated = vec3(
        cos_a * float(offset[0]) + sin_a * float(offset[2]),
        float(offset[1]),
        -sin_a * float(offset[0]) + cos_a * float(offset[2]),
    )
    return Camera(
        position=camera.look_at + rotated,
        look_at=camera.look_at,
        fov_degrees=camera.fov_degrees,
    )


def build_scene_from_spec(spec: "SceneSpec | str") -> Scene:
    """Construct a fresh scene from any spec kind (uncached)."""
    spec = as_scene_spec(spec)
    if spec.kind == "library":
        from .library import build_scene

        scene = build_scene(spec.name)
    else:
        recipe = RECIPES[spec.name]
        knobs = validate_recipe_knobs(spec.name, spec.resolved_knobs())
        scene = recipe.build(knobs, spec.seed)
        orbit = spec.frame_orbit()
        if orbit:
            scene.camera = _orbit_camera(scene.camera, orbit)
    scene.spec = spec
    return scene


#: LRU bound of the process-wide scene cache.  Generous for interactive
#: use (the whole library plus a sweep's worth of recipes stay resident)
#: while keeping long procedural campaigns from growing without bound.
SCENE_CACHE_MAX = 32

_cache: OrderedDict[str, Scene] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0


def resolve_scene(spec: "SceneSpec | str") -> Scene:
    """The process-cached scene for a spec (or legacy library name).

    Cached by *content fingerprint* with an LRU bound: two specs with
    equal knobs and seed share one :class:`Scene` instance regardless of
    object identity, and the least-recently-used scene is evicted once
    :data:`SCENE_CACHE_MAX` distinct scenes are resident.
    """
    global _cache_hits, _cache_misses
    spec = as_scene_spec(spec)
    key = spec.fingerprint()
    with _cache_lock:
        scene = _cache.get(key)
        if scene is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return scene
        _cache_misses += 1
        scene = build_scene_from_spec(spec)
        _cache[key] = scene
        while len(_cache) > SCENE_CACHE_MAX:
            _cache.popitem(last=False)
        return scene


def scene_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the scene cache (for tests and /metrics)."""
    with _cache_lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "size": len(_cache),
            "max": SCENE_CACHE_MAX,
        }


def clear_scene_cache() -> None:
    """Drop every cached scene (tests use this to isolate cache state)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0
