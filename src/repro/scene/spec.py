"""Scene identity as data: the :class:`SceneSpec`.

Historically "a scene" meant a library name string (``"SPRNG"``), which
breaks down the moment scenes are *generated*: two
``saturation_scene(level=0.4)`` calls with different seeds share the
display name ``SAT040`` but are different workloads, and an animated
sequence has no name at all.  A :class:`SceneSpec` is the first-class,
picklable identity every layer (fingerprints, caches, fleet bundles,
service payloads) keys on instead:

* ``kind="library"`` — one of the fixed LumiBench-like library scenes;
* ``kind="recipe"`` — a procedural generator plus its knob values and
  seed (see :mod:`repro.scene.registry` for the generator catalogue);
* ``kind="frame"`` — frame N of an animated sequence: a recipe whose
  knobs interpolate linearly from ``knobs`` to ``end_knobs`` over
  ``frames`` frames, with an optional camera orbit.

Identity is *content*: :meth:`SceneSpec.fingerprint` hashes every field
through :func:`~repro.core.stages.fingerprint.stable_hash`, so equal
specs share caches and bundles while a changed knob, seed or frame index
never collides.  Construction validates eagerly (unknown library scene,
unknown recipe, out-of-range knob all raise ``ValueError``), matching
:class:`~repro.core.stages.requests.PredictSpec`'s contract that a spec
that exists is a spec the pipeline can build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["SceneSpec", "as_scene_spec", "scene_label"]

_KINDS = ("library", "recipe", "frame")


def _knob_items(knobs: Any, label: str) -> tuple[tuple[str, float], ...]:
    """Canonicalize a knob mapping into sorted ``(name, value)`` pairs."""
    if knobs is None:
        return ()
    if isinstance(knobs, Mapping):
        items = knobs.items()
    elif isinstance(knobs, (tuple, list)):
        items = list(knobs)
    else:
        raise ValueError(
            f"{label} must be a mapping of knob name to number, "
            f"got {type(knobs).__name__}"
        )
    canonical = []
    for item in items:
        try:
            name, value = item
        except (TypeError, ValueError):
            raise ValueError(
                f"{label} must be a mapping of knob name to number"
            ) from None
        if not isinstance(name, str):
            raise ValueError(f"knob names must be strings, got {name!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"knob {name!r} must be a number, got {value!r}"
            )
        canonical.append((name, float(value)))
    canonical.sort()
    return tuple(canonical)


@dataclass(frozen=True)
class SceneSpec:
    """One scene identity: library name, recipe, or sequence frame."""

    kind: str
    #: Library scene name (``kind="library"``) or recipe name otherwise.
    name: str
    #: Recipe knob values as sorted ``(name, value)`` pairs; for
    #: ``kind="frame"`` these are the knobs at the *start* of the sequence.
    knobs: tuple[tuple[str, float], ...] = ()
    seed: int = 0
    #: Sequence position (``kind="frame"`` only): ``frame`` of ``frames``.
    frame: int = 0
    frames: int = 1
    #: Knob values at the end of the sequence; empty means "same as start".
    end_knobs: tuple[tuple[str, float], ...] = field(default=())
    #: Total camera azimuth sweep (degrees) across the sequence; the
    #: camera orbits the look-at point linearly over the frames.
    orbit_degrees: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown scene-spec kind {self.kind!r}; "
                f"expected one of {', '.join(_KINDS)}"
            )
        object.__setattr__(self, "knobs", _knob_items(self.knobs, "knobs"))
        object.__setattr__(
            self, "end_knobs", _knob_items(self.end_knobs, "end_knobs")
        )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.kind == "library":
            from .library import EXTRA_SCENES, SCENE_NAMES

            known = SCENE_NAMES + EXTRA_SCENES
            if self.name not in known:
                raise ValueError(
                    f"unknown scene {self.name!r}; available: "
                    f"{', '.join(known)}"
                )
            if self.knobs or self.end_knobs or self.frames != 1:
                raise ValueError(
                    "library scenes take no knobs, seed variations or frames"
                )
            return
        if self.kind == "recipe":
            if self.frames != 1 or self.frame != 0:
                raise ValueError(
                    "a plain recipe has no frames; use kind='frame' for "
                    "sequence members"
                )
            if self.end_knobs:
                raise ValueError("end_knobs only apply to sequence frames")
        else:  # frame
            if not isinstance(self.frames, int) or self.frames < 2:
                raise ValueError(
                    f"a sequence needs at least 2 frames, got {self.frames!r}"
                )
            if not 0 <= self.frame < self.frames:
                raise ValueError(
                    f"frame index {self.frame} out of range for a "
                    f"{self.frames}-frame sequence"
                )
            extra = sorted(
                {name for name, _ in self.end_knobs}
                - {name for name, _ in self.knobs}
            )
            if extra:
                raise ValueError(
                    "end_knobs may only vary knobs present at the start of "
                    f"the sequence; unknown: {', '.join(map(repr, extra))}"
                )
        # Recipe existence + knob ranges (raises ValueError with the
        # offending knob and its valid range).
        from .registry import validate_recipe_knobs

        validate_recipe_knobs(self.name, dict(self.knobs))
        if self.end_knobs:
            validate_recipe_knobs(self.name, dict(self.end_knobs))

    # -- constructors ---------------------------------------------------

    @classmethod
    def library(cls, name: str) -> "SceneSpec":
        """The library scene called ``name``."""
        return cls(kind="library", name=name)

    @classmethod
    def recipe(
        cls, name: str, knobs: Mapping[str, float] | None = None, seed: int = 0
    ) -> "SceneSpec":
        """A procedural scene: generator ``name`` at ``knobs`` and ``seed``."""
        return cls(kind="recipe", name=name, knobs=knobs or {}, seed=seed)

    @classmethod
    def from_value(cls, value: Any) -> "SceneSpec":
        """Parse a JSON-ish scene value (samplesheet rows, service bodies).

        Accepts a bare library name string, ``{"library": name}``, or
        ``{"recipe": name, "knobs": {...}, "seed": n}``.  Sequence
        entries expand through
        :class:`~repro.scene.animation.SceneSequence`, not here.
        """
        if isinstance(value, SceneSpec):
            return value
        if isinstance(value, str):
            return cls.library(value)
        if not isinstance(value, dict):
            raise ValueError(
                "a scene must be a library name string or an object with "
                f"'library' or 'recipe', got {type(value).__name__}"
            )
        unknown = sorted(set(value) - {"library", "recipe", "knobs", "seed"})
        if unknown:
            raise ValueError(
                f"unknown scene field(s) {', '.join(map(repr, unknown))}; "
                "known: library, recipe, knobs, seed"
            )
        if ("library" in value) == ("recipe" in value):
            raise ValueError(
                "a scene object needs exactly one of 'library' or 'recipe'"
            )
        if "library" in value:
            if "knobs" in value or "seed" in value:
                raise ValueError("library scenes take no knobs or seed")
            return cls.library(value["library"])
        seed = value.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"scene seed must be an integer, got {seed!r}")
        return cls.recipe(value["recipe"], value.get("knobs"), seed=seed)

    # -- derived views --------------------------------------------------

    def fingerprint(self) -> str:
        """Content address of this scene identity."""
        from ..core.stages.fingerprint import stable_hash

        return stable_hash(
            "scene_spec",
            1,  # spec schema version
            self.kind,
            self.name,
            self.knobs,
            self.seed,
            self.frame,
            self.frames,
            self.end_knobs,
            self.orbit_degrees,
        )

    def progress(self) -> float:
        """Position in the sequence as t in [0, 1] (0 for non-frames)."""
        if self.kind != "frame" or self.frames <= 1:
            return 0.0
        return self.frame / (self.frames - 1)

    def resolved_knobs(self) -> dict[str, float]:
        """Effective knob values, interpolated for sequence frames."""
        start = dict(self.knobs)
        if self.kind != "frame" or not self.end_knobs:
            return start
        t = self.progress()
        end = dict(self.end_knobs)
        return {
            name: (1.0 - t) * value + t * end.get(name, value)
            for name, value in start.items()
        }

    def frame_orbit(self) -> float:
        """Camera azimuth offset (degrees) at this frame."""
        return self.orbit_degrees * self.progress()

    def label(self) -> str:
        """Compact human-readable identity for tables and payloads."""
        if self.kind == "library":
            return self.name
        knobs = ",".join(
            f"{name}={value:g}" for name, value in self.resolved_knobs().items()
        )
        base = f"{self.name}[{knobs}]" if knobs else self.name
        if self.seed:
            base += f"#s{self.seed}"
        if self.kind == "frame":
            base += f"@f{self.frame}/{self.frames}"
        return base

    def payload(self) -> Any:
        """JSON-able form (inverse of :meth:`from_value` for non-frames)."""
        if self.kind == "library":
            return self.name
        body: dict[str, Any] = {"recipe": self.name, "knobs": dict(self.knobs)}
        if self.seed:
            body["seed"] = self.seed
        if self.kind == "frame":
            body.update(
                frame=self.frame,
                frames=self.frames,
                end_knobs=dict(self.end_knobs),
                orbit_degrees=self.orbit_degrees,
            )
        return body


def as_scene_spec(value: "SceneSpec | str") -> SceneSpec:
    """Normalize a legacy scene-name string into a :class:`SceneSpec`."""
    if isinstance(value, SceneSpec):
        return value
    if isinstance(value, str):
        return SceneSpec.library(value)
    raise ValueError(
        f"expected a SceneSpec or library scene name, got {type(value).__name__}"
    )


def scene_label(value: "SceneSpec | str") -> str:
    """Display label for either a spec or a legacy name string."""
    return value if isinstance(value, str) else value.label()
