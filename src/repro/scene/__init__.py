"""Scene substrate: geometry, BVH, materials, cameras, lights and the
LumiBench-like procedural scene library."""

from .bvh import BVH, BVHNode, TraversalRecord, build_bvh
from .camera import Camera
from .geometry import AABB, HitRecord, Ray, Triangle
from .lights import DirectionalLight, Light, PointLight
from .materials import Material, MaterialTable, diffuse, emissive, mirror
from .scene import AddressMap, Scene
from .library import (
    REPRESENTATIVE_SUBSET,
    SCENE_NAMES,
    TUNING_SCENES,
    build_scene,
    make_scene,
)

__all__ = [
    "AABB",
    "AddressMap",
    "BVH",
    "BVHNode",
    "Camera",
    "DirectionalLight",
    "HitRecord",
    "Light",
    "Material",
    "MaterialTable",
    "PointLight",
    "Ray",
    "REPRESENTATIVE_SUBSET",
    "SCENE_NAMES",
    "Scene",
    "TUNING_SCENES",
    "TraversalRecord",
    "Triangle",
    "build_bvh",
    "build_scene",
    "diffuse",
    "emissive",
    "make_scene",
    "mirror",
]
