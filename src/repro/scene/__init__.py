"""Scene substrate: geometry, BVH, materials, cameras, lights and the
LumiBench-like procedural scene library."""

from .bvh import BVH, BVHNode, TraversalRecord, build_bvh
from .camera import Camera
from .geometry import AABB, HitRecord, Ray, Triangle
from .lights import DirectionalLight, Light, PointLight
from .materials import Material, MaterialTable, diffuse, emissive, mirror
from .scene import AddressMap, Scene
from .library import (
    REPRESENTATIVE_SUBSET,
    SCENE_NAMES,
    TUNING_SCENES,
    build_scene,
    make_scene,
)
from .spec import SceneSpec, as_scene_spec, scene_label
from .animation import SceneSequence, interpolate_knobs
from .registry import (
    RECIPE_NAMES,
    RECIPES,
    build_scene_from_spec,
    resolve_scene,
    validate_recipe_knobs,
)

__all__ = [
    "AABB",
    "AddressMap",
    "BVH",
    "BVHNode",
    "Camera",
    "DirectionalLight",
    "HitRecord",
    "Light",
    "Material",
    "MaterialTable",
    "PointLight",
    "Ray",
    "RECIPES",
    "RECIPE_NAMES",
    "REPRESENTATIVE_SUBSET",
    "SCENE_NAMES",
    "Scene",
    "SceneSequence",
    "SceneSpec",
    "TUNING_SCENES",
    "TraversalRecord",
    "Triangle",
    "as_scene_spec",
    "build_bvh",
    "build_scene",
    "build_scene_from_spec",
    "diffuse",
    "emissive",
    "interpolate_knobs",
    "make_scene",
    "mirror",
    "resolve_scene",
    "scene_label",
    "validate_recipe_knobs",
]
