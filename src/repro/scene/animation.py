"""Animated scene sequences: knob and camera interpolation over frames.

A :class:`SceneSequence` describes a short animation of one procedural
recipe: knob values interpolate linearly from ``knobs`` to ``end_knobs``
while the camera orbits the look-at point by ``orbit_degrees`` across
``frames`` frames.  Each frame materializes as a self-contained
``kind="frame"`` :class:`~repro.scene.spec.SceneSpec` — it embeds the
whole sequence definition plus its index, so a fleet worker (or a cache
key) can rebuild frame k without any out-of-band sequence state.

Sequences are what make cross-frame locality exploitable: consecutive
frames share most of their geometry and ray distribution, so the
campaign engine threads the wavefront
:class:`~repro.scene.bvh_packet.PathPredictionCache` from frame k into
frame k+1 (the ray-locality idea of "Hash-Based Ray Path Prediction")
and reports the measured cross-frame hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from .spec import SceneSpec, _knob_items

__all__ = ["SceneSequence", "interpolate_knobs"]


def interpolate_knobs(
    start: Mapping[str, float], end: Mapping[str, float], t: float
) -> dict[str, float]:
    """Linear knob interpolation at ``t`` in [0, 1].

    Knobs absent from ``end`` hold their start value.  Monotone in ``t``
    for every knob (each value is a convex combination of its
    endpoints), which sequence tests pin.
    """
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"interpolation parameter must be in [0, 1], got {t}")
    return {
        name: (1.0 - t) * value + t * float(end.get(name, value))
        for name, value in start.items()
    }


@dataclass(frozen=True)
class SceneSequence:
    """An animated sequence of one recipe's scenes."""

    recipe: str
    frames: int
    knobs: tuple[tuple[str, float], ...] = ()
    end_knobs: tuple[tuple[str, float], ...] = ()
    seed: int = 0
    orbit_degrees: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "knobs", _knob_items(self.knobs, "knobs"))
        object.__setattr__(
            self, "end_knobs", _knob_items(self.end_knobs, "end_knobs")
        )
        if not isinstance(self.frames, int) or isinstance(self.frames, bool):
            raise ValueError(f"frames must be an integer, got {self.frames!r}")
        if self.frames < 2:
            raise ValueError(
                f"a sequence needs at least 2 frames, got {self.frames}"
            )
        if isinstance(self.orbit_degrees, bool) or not isinstance(
            self.orbit_degrees, (int, float)
        ):
            raise ValueError(
                f"orbit_degrees must be a number, got {self.orbit_degrees!r}"
            )
        # Validate the recipe and both knob endpoints eagerly by building
        # the first frame's spec (SceneSpec.__post_init__ range-checks).
        self.frame_spec(0)

    @classmethod
    def from_value(cls, value: Any) -> "SceneSequence":
        """Parse a samplesheet sequence entry (JSON-ish dict)."""
        if not isinstance(value, dict):
            raise ValueError(
                f"a sequence must be an object, got {type(value).__name__}"
            )
        allowed = {
            "sequence", "frames", "knobs", "end_knobs", "seed", "orbit_degrees",
        }
        unknown = sorted(set(value) - allowed)
        if unknown:
            raise ValueError(
                f"unknown sequence field(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(allowed))}"
            )
        if "sequence" not in value or "frames" not in value:
            raise ValueError(
                "a sequence entry needs 'sequence' (the recipe name) and "
                "'frames'"
            )
        return cls(
            recipe=value["sequence"],
            frames=value["frames"],
            knobs=value.get("knobs") or {},
            end_knobs=value.get("end_knobs") or {},
            seed=value.get("seed", 0),
            orbit_degrees=float(value.get("orbit_degrees", 0.0)),
        )

    def frame_spec(self, frame: int) -> SceneSpec:
        """The self-contained :class:`SceneSpec` of frame ``frame``."""
        return SceneSpec(
            kind="frame",
            name=self.recipe,
            knobs=self.knobs,
            seed=self.seed,
            frame=frame,
            frames=self.frames,
            end_knobs=self.end_knobs,
            orbit_degrees=self.orbit_degrees,
        )

    def frame_specs(self) -> list[SceneSpec]:
        """All frames, in playback order."""
        return [self.frame_spec(frame) for frame in range(self.frames)]
