"""Scene container tying geometry, materials, lights and camera together.

A :class:`Scene` owns the BVH and assigns every BVH node and triangle a
*memory address* in a synthetic GPU address space.  Those addresses are what
make the pipeline end-to-end faithful: the tracer records which nodes a ray
touched, and the timing simulator replays the corresponding cache-line
accesses through L1/L2/DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bvh import BVH, build_bvh
from .camera import Camera
from .geometry import Triangle
from .lights import Light
from .materials import MaterialTable

__all__ = ["Scene", "AddressMap"]

# Synthetic GPU address-space layout.  Regions are disjoint and generously
# sized; exact values only matter for cache-set mapping in the GPU model.
_BVH_NODE_BASE = 0x1000_0000
_BVH_NODE_SIZE = 64  # two AABBs + child indices, like a compact BVH2 node
_TRIANGLE_BASE = 0x4000_0000
_TRIANGLE_SIZE = 48  # three fp32x3 vertices + material id
_FRAMEBUFFER_BASE = 0x8000_0000
_PIXEL_SIZE = 16  # rgba fp32
_SHADER_DATA_BASE = 0xC000_0000


@dataclass(frozen=True)
class AddressMap:
    """Maps scene entities to synthetic global-memory addresses."""

    node_base: int = _BVH_NODE_BASE
    node_size: int = _BVH_NODE_SIZE
    triangle_base: int = _TRIANGLE_BASE
    triangle_size: int = _TRIANGLE_SIZE
    framebuffer_base: int = _FRAMEBUFFER_BASE
    pixel_size: int = _PIXEL_SIZE
    shader_data_base: int = _SHADER_DATA_BASE

    def node_address(self, node_index: int) -> int:
        """Address of a BVH node."""
        return self.node_base + node_index * self.node_size

    def triangle_address(self, tri_index: int) -> int:
        """Address of a triangle record."""
        return self.triangle_base + tri_index * self.triangle_size

    def pixel_address(self, px: int, py: int, width: int) -> int:
        """Framebuffer address of pixel ``(px, py)``."""
        return self.framebuffer_base + (py * width + px) * self.pixel_size


class Scene:
    """A renderable scene.

    Args:
        triangles: the scene geometry.
        camera: viewpoint generating primary rays.
        lights: light sources for shadow rays (may be empty for pure
            path-traced scenes relying on emissive geometry).
        materials: material table; triangle ``material_id`` indexes it.
        name: identifier used in experiment reports.
        bvh_method: build strategy passed to :func:`build_bvh`.
        max_bounces: path depth the tracer uses for this scene; the scene
            library tunes this per workload (e.g. PARK traces deep paths).
    """

    def __init__(
        self,
        triangles: list[Triangle],
        camera: Camera,
        lights: list[Light] | None = None,
        materials: MaterialTable | None = None,
        name: str = "scene",
        bvh_method: str = "sah",
        max_bounces: int = 2,
    ) -> None:
        if not triangles:
            raise ValueError("a scene needs at least one triangle")
        self.name = name
        self.camera = camera
        self.lights: list[Light] = list(lights or [])
        self.materials = materials if materials is not None else MaterialTable()
        self.max_bounces = max_bounces
        self.bvh: BVH = build_bvh(triangles, method=bvh_method)
        self.addresses = AddressMap()
        self._packed_bvh = None
        #: The :class:`~repro.scene.spec.SceneSpec` this scene was built
        #: from (set by the registry); ``None`` for hand-assembled scenes.
        self.spec = None

    @property
    def packed_bvh(self):
        """SoA view of the BVH for the packet backend (built lazily).

        Imported lazily so scalar-only users never pay the array build.
        """
        if self._packed_bvh is None:
            from .bvh_packet import PackedBVH

            self._packed_bvh = PackedBVH(self.bvh)
        return self._packed_bvh

    @property
    def triangles(self) -> list[Triangle]:
        return self.bvh.triangles

    def triangle_count(self) -> int:
        return len(self.bvh.triangles)

    def node_count(self) -> int:
        return len(self.bvh.nodes)

    def material_of(self, tri_index: int):
        """Material of a triangle by primitive index."""
        return self.materials[self.bvh.triangles[tri_index].material_id]

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        return (
            f"{self.name}: {self.triangle_count()} tris, "
            f"{self.node_count()} BVH nodes (depth {self.bvh.depth()}), "
            f"{len(self.lights)} lights, max_bounces={self.max_bounces}"
        )
