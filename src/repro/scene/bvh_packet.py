"""Packet (wavefront) BVH traversal: batched kernels over SoA node arrays.

:class:`PackedBVH` re-expresses a built :class:`~repro.scene.bvh.BVH` as
contiguous NumPy structure-of-arrays — node bounds, child/leaf indices and
pre-gathered Möller–Trumbore triangle operands — and traverses *batches* of
rays at once.  Each traversal step pops one node per active ray from a
vectorized per-ray stack, runs the AABB slab test across the whole batch
with masked NumPy ops, expands leaf hits into (ray, triangle) pairs and
intersects them with a batched Möller–Trumbore kernel.

Correctness contract
--------------------

The timing simulator replays per-ray node/triangle visit sequences, so the
packet kernels are built to be **byte-identical** to the scalar backend
(:meth:`BVH.intersect` / :meth:`BVH.occluded`):

* every ray keeps its *own* traversal stack, popped in exactly the scalar
  order (near-child-first for closest-hit, left-first for any-hit), so the
  per-ray visit sequence is the scalar sequence — only the *interleaving
  across rays* changes, which nothing observes;
* all arithmetic maps 1:1 onto the scalar expressions (same operand order,
  same IEEE double ops), so hit distances, points and normals carry the
  same bits;
* within a leaf, the sequential "accept if ``t <= best_t``" rule resolves
  to *min t, ties to the last slot*, which the batched reduction replicates
  exactly;
* rays with a zero direction component (where the scalar slab test leans
  on ±inf corner cases that NumPy min/max reductions do not share) are
  routed through the scalar backend unchanged.

Path-prediction cache
---------------------

:class:`PathPredictionCache` implements hash-based ray path prediction
(Demoullin, Gubran, Aamodt): a quantized (origin, direction) key maps to
the leaf that last terminated a matching ray.  A predicted leaf is
*validated* by a direct any-hit test before being trusted; misses fall
back to full traversal, which re-trains the entry.  Because a validated
prediction skips the traversal walk entirely, it changes the node-visit
*record* — so the cache is only consulted when no
:class:`~repro.scene.bvh.TraversalRecord` collection was requested (e.g.
``occluded()`` any-hit shadow rays during pure image rendering).  The
occlusion *answer* is unchanged either way: a validated hit is a real hit.
"""

from __future__ import annotations

import numpy as np

from .bvh import BVH, TraversalRecord
from .geometry import Ray

__all__ = ["PackedBVH", "BatchIntersection", "BatchOcclusion", "PathPredictionCache"]

_INF = float("inf")

#: Epsilon window of the scalar Möller–Trumbore determinant test.
_DET_EPS = 1e-12


class BatchIntersection:
    """Closest-hit results for a batch of rays (SoA).

    ``t``/``tri`` are per-ray arrays (``tri == -1`` means miss);
    ``nodes``/``tris`` are per-ray Python lists of visited node / tested
    triangle indices in scalar visit order (``None`` when records were not
    requested).
    """

    __slots__ = ("t", "tri", "nodes", "tris")

    def __init__(self, t, tri, nodes, tris) -> None:
        self.t = t
        self.tri = tri
        self.nodes = nodes
        self.tris = tris


class BatchOcclusion:
    """Any-hit results for a batch of shadow rays (SoA).

    ``occluded`` is a per-ray bool array; ``nodes``/``tris`` as in
    :class:`BatchIntersection`; ``hit_leaf`` records, for occluded rays,
    the leaf node whose triangle produced the hit (-1 otherwise) — the
    training signal for :class:`PathPredictionCache`.
    """

    __slots__ = ("occluded", "nodes", "tris", "hit_leaf")

    def __init__(self, occluded, nodes, tris, hit_leaf) -> None:
        self.occluded = occluded
        self.nodes = nodes
        self.tris = tris
        self.hit_leaf = hit_leaf


def _gather_rays(rays: list[Ray]):
    """Split a ray list into SoA arrays (origins, dirs, t_min, t_max)."""
    origins = np.array([r.origin for r in rays], dtype=np.float64)
    dirs = np.array([r.direction for r in rays], dtype=np.float64)
    t_min = np.array([r.t_min for r in rays], dtype=np.float64)
    t_max = np.array([r.t_max for r in rays], dtype=np.float64)
    return origins, dirs, t_min, t_max


def _assemble_records(steps, ray_count: int) -> list[list[int]]:
    """Turn per-step (ray_ids, values) arrays into per-ray ordered lists.

    Steps were appended in traversal order and each ray contributes its
    values in-order within a step, so a stable sort by ray id yields every
    ray's scalar-identical visit sequence.  One bulk ``tolist`` plus plain
    list slicing beats ``np.split`` (which materializes thousands of array
    views) by a wide margin on frame-sized batches.
    """
    if not steps:
        return [[] for _ in range(ray_count)]
    ray_ids = np.concatenate([s[0] for s in steps])
    values = np.concatenate([s[1] for s in steps])
    order = np.argsort(ray_ids, kind="stable")
    flat = values[order].tolist()
    bounds = np.cumsum(np.bincount(ray_ids, minlength=ray_count)).tolist()
    out = []
    start = 0
    for stop in bounds:
        out.append(flat[start:stop])
        start = stop
    return out


def _segment_local_index(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for group sizes ``counts``."""
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


class PackedBVH:
    """A :class:`BVH` flattened into SoA arrays with packet kernels.

    The arrays are materialized from the scalar backend's own flattened
    scalar tuples (``BVH._flatten``), so both backends compute from the
    exact same float values.
    """

    def __init__(self, bvh: BVH) -> None:
        self.bvh = bvh
        flat = np.array(bvh._flat_nodes, dtype=np.float64)
        self.node_lo = np.ascontiguousarray(flat[:, 0:3])
        self.node_hi = np.ascontiguousarray(flat[:, 3:6])
        self.node_left = flat[:, 6].astype(np.int32)
        self.node_right = flat[:, 7].astype(np.int32)
        self.node_first = flat[:, 8].astype(np.int64)
        self.node_count = flat[:, 9].astype(np.int64)
        hints = bvh._order_hints
        self.hint_axis = np.array([h[0] for h in hints], dtype=np.int64)
        self.hint_left_lower = np.array([h[1] for h in hints], dtype=bool)
        self.order = np.array(bvh.primitive_order, dtype=np.int64)
        tris = np.array(bvh._flat_tris, dtype=np.float64)
        self.tri_v0 = np.ascontiguousarray(tris[:, 0:3])
        self.tri_e1 = np.ascontiguousarray(tris[:, 3:6])
        self.tri_e2 = np.ascontiguousarray(tris[:, 6:9])
        self.tri_normal = np.array(
            [tri.normal for tri in bvh.triangles], dtype=np.float64
        )
        self.tri_material = np.array(
            [tri.material_id for tri in bvh.triangles], dtype=np.int64
        )
        # Stack bound: near-first traversal holds at most one deferred far
        # child per tree level.
        self._stack_depth = bvh.depth() + 2

    # ------------------------------------------------------------------
    # batched Möller–Trumbore over (ray, triangle) pairs
    # ------------------------------------------------------------------

    def _moller_trumbore_pairs(self, tri_idx, o, d, t_lo, t_hi):
        """Vectorized scalar-equivalent MT test for (ray, triangle) pairs.

        Returns ``(t, valid)``: the hit parameter per pair and whether the
        pair passes every scalar acceptance test against ``[t_lo, t_hi]``.
        Arithmetic mirrors :func:`~repro.scene.bvh._moller_trumbore`
        operand-for-operand so accepted ``t`` values are bit-identical.
        """
        e1 = self.tri_e1[tri_idx]
        e2 = self.tri_e2[tri_idx]
        v0 = self.tri_v0[tri_idx]
        dx, dy, dz = d[:, 0], d[:, 1], d[:, 2]
        px = dy * e2[:, 2] - dz * e2[:, 1]
        py = dz * e2[:, 0] - dx * e2[:, 2]
        pz = dx * e2[:, 1] - dy * e2[:, 0]
        det = e1[:, 0] * px + e1[:, 1] * py + e1[:, 2] * pz
        valid = ~((det > -_DET_EPS) & (det < _DET_EPS))
        inv_det = 1.0 / np.where(valid, det, 1.0)
        tvx = o[:, 0] - v0[:, 0]
        tvy = o[:, 1] - v0[:, 1]
        tvz = o[:, 2] - v0[:, 2]
        u = (tvx * px + tvy * py + tvz * pz) * inv_det
        valid &= (u >= 0.0) & (u <= 1.0)
        qx = tvy * e1[:, 2] - tvz * e1[:, 1]
        qy = tvz * e1[:, 0] - tvx * e1[:, 2]
        qz = tvx * e1[:, 1] - tvy * e1[:, 0]
        v = (dx * qx + dy * qy + dz * qz) * inv_det
        valid &= (v >= 0.0) & (u + v <= 1.0)
        t = (e2[:, 0] * qx + e2[:, 1] * qy + e2[:, 2] * qz) * inv_det
        valid &= (t >= t_lo) & (t <= t_hi)
        return t, valid

    # ------------------------------------------------------------------
    # closest hit
    # ------------------------------------------------------------------

    def intersect_batch(
        self, rays: list[Ray], want_records: bool = True
    ) -> BatchIntersection:
        """Closest-hit traversal of a list of :class:`Ray` objects."""
        origins, dirs, t_min, t_max = _gather_rays(rays)
        return self.intersect_arrays(
            origins, dirs, t_min, t_max, want_records=want_records
        )

    def intersect_arrays(
        self, origins, dirs, t_min, t_max, want_records: bool = True
    ) -> BatchIntersection:
        """Closest-hit traversal of a ray batch given as SoA arrays.

        Per-ray results (and, when ``want_records``, per-ray visit
        records) are byte-identical to calling :meth:`BVH.intersect` on
        each ray in turn.
        """
        n = origins.shape[0]
        nodes_out: list[list[int]] | None = None
        tris_out: list[list[int]] | None = None

        # Zero direction components hit the scalar backend's ±inf slab
        # corner cases; delegate those rays to it verbatim.
        scalar_mask = np.any(dirs == 0.0, axis=1)
        if not scalar_mask.any():
            best_t, best_tri, node_steps, tri_steps = self._traverse_closest(
                origins, dirs, t_min, t_max.copy(), want_records
            )
            if want_records:
                nodes_out = _assemble_records(node_steps, n)
                tris_out = _assemble_records(tri_steps, n)
            return BatchIntersection(best_t, best_tri, nodes_out, tris_out)

        best_t = t_max.copy()
        best_tri = np.full(n, -1, dtype=np.int64)
        if want_records:
            nodes_out = [[] for _ in range(n)]
            tris_out = [[] for _ in range(n)]
        for i in np.nonzero(scalar_mask)[0]:
            ray = Ray(
                origin=origins[i], direction=dirs[i],
                t_min=float(t_min[i]), t_max=float(t_max[i]),
            )
            record = TraversalRecord() if want_records else None
            hit = self.bvh.intersect(ray, record)
            if hit is not None:
                best_t[i] = hit.t
                best_tri[i] = hit.primitive_index
            if record is not None:
                nodes_out[i] = record.nodes_visited  # type: ignore[index]
                tris_out[i] = record.tris_tested  # type: ignore[index]

        packet = np.nonzero(~scalar_mask)[0]
        if packet.size:
            t_p, tri_p, node_steps, tri_steps = self._traverse_closest(
                origins[packet], dirs[packet], t_min[packet],
                t_max[packet].copy(), want_records,
            )
            best_t[packet] = t_p
            best_tri[packet] = tri_p
            if want_records:
                for local, lst in enumerate(
                    _assemble_records(node_steps, packet.size)
                ):
                    nodes_out[int(packet[local])] = lst  # type: ignore[index]
                for local, lst in enumerate(
                    _assemble_records(tri_steps, packet.size)
                ):
                    tris_out[int(packet[local])] = lst  # type: ignore[index]
        return BatchIntersection(best_t, best_tri, nodes_out, tris_out)

    def _traverse_closest(self, origins, dirs, t_min, best_t, want_records):
        """Packet core: per-ray stacks stepped in lock-step (no zero dirs).

        ``best_t`` starts as the per-ray ``t_max`` budget and is tightened
        in place as hits land.
        """
        n = origins.shape[0]
        inv = 1.0 / dirs
        nonneg = dirs >= 0.0
        best_tri = np.full(n, -1, dtype=np.int64)
        stack = np.empty((n, self._stack_depth), dtype=np.int32)
        stack[:, 0] = 0
        sp = np.ones(n, dtype=np.int32)
        node_steps: list = []
        tri_steps: list = []

        while True:
            alive = np.nonzero(sp > 0)[0]
            if alive.size == 0:
                break
            sp[alive] -= 1
            node = stack[alive, sp[alive]].astype(np.int64)
            if want_records:
                node_steps.append((alive, node))

            lo = self.node_lo[node]
            hi = self.node_hi[node]
            o = origins[alive]
            iv = inv[alive]
            t0 = (lo - o) * iv
            t1 = (hi - o) * iv
            near = np.minimum(t0, t1)
            far = np.maximum(t0, t1)
            enter = np.maximum(near.max(axis=1), t_min[alive])
            exit_ = np.minimum(far.min(axis=1), best_t[alive])
            passed = enter <= exit_
            count = self.node_count[node]

            interior = np.nonzero(passed & (count == 0))[0]
            if interior.size:
                ridx = alive[interior]
                nd = node[interior]
                axis = self.hint_axis[nd]
                left = self.node_left[nd]
                right = self.node_right[nd]
                left_first = nonneg[ridx, axis] == self.hint_left_lower[nd]
                near_child = np.where(left_first, left, right)
                far_child = np.where(left_first, right, left)
                s = sp[ridx]
                stack[ridx, s] = far_child
                stack[ridx, s + 1] = near_child
                sp[ridx] = s + 2

            leaves = np.nonzero(passed & (count > 0))[0]
            if leaves.size:
                ridx = alive[leaves]
                nd = node[leaves]
                c = count[leaves]
                slots = np.repeat(self.node_first[nd], c)
                slots += _segment_local_index(c)
                tri_idx = self.order[slots]
                pair_ray = np.repeat(ridx, c)
                if want_records:
                    tri_steps.append((pair_ray, tri_idx))
                t, valid = self._moller_trumbore_pairs(
                    tri_idx,
                    origins[pair_ray],
                    dirs[pair_ray],
                    t_min[pair_ray],
                    best_t[pair_ray],
                )
                tval = np.where(valid, t, _INF)
                starts = np.cumsum(c) - c
                gmin = np.minimum.reduceat(tval, starts)
                has_hit = np.nonzero(gmin < _INF)[0]
                if has_hit.size:
                    # Scalar tie rule: equal-t hits overwrite, so the last
                    # slot achieving the group minimum wins.
                    pair_pos = np.arange(tval.shape[0], dtype=np.int64)
                    cand = np.where(
                        tval == np.repeat(gmin, c), pair_pos, -1
                    )
                    glast = np.maximum.reduceat(cand, starts)
                    winners = ridx[has_hit]
                    best_t[winners] = gmin[has_hit]
                    best_tri[winners] = tri_idx[glast[has_hit]]
        return best_t, best_tri, node_steps, tri_steps

    # ------------------------------------------------------------------
    # any hit
    # ------------------------------------------------------------------

    def occluded_batch(
        self,
        rays: list[Ray],
        want_records: bool = True,
        cache: "PathPredictionCache | None" = None,
    ) -> BatchOcclusion:
        """Any-hit traversal of a list of :class:`Ray` shadow rays."""
        origins, dirs, t_min, t_max = _gather_rays(rays)
        return self.occluded_arrays(
            origins, dirs, t_min, t_max, want_records=want_records, cache=cache
        )

    def occluded_arrays(
        self,
        origins,
        dirs,
        t_min,
        t_max,
        want_records: bool = True,
        cache: "PathPredictionCache | None" = None,
    ) -> BatchOcclusion:
        """Any-hit traversal of a shadow-ray batch given as SoA arrays.

        With ``want_records`` the per-ray visit/test records are
        byte-identical to scalar :meth:`BVH.occluded` (including stopping
        a leaf's triangle record at the first hit).  ``cache`` may only be
        supplied when records are off: validated predictions skip the
        traversal walk (identical occlusion answer, different walk).
        """
        if cache is not None and want_records:
            raise ValueError(
                "the path-prediction cache changes node-visit records; "
                "enable it only when records are not collected"
            )
        n = origins.shape[0]
        occluded = np.zeros(n, dtype=bool)
        hit_leaf = np.full(n, -1, dtype=np.int64)
        nodes_out: list[list[int]] | None = None
        tris_out: list[list[int]] | None = None

        scalar_mask = np.any(dirs == 0.0, axis=1)
        if scalar_mask.any():
            if want_records:
                nodes_out = [[] for _ in range(n)]
                tris_out = [[] for _ in range(n)]
            for i in np.nonzero(scalar_mask)[0]:
                ray = Ray(
                    origin=origins[i], direction=dirs[i],
                    t_min=float(t_min[i]), t_max=float(t_max[i]),
                )
                record = TraversalRecord() if want_records else None
                occluded[i] = self.bvh.occluded(ray, record)
                if record is not None:
                    nodes_out[i] = record.nodes_visited  # type: ignore[index]
                    tris_out[i] = record.tris_tested  # type: ignore[index]
            pending = np.nonzero(~scalar_mask)[0]
            full_batch = False
        else:
            pending = np.arange(n)
            full_batch = True

        keys = None
        if cache is not None and pending.size:
            keys = cache.keys(origins[pending], dirs[pending])
            predicted = cache.lookup(keys)
            candidates = np.nonzero(predicted >= 0)[0]
            if candidates.size:
                rows = pending[candidates]
                confirmed = self._leaf_any_hit(
                    predicted[candidates],
                    origins[rows],
                    dirs[rows],
                    t_min[rows],
                    t_max[rows],
                )
                hit_rows = rows[confirmed]
                occluded[hit_rows] = True
                hit_leaf[hit_rows] = predicted[candidates[confirmed]]
                cache.note_results(
                    keys[candidates[confirmed]].tolist(),
                    int(candidates.size - confirmed.sum()),
                )
                keep = np.ones(pending.size, dtype=bool)
                keep[candidates[confirmed]] = False
                pending = pending[keep]
                keys = keys[keep]
                full_batch = False

        if pending.size:
            occ_p, leaf_p, node_steps, tri_steps = self._traverse_any(
                origins[pending], dirs[pending], t_min[pending],
                t_max[pending], want_records,
            )
            occluded[pending] = occ_p
            hit_leaf[pending] = leaf_p
            if want_records:
                if full_batch:
                    nodes_out = _assemble_records(node_steps, n)
                    tris_out = _assemble_records(tri_steps, n)
                else:
                    if nodes_out is None:
                        nodes_out = [[] for _ in range(n)]
                        tris_out = [[] for _ in range(n)]
                    for local, lst in enumerate(
                        _assemble_records(node_steps, pending.size)
                    ):
                        nodes_out[int(pending[local])] = lst
                    for local, lst in enumerate(
                        _assemble_records(tri_steps, pending.size)
                    ):
                        tris_out[int(pending[local])] = lst
            if cache is not None and keys is not None:
                cache.train(keys, occ_p, leaf_p)
        elif want_records and nodes_out is None:
            nodes_out = [[] for _ in range(n)]
            tris_out = [[] for _ in range(n)]
        return BatchOcclusion(occluded, nodes_out, tris_out, hit_leaf)

    def _traverse_any(self, origins, dirs, t_min, t_max, want_records):
        """Any-hit packet core (scalar push order: right then left)."""
        n = origins.shape[0]
        inv = 1.0 / dirs
        occluded = np.zeros(n, dtype=bool)
        hit_leaf = np.full(n, -1, dtype=np.int64)
        stack = np.empty((n, self._stack_depth), dtype=np.int32)
        stack[:, 0] = 0
        sp = np.ones(n, dtype=np.int32)
        node_steps: list = []
        tri_steps: list = []

        while True:
            alive = np.nonzero(sp > 0)[0]
            if alive.size == 0:
                break
            sp[alive] -= 1
            node = stack[alive, sp[alive]].astype(np.int64)
            if want_records:
                node_steps.append((alive, node))

            lo = self.node_lo[node]
            hi = self.node_hi[node]
            o = origins[alive]
            iv = inv[alive]
            t0 = (lo - o) * iv
            t1 = (hi - o) * iv
            near = np.minimum(t0, t1)
            far = np.maximum(t0, t1)
            enter = np.maximum(near.max(axis=1), t_min[alive])
            exit_ = np.minimum(far.min(axis=1), t_max[alive])
            passed = enter <= exit_
            count = self.node_count[node]

            interior = np.nonzero(passed & (count == 0))[0]
            if interior.size:
                ridx = alive[interior]
                nd = node[interior]
                s = sp[ridx]
                stack[ridx, s] = self.node_right[nd]
                stack[ridx, s + 1] = self.node_left[nd]
                sp[ridx] = s + 2

            leaves = np.nonzero(passed & (count > 0))[0]
            if leaves.size:
                ridx = alive[leaves]
                nd = node[leaves]
                c = count[leaves]
                slots = np.repeat(self.node_first[nd], c)
                slots += _segment_local_index(c)
                tri_idx = self.order[slots]
                pair_ray = np.repeat(ridx, c)
                _, valid = self._moller_trumbore_pairs(
                    tri_idx,
                    origins[pair_ray],
                    dirs[pair_ray],
                    t_min[pair_ray],
                    t_max[pair_ray],
                )
                total = int(c.sum())
                pair_pos = np.arange(total, dtype=np.int64)
                starts = np.cumsum(c) - c
                # First hitting slot per ray; the scalar loop records
                # triangles up to (and including) it, then returns.
                first_hit = np.minimum.reduceat(
                    np.where(valid, pair_pos, total), starts
                )
                if want_records:
                    keep = pair_pos <= np.repeat(first_hit, c)
                    tri_steps.append((pair_ray[keep], tri_idx[keep]))
                hits = np.nonzero(first_hit < total)[0]
                if hits.size:
                    winners = ridx[hits]
                    occluded[winners] = True
                    hit_leaf[winners] = nd[hits]
                    sp[winners] = 0  # terminate: scalar returns immediately
        return occluded, hit_leaf, node_steps, tri_steps

    def _leaf_any_hit(self, leaf_nodes, origins, dirs, t_min, t_max):
        """Any-hit test restricted to given leaf nodes (cache validation)."""
        c = self.node_count[leaf_nodes]
        slots = np.repeat(self.node_first[leaf_nodes], c)
        slots += _segment_local_index(c)
        tri_idx = self.order[slots]
        group = np.repeat(np.arange(leaf_nodes.shape[0]), c)
        _, valid = self._moller_trumbore_pairs(
            tri_idx, origins[group], dirs[group], t_min[group], t_max[group]
        )
        starts = np.cumsum(c) - c
        return np.maximum.reduceat(valid.astype(np.int8), starts) > 0


class PathPredictionCache:
    """Hash-based ray path prediction for any-hit queries.

    Quantizes ray origin (relative to the scene's root bounds) and
    direction into an integer key, and remembers the leaf that occluded
    the last matching ray.  Predictions are always *validated* with a
    direct leaf test before being trusted, so a stale or colliding entry
    costs one extra leaf test and never a wrong answer.
    """

    def __init__(
        self,
        packed: PackedBVH,
        origin_cells: int = 64,
        direction_cells: int = 32,
        max_entries: int = 1 << 18,
    ) -> None:
        self.packed = packed
        self.origin_cells = origin_cells
        self.direction_cells = direction_cells
        self.max_entries = max_entries
        root_lo = packed.node_lo[0]
        root_hi = packed.node_hi[0]
        extent = np.maximum(root_hi - root_lo, 1e-9)
        self._lo = root_lo
        self._inv_extent = 1.0 / extent
        self.table: dict[int, int] = {}
        self.lookups = 0
        self.hits = 0
        self.mispredictions = 0
        #: Validated hits served by entries that were already in the
        #: table at the last :meth:`rebind` — i.e. knowledge carried in
        #: from a previous frame rather than learned within this one.
        self.carried_hits = 0
        self._carried: frozenset[int] = frozenset()

    def keys(self, origins: np.ndarray, dirs: np.ndarray) -> np.ndarray:
        """Quantized int64 keys for a batch of rays."""
        oc = self.origin_cells
        dc = self.direction_cells
        cell = ((origins - self._lo) * self._inv_extent * oc).astype(np.int64)
        np.clip(cell, 0, oc - 1, out=cell)
        dq = ((dirs + 1.0) * 0.5 * dc).astype(np.int64)
        np.clip(dq, 0, dc - 1, out=dq)
        key = cell[:, 0]
        key = key * oc + cell[:, 1]
        key = key * oc + cell[:, 2]
        key = key * dc + dq[:, 0]
        key = key * dc + dq[:, 1]
        key = key * dc + dq[:, 2]
        return key

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Predicted leaf per key (-1 for cold entries)."""
        table = self.table
        self.lookups += keys.shape[0]
        return np.array(
            [table.get(k, -1) for k in keys.tolist()], dtype=np.int64
        )

    def train(
        self, keys: np.ndarray, occluded: np.ndarray, hit_leaf: np.ndarray
    ) -> None:
        """Learn from full-traversal outcomes (and unlearn dead entries)."""
        if len(self.table) >= self.max_entries:
            self.table.clear()
        table = self.table
        for key, occ, leaf in zip(
            keys.tolist(), occluded.tolist(), hit_leaf.tolist()
        ):
            if occ:
                table[key] = leaf
            else:
                table.pop(key, None)

    def note_results(self, confirmed_keys: list[int], rejected: int) -> None:
        """Account a batch of validated predictions.

        ``confirmed_keys`` are the keys whose predicted leaf passed the
        direct leaf test; ``rejected`` counts the predictions that
        failed it.  Hits on keys present at the last :meth:`rebind`
        accrue to :attr:`carried_hits` — the cross-frame signal.
        """
        self.hits += len(confirmed_keys)
        self.mispredictions += rejected
        carried = self._carried
        if carried:
            self.carried_hits += sum(
                1 for key in confirmed_keys if key in carried
            )

    def rebind(self, packed: PackedBVH) -> None:
        """Re-anchor the cache to a (new frame's) BVH, keeping the table.

        Consecutive frames of an animated sequence share most of their
        ray/occluder structure, so carrying the table across frames pays
        off ("Hash-Based Ray Path Prediction"-style frame coherence).
        Entries whose leaf index no longer names a leaf of the new BVH
        are pruned; surviving entries stay *predictions* — every lookup
        is still validated with a direct leaf test, so a stale entry can
        cost a misprediction but never a wrong occlusion answer.
        """
        n_nodes = packed.node_count.shape[0]
        self.table = {
            key: leaf
            for key, leaf in self.table.items()
            if 0 <= leaf < n_nodes and packed.node_count[leaf] > 0
        }
        self.packed = packed
        root_lo = packed.node_lo[0]
        root_hi = packed.node_hi[0]
        extent = np.maximum(root_hi - root_lo, 1e-9)
        self._lo = root_lo
        self._inv_extent = 1.0 / extent
        self._carried = frozenset(self.table)

    @property
    def hit_rate(self) -> float:
        """Validated-hit fraction of all lookups."""
        return self.hits / self.lookups if self.lookups else 0.0
