"""Light sources for shadow-ray casting.

The paper's Fig. 1 workflow — primary ray, then a secondary (shadow) ray
towards the light — is driven by these light descriptions.  Shadow rays are
what create the "secondary ray" traffic whose divergence Zatel's fine-grained
partitioning is designed to sample well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .geometry import Ray
from .vecmath import length, normalize, vec3

__all__ = ["PointLight", "DirectionalLight", "Light"]


@dataclass
class PointLight:
    """An omnidirectional point light at ``position``."""

    position: np.ndarray
    intensity: np.ndarray = field(default_factory=lambda: vec3(1.0, 1.0, 1.0))

    def shadow_ray(self, from_point: np.ndarray) -> tuple[Ray, float]:
        """Ray from ``from_point`` towards the light and the light distance.

        The returned ray's ``t_max`` is set just short of the light so
        occluders behind the light do not count.
        """
        to_light = self.position - from_point
        distance = length(to_light)
        ray = Ray(
            origin=from_point,
            direction=normalize(to_light),
            t_min=1e-4,
            t_max=distance - 1e-4,
        )
        return ray, distance

    def irradiance_at(self, distance: float) -> np.ndarray:
        """Inverse-square falloff irradiance."""
        return self.intensity / max(distance * distance, 1e-6)


@dataclass
class DirectionalLight:
    """A light infinitely far away along ``-direction`` (e.g. the sun)."""

    direction: np.ndarray  # direction the light *travels* (towards surfaces)
    intensity: np.ndarray = field(default_factory=lambda: vec3(1.0, 1.0, 1.0))

    def __post_init__(self) -> None:
        self.direction = normalize(self.direction)

    def shadow_ray(self, from_point: np.ndarray) -> tuple[Ray, float]:
        """Shadow ray towards the light (opposite the travel direction)."""
        ray = Ray(
            origin=from_point,
            direction=-self.direction,
            t_min=1e-4,
            t_max=float("inf"),
        )
        return ray, float("inf")

    def irradiance_at(self, distance: float) -> np.ndarray:  # noqa: ARG002
        """Directional lights do not attenuate with distance."""
        return self.intensity


Light = PointLight | DirectionalLight
