"""Surface materials for the tracer.

The material model is deliberately small — Lambertian diffuse, perfect
mirror, and emissive — because Zatel's behaviour depends on *how long rays
bounce and where they go*, not on shading fidelity.  Reflectivity is the
knob the scene library uses to create long secondary-ray chains (BATH) and
early terminations (SPRNG).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vecmath import vec3

__all__ = ["Material", "diffuse", "mirror", "emissive", "MaterialTable"]


@dataclass(frozen=True)
class Material:
    """A surface description.

    Attributes:
        albedo: diffuse reflectance per RGB channel, each in [0, 1].
        reflectivity: probability mass of perfect specular reflection in
            [0, 1]; the tracer spawns a mirror bounce when a path sample
            falls under this threshold.
        emission: radiated RGB radiance (non-zero makes this a light).
        shade_cost: extra shader ALU instructions this material's hit shader
            executes — feeds the PTX/shader model, letting scenes vary their
            compute intensity.
    """

    albedo: np.ndarray = field(default_factory=lambda: vec3(0.8, 0.8, 0.8))
    reflectivity: float = 0.0
    emission: np.ndarray = field(default_factory=lambda: vec3(0.0, 0.0, 0.0))
    shade_cost: int = 12

    def is_emissive(self) -> bool:
        """Whether the material radiates light."""
        return bool(np.any(self.emission > 0.0))


def diffuse(r: float, g: float, b: float, shade_cost: int = 12) -> Material:
    """A Lambertian material with the given albedo."""
    return Material(albedo=vec3(r, g, b), shade_cost=shade_cost)


def mirror(reflectivity: float = 1.0, shade_cost: int = 18) -> Material:
    """A (possibly partial) mirror; ``reflectivity`` in [0, 1]."""
    if not 0.0 <= reflectivity <= 1.0:
        raise ValueError(f"reflectivity must be in [0, 1], got {reflectivity}")
    return Material(
        albedo=vec3(0.95, 0.95, 0.95),
        reflectivity=reflectivity,
        shade_cost=shade_cost,
    )


def emissive(r: float, g: float, b: float, shade_cost: int = 6) -> Material:
    """A light-emitting material."""
    return Material(emission=vec3(r, g, b), shade_cost=shade_cost)


class MaterialTable:
    """Index-addressed material storage for a scene.

    Triangles carry a ``material_id`` into this table; a default grey
    diffuse material occupies slot 0 so fresh meshes are always renderable.
    """

    def __init__(self) -> None:
        self._materials: list[Material] = [diffuse(0.7, 0.7, 0.7)]

    def add(self, material: Material) -> int:
        """Register a material, returning its id."""
        self._materials.append(material)
        return len(self._materials) - 1

    def __getitem__(self, material_id: int) -> Material:
        return self._materials[material_id]

    def __len__(self) -> int:
        return len(self._materials)
