"""Deterministic fault injection for :class:`~repro.core.executor.GroupExecutor`.

Tests of crash isolation, timeouts, retries, and degraded combining must
not depend on real flakiness, so faults are *declared* per group index
and attempt, and fire deterministically:

* ``crash`` — the worker process dies via ``os._exit`` without
  reporting (simulates a segfault / OOM kill);
* ``hang`` — the worker sleeps past any reasonable timeout (simulates a
  deadlocked simulation);
* ``exception`` — the task raises a :class:`~repro.errors.SimulationError`;
* ``corrupt-checkpoint`` — the group's checkpoint file is truncated
  after being written (simulates an interrupted non-atomic writer).

``attempts`` bounds how many leading attempts fault: ``attempts=1``
fails the first try and lets the retry succeed; ``ALWAYS`` (-1) fails
every attempt, forcing a permanent failure.  Under in-process execution
(``workers <= 1``) ``crash`` and ``hang`` degrade to exceptions — killing
or hanging the host process would take the test runner down with it.

Usage::

    plan = FaultPlan([crash(1), exception(2, attempts=ALWAYS)])
    result = Zatel(gpu).predict(scene, frame, policy=policy, fault_plan=plan)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..errors import SimulationError

__all__ = [
    "ALWAYS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "corrupt_checkpoint",
    "crash",
    "exception",
    "hang",
]

#: Sentinel for ``FaultSpec.attempts``: fault every attempt.
ALWAYS = -1

FAULT_KINDS = ("crash", "hang", "exception", "corrupt-checkpoint")

#: Exit code injected crashes die with (recognizable in worker reports).
CRASH_EXIT_CODE = 41


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: ``kind`` fired for ``group`` on its first
    ``attempts`` attempts (:data:`ALWAYS` = every attempt)."""

    kind: str
    group: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.group < 0:
            raise ValueError("group index must be >= 0")
        if self.attempts == 0 or self.attempts < ALWAYS:
            raise ValueError("attempts must be >= 1, or ALWAYS (-1)")

    def fires_on(self, attempt: int) -> bool:
        return self.attempts == ALWAYS or attempt < self.attempts


def crash(group: int, attempts: int = 1) -> FaultSpec:
    """Worker dies without reporting (``os._exit``)."""
    return FaultSpec("crash", group, attempts)


def hang(group: int, attempts: int = 1) -> FaultSpec:
    """Worker sleeps past the timeout."""
    return FaultSpec("hang", group, attempts)


def exception(group: int, attempts: int = 1) -> FaultSpec:
    """Task raises a :class:`SimulationError`."""
    return FaultSpec("exception", group, attempts)


def corrupt_checkpoint(group: int) -> FaultSpec:
    """Group's checkpoint file is truncated after it is written."""
    return FaultSpec("corrupt-checkpoint", group, ALWAYS)


class FaultPlan:
    """The executor-facing fault oracle (duck-typed; the executor never
    imports this module)."""

    def __init__(
        self, specs: list[FaultSpec] | tuple[FaultSpec, ...], hang_seconds: float = 3600.0
    ) -> None:
        self.specs = tuple(specs)
        self.hang_seconds = hang_seconds

    def _spec_for(self, index: int, attempt: int) -> FaultSpec | None:
        for spec in self.specs:
            if (
                spec.group == index
                and spec.kind != "corrupt-checkpoint"
                and spec.fires_on(attempt)
            ):
                return spec
        return None

    def apply(self, index: int, attempt: int, in_process: bool) -> None:
        """Fire the declared fault for ``(index, attempt)``, if any.

        Called by the executor immediately before each task attempt —
        inside the forked worker under process isolation, inline
        otherwise.
        """
        spec = self._spec_for(index, attempt)
        if spec is None:
            return
        if spec.kind == "exception" or in_process:
            raise SimulationError(
                f"injected {spec.kind} fault for group {index} "
                f"(attempt {attempt})"
            )
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            time.sleep(self.hang_seconds)

    def corrupts_checkpoint(self, index: int) -> bool:
        """Whether ``index``'s checkpoint should be truncated post-write."""
        return any(
            spec.group == index and spec.kind == "corrupt-checkpoint"
            for spec in self.specs
        )
