"""Deterministic test harnesses: executor fault injection and fleet chaos."""

from .chaos import (
    ChaosPlan,
    ChaosSpec,
    WorkerKilled,
    corrupt_result,
    hang_worker,
    kill_worker,
    slow_worker,
)
from .faults import FaultPlan, FaultSpec, crash, exception, hang, corrupt_checkpoint

__all__ = [
    "ChaosPlan",
    "ChaosSpec",
    "FaultPlan",
    "FaultSpec",
    "WorkerKilled",
    "corrupt_checkpoint",
    "corrupt_result",
    "crash",
    "exception",
    "hang",
    "hang_worker",
    "kill_worker",
    "slow_worker",
]
