"""Deterministic test harnesses (fault injection for the executor)."""

from .faults import FaultPlan, FaultSpec, crash, exception, hang, corrupt_checkpoint

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "corrupt_checkpoint",
    "crash",
    "exception",
    "hang",
]
