"""Deterministic fleet-level chaos injection (extends :mod:`.faults`).

:mod:`repro.testing.faults` declares faults per *group attempt* inside
one process's :class:`~repro.core.executor.GroupExecutor`.  The
distributed fleet (:mod:`repro.fleet`) adds a second failure domain —
whole workers dying, hanging, slowing down, or corrupting results — and
every failover path (heartbeat watchdog, lease expiry, re-dispatch,
circuit breaker, degraded combine) must be exercisable on a *seeded
schedule* rather than discovered in production.

A :class:`ChaosPlan` is a list of :class:`ChaosSpec` declarations fired
worker-side, immediately before a leased group executes:

* ``kill`` — the worker process dies via ``os._exit`` without reporting
  (simulates OOM-kill / segfault; in-process test workers drop their
  coordinator connection instead, which the watchdog observes the same
  way);
* ``hang`` — the worker stops heartbeating and sleeps past any lease
  deadline (simulates a deadlocked simulation; the coordinator's
  watchdog must declare it dead and re-queue the lease);
* ``slow`` — the worker sleeps ``slow_seconds`` before computing
  (simulates an overloaded host; results are still correct, so this
  exercises deadline headroom, not failover);
* ``corrupt`` — the worker stores a tampered result artifact and
  reports success (simulates silent data corruption; the coordinator's
  result validation must reject it and re-dispatch).

Like :class:`~.faults.FaultSpec`, a spec fires for its ``group`` on the
first ``attempts`` dispatches (:data:`~.faults.ALWAYS` = every
dispatch), and can be pinned to one ``worker`` id.  Plans round-trip
through JSON (:meth:`ChaosPlan.to_json` / :meth:`ChaosPlan.from_json`)
so ``zatel worker --chaos`` and ``zatel serve --fleet --chaos`` can
carry a schedule across the process boundary.

Usage::

    plan = ChaosPlan([kill_worker(2), corrupt_result(0, attempts=ALWAYS)])
    worker = FleetWorker(..., chaos=plan)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from .faults import ALWAYS

__all__ = [
    "CHAOS_KINDS",
    "ChaosPlan",
    "ChaosSpec",
    "WorkerKilled",
    "corrupt_result",
    "hang_worker",
    "kill_worker",
    "slow_worker",
]

CHAOS_KINDS = ("kill", "hang", "slow", "corrupt")

#: Exit code chaos kills die with (recognizable in supervisor logs).
CHAOS_KILL_EXIT_CODE = 43

#: Marker payload a ``corrupt`` fault stores in place of the real
#: result artifact — shaped like *plausible* data (a dict), so only
#: typed validation on the coordinator catches it.
CORRUPT_PAYLOAD = {"chaos": "corrupted result artifact"}


class WorkerKilled(BaseException):
    """Raised by in-process chaos kills so a test worker thread can die
    abruptly (drop its connection mid-lease) without ``os._exit`` taking
    the test runner down.  Derives from ``BaseException`` so ordinary
    task-isolation ``except Exception`` boundaries cannot swallow it."""


@dataclass(frozen=True)
class ChaosSpec:
    """One declared fleet fault.

    ``kind`` fires when a worker executes ``group`` on its first
    ``attempts`` dispatches (:data:`ALWAYS` = every dispatch);
    ``worker`` restricts the spec to one worker id (``None`` = any).
    """

    kind: str
    group: int
    attempts: int = 1
    worker: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; known: {CHAOS_KINDS}"
            )
        if self.group < 0:
            raise ValueError("group index must be >= 0")
        if self.attempts == 0 or self.attempts < ALWAYS:
            raise ValueError("attempts must be >= 1, or ALWAYS (-1)")

    def fires_on(self, worker: str, attempt: int) -> bool:
        if self.worker is not None and self.worker != worker:
            return False
        return self.attempts == ALWAYS or attempt < self.attempts


def kill_worker(group: int, attempts: int = 1, worker: str | None = None) -> ChaosSpec:
    """Worker dies without reporting while holding ``group``'s lease."""
    return ChaosSpec("kill", group, attempts, worker)


def hang_worker(group: int, attempts: int = 1, worker: str | None = None) -> ChaosSpec:
    """Worker stops heartbeating and sleeps past the lease deadline."""
    return ChaosSpec("hang", group, attempts, worker)


def slow_worker(group: int, attempts: int = 1, worker: str | None = None) -> ChaosSpec:
    """Worker delays ``slow_seconds`` before computing (still correct)."""
    return ChaosSpec("slow", group, attempts, worker)


def corrupt_result(
    group: int, attempts: int = 1, worker: str | None = None
) -> ChaosSpec:
    """Worker stores a tampered result artifact and reports success."""
    return ChaosSpec("corrupt", group, attempts, worker)


class ChaosPlan:
    """The worker-facing chaos oracle (duck-typed; the fleet never
    imports this module — any object with ``action(worker, group,
    attempt)`` plus the timing attributes works)."""

    def __init__(
        self,
        specs: list[ChaosSpec] | tuple[ChaosSpec, ...] = (),
        hang_seconds: float = 3600.0,
        slow_seconds: float = 0.25,
    ) -> None:
        self.specs = tuple(specs)
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds

    def action(self, worker: str, group: int, attempt: int) -> str | None:
        """The chaos kind to fire for this dispatch, or ``None``.

        First matching spec wins, so a plan can layer e.g. ``kill`` on
        dispatch 0 and ``slow`` on later dispatches of the same group.
        """
        for spec in self.specs:
            if spec.group == group and spec.fires_on(worker, attempt):
                return spec.kind
        return None

    def apply_timing(self, kind: str | None) -> None:
        """Sleep for ``slow``/``hang`` kinds (shared by both worker modes)."""
        if kind == "slow":
            time.sleep(self.slow_seconds)
        elif kind == "hang":
            time.sleep(self.hang_seconds)

    def die(self, in_process: bool) -> None:
        """Execute a ``kill``: hard process exit, or — for in-process
        test workers — a :class:`WorkerKilled` the worker loop turns
        into an abrupt connection drop."""
        if in_process:
            raise WorkerKilled("injected chaos kill")
        os._exit(CHAOS_KILL_EXIT_CODE)

    # -- JSON round-trip (for `zatel worker --chaos`) -------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "hang_seconds": self.hang_seconds,
                "slow_seconds": self.slow_seconds,
                "specs": [
                    {
                        "kind": s.kind,
                        "group": s.group,
                        "attempts": s.attempts,
                        "worker": s.worker,
                    }
                    for s in self.specs
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"malformed chaos plan JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("chaos plan must be a JSON object")
        specs = [
            ChaosSpec(
                kind=row["kind"],
                group=row["group"],
                attempts=row.get("attempts", 1),
                worker=row.get("worker"),
            )
            for row in payload.get("specs", ())
        ]
        return cls(
            specs,
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
            slow_seconds=float(payload.get("slow_seconds", 0.25)),
        )

    def __bool__(self) -> bool:
        return bool(self.specs)
