"""ASCII charts for terminal reports.

The benchmark suite prints tables; these helpers add quick visual shape
checks — an error-decay curve or a speedup curve reads much faster as a
plot.  Pure text, fixed-width, no dependencies.
"""

from __future__ import annotations

import math

__all__ = ["line_chart", "bar_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A one-line sparkline of ``values`` (empty input gives '')."""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if not math.isfinite(v):
            chars.append("?")
            continue
        f = 0.0 if span == 0 else (v - lo) / span
        chars.append(_SPARK_LEVELS[min(len(_SPARK_LEVELS) - 1, int(f * len(_SPARK_LEVELS)))])
    return "".join(chars)


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one row per (label, value).

    Raises:
        ValueError: if labels and values differ in length.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines)
    peak = max((v for v in values if math.isfinite(v)), default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        if not math.isfinite(value):
            bar, shown = "?", "inf"
        else:
            length = 0 if peak <= 0 else int(round(width * value / peak))
            bar = "#" * max(length, 1 if value > 0 else 0)
            shown = f"{value:.4g}{unit}"
        lines.append(f"{label.rjust(label_width)} | {bar} {shown}")
    return "\n".join(lines)


def line_chart(
    xs: list[float],
    series: dict[str, list[float]],
    height: int = 12,
    width: int = 60,
    title: str | None = None,
    log_y: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series is plotted with its own marker (first letter of its name).
    ``log_y`` plots log10(y), useful for the exponential error decays the
    paper's figures show.

    Raises:
        ValueError: on empty input or misaligned series.
    """
    if not xs or not series:
        raise ValueError("line_chart needs xs and at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")

    def transform(v: float) -> float:
        if log_y:
            return math.log10(max(v, 1e-12))
        return v

    points = {
        name: [transform(v) for v in ys] for name, ys in series.items()
    }
    all_y = [v for ys in points.values() for v in ys if math.isfinite(v)]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, ys in points.items():
        marker = name[0]
        for x, y in zip(xs, ys):
            if not math.isfinite(y):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y_hi - y) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = marker

    lines = [title] if title else []
    top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    bottom = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    gutter = max(len(top), len(bottom))
    for i, row in enumerate(grid):
        label = top if i == 0 else bottom if i == height - 1 else ""
        lines.append(f"{label.rjust(gutter)} |{''.join(row)}")
    axis = f"{'':>{gutter}} +{'-' * width}"
    lines.append(axis)
    lines.append(f"{'':>{gutter}}  {x_lo:<10.4g}{'':^{max(0, width - 22)}}{x_hi:>10.4g}")
    legend = "   ".join(f"{name[0]}={name}" for name in series)
    lines.append(f"{'':>{gutter}}  {legend}")
    return "\n".join(lines)
