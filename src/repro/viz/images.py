"""Minimal dependency-free image I/O (binary PPM).

PPM is the one raster format writable and readable without third-party
encoders, which keeps the repository runnable offline.  Used by the
heatmap tooling, the CLI and the examples.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "read_ppm"]


def write_ppm(path: str | Path, image: np.ndarray) -> Path:
    """Write an ``(H, W, 3)`` float image in [0, 1] as binary PPM (P6).

    Values outside [0, 1] are clipped.  Returns the written path.

    Raises:
        ValueError: for a wrongly shaped array.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected an (H, W, 3) image, got shape {image.shape}")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width, _ = data.shape
    path = Path(path)
    with path.open("wb") as f:
        f.write(f"P6 {width} {height} 255\n".encode())
        f.write(data.tobytes())
    return path


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM (P6) back into an ``(H, W, 3)`` float image.

    Only the subset :func:`write_ppm` emits is supported (single
    whitespace-separated header, maxval 255).

    Raises:
        ValueError: for non-P6 files or truncated payloads.
    """
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P6"):
        raise ValueError("not a binary PPM (P6) file")
    # Header: magic, width, height, maxval — whitespace separated.
    fields: list[bytes] = []
    index = 2
    while len(fields) < 3:
        while index < len(raw) and raw[index : index + 1].isspace():
            index += 1
        if index < len(raw) and raw[index : index + 1] == b"#":
            while index < len(raw) and raw[index : index + 1] != b"\n":
                index += 1
            continue
        start = index
        while index < len(raw) and not raw[index : index + 1].isspace():
            index += 1
        fields.append(raw[start:index])
    width, height, maxval = (int(f) for f in fields)
    if maxval != 255:
        raise ValueError(f"unsupported maxval {maxval}")
    payload = raw[index + 1 : index + 1 + width * height * 3]
    if len(payload) != width * height * 3:
        raise ValueError("truncated PPM payload")
    data = np.frombuffer(payload, dtype=np.uint8).reshape(height, width, 3)
    return data.astype(np.float64) / 255.0
