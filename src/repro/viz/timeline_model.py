"""The timeline *model*: lanes, cell densities, activity series.

One data model feeds every timeline consumer — the terminal renderer
(:mod:`repro.viz.timeline`) and the dashboard's ``/api/timeline`` JSON
API (:mod:`repro.service.dashboard`) both build their lanes here, so the
two surfaces can never disagree about what a ``.zperf`` trace contains.
The renderer turns cell fractions into shade characters; the API ships
the same lanes as JSON; neither re-derives occupancy on its own.

Inputs are deliberately loose: ``events`` may be
:class:`~repro.gpu.telemetry.TimelineEvent` instances *or* plain dicts
with ``component``/``kind``/``start``/``end`` keys (the rows
:func:`~repro.gpu.telemetry.load_zperf` returns), so the model works on
live telemetry records and parsed ``.zperf`` files alike.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

__all__ = [
    "ACTIVITY_ROWS",
    "Lane",
    "build_lanes",
    "lane_cells",
    "activity_series",
    "lanes_payload",
    "prediction_events",
    "prediction_deltas",
]

#: Counters summarized per interval by the activity view, as
#: (display label, name prefix, name suffix); a counter named
#: ``component.statistic`` contributes when it matches both.
ACTIVITY_ROWS = (
    ("instructions", "core.instructions", ""),
    ("issue slots", "core.issued_warp_instructions", ""),
    ("L1D misses", "sm", ".l1d.misses"),
    ("L2 misses", "l2.", ".misses"),
    ("DRAM requests", "dram.", ".requests"),
    ("RT steps", "sm", ".traversal_steps"),
)


@dataclass(frozen=True)
class Lane:
    """One (component, kind) occupancy lane of a timeline."""

    component: str
    kind: str
    #: Coalesced [start, end) windows, in time order.
    windows: tuple[tuple[float, float], ...]
    #: Total occupied cycles (the sum of window durations).
    busy: float

    @property
    def label(self) -> str:
        return f"{self.component} {self.kind}"


def _event_fields(event) -> tuple[str, str, float, float]:
    if isinstance(event, dict):
        return event["component"], event["kind"], event["start"], event["end"]
    return event.component, event.kind, event.start, event.end


def build_lanes(events) -> list[Lane]:
    """Group timeline events into lanes, busiest first.

    The sort is stable: lanes with equal occupancy keep the order their
    first event appeared in — the exact ordering the terminal renderer
    has always produced, now pinned for every consumer.
    """
    windows: dict[tuple[str, str], list[tuple[float, float]]] = defaultdict(list)
    for event in events:
        component, kind, start, end = _event_fields(event)
        windows[(component, kind)].append((start, end))
    lanes = [
        Lane(
            component=component,
            kind=kind,
            windows=tuple(lane_windows),
            busy=sum(end - start for start, end in lane_windows),
        )
        for (component, kind), lane_windows in windows.items()
    ]
    return sorted(lanes, key=lambda lane: -lane.busy)


def lane_cells(
    windows, total: float, width: int
) -> list[float]:
    """One lane's occupancy as ``width`` per-cell covered fractions.

    Each cell spans ``total / width`` cycles; its value is the fraction
    of the cell covered by the lane's (already coalesced) windows,
    clamped to [0, 1].  A non-positive ``total`` yields all-zero cells.
    """
    if total <= 0:
        return [0.0] * width
    cell = total / width
    cells = []
    for i in range(width):
        lo, hi = i * cell, (i + 1) * cell
        covered = sum(
            min(hi, end) - max(lo, start)
            for start, end in windows
            if end > lo and start < hi
        )
        cells.append(min(1.0, covered / cell))
    return cells


def activity_series(deltas) -> list[tuple[str, list[float]]]:
    """Per-interval totals of the headline counters, one row per
    :data:`ACTIVITY_ROWS` entry.

    ``deltas`` is :meth:`~repro.gpu.telemetry.TelemetryRecord.deltas`
    output (or the ``d`` rows of a parsed ``.zperf``).  Every row is
    returned — including all-zero ones — so renderers keep their own
    skip/label-width conventions; filter on ``any(series)`` to drop the
    quiet rows.
    """
    rows: list[tuple[str, list[float]]] = []
    for label, prefix, suffix in ACTIVITY_ROWS:
        series = [
            sum(
                value
                for name, value in row.items()
                if name.startswith(prefix) and name.endswith(suffix)
            )
            for row in deltas
        ]
        rows.append((label, series))
    return rows


def lanes_payload(events, total_cycles: float) -> dict:
    """The lanes of ``events`` as a JSON-able dict (the API's shape).

    The lane list, ordering and occupancy come from :func:`build_lanes`
    — the same call the terminal renderer makes — so a dashboard client
    and a terminal session looking at the same trace see the same lanes
    in the same order with the same busy fractions.
    """
    lanes = build_lanes(events)
    return {
        "total_cycles": total_cycles,
        "lane_count": len(lanes),
        "lanes": [
            {
                "component": lane.component,
                "kind": lane.kind,
                "busy": lane.busy,
                "busy_fraction": (
                    lane.busy / total_cycles if total_cycles > 0 else 0.0
                ),
                "windows": [[start, end] for start, end in lane.windows],
            }
            for lane in lanes
        ],
    }


def prediction_events(result) -> tuple[list[dict], float]:
    """Flatten a prediction's per-group telemetry into one event list.

    Each surviving group of a :class:`~repro.core.pipeline.ZatelResult`
    simulated independently from cycle 0, so their timelines are
    parallel universes, not one shared clock.  Lanes are therefore
    prefixed with the group index (``g3.sm0 issue_stall``) — the
    per-shard view "Parallelizing a modern GPU simulator" argues for —
    and the returned cycle count is the slowest group's, so every lane
    fits one axis.

    Returns ``(events, total_cycles)``; groups whose producing config
    left telemetry off contribute nothing.
    """
    events: list[dict] = []
    total_cycles = 0.0
    for group in result.groups:
        record = getattr(group.stats, "telemetry", None)
        if record is None:
            continue
        total_cycles = max(total_cycles, float(group.stats.cycles))
        for event in record.events:
            events.append(
                {
                    "component": f"g{group.index}.{event.component}",
                    "kind": event.kind,
                    "start": event.start,
                    "end": event.end,
                }
            )
    events.sort(
        key=lambda e: (e["start"], e["end"], e["component"], e["kind"])
    )
    return events, total_cycles


def prediction_deltas(result) -> list[dict[str, float]]:
    """Per-interval counter increments summed over a prediction's groups.

    Groups snapshot on the same cycle interval but run for different
    lengths; row ``i`` sums every group's ``i``-th interval delta, so
    the tail rows cover only the groups still running then.  Counter
    names keep their in-group form (``core.instructions``), matching
    what :data:`ACTIVITY_ROWS` expects.
    """
    rows: list[dict[str, float]] = []
    for group in result.groups:
        record = getattr(group.stats, "telemetry", None)
        if record is None:
            continue
        for index, delta in enumerate(record.deltas()):
            if index >= len(rows):
                rows.append({})
            row = rows[index]
            for name, value in delta.items():
                row[name] = row.get(name, 0) + value
    return rows
