"""Dependency-free visualization helpers: PPM image I/O and ASCII charts."""

from .charts import bar_chart, line_chart, sparkline
from .images import read_ppm, write_ppm
from .timeline import render_interval_activity, render_timeline

__all__ = [
    "bar_chart",
    "line_chart",
    "read_ppm",
    "render_interval_activity",
    "render_timeline",
    "sparkline",
    "write_ppm",
]
