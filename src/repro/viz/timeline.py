"""Terminal renderer for telemetry timelines and interval activity.

Turns a :class:`~repro.gpu.telemetry.TelemetryRecord` (or a parsed
``.zperf`` file) into fixed-width text: one occupancy lane per
(component, window-kind) pair, plus per-interval activity sparklines for
a few headline counters.  Pure text, no dependencies, same spirit as
:mod:`repro.viz.charts`.

Lane grouping, ordering, occupancy and the per-cell density math all
live in :mod:`repro.viz.timeline_model`, shared with the dashboard's
JSON API; this module only turns model output into characters.
"""

from __future__ import annotations

from .charts import sparkline
from .timeline_model import activity_series, build_lanes, lane_cells

__all__ = ["render_timeline", "render_interval_activity"]

_LANE_LEVELS = " ░▒▓█"


def _lane_density(
    windows: list[tuple[float, float]], total: float, width: int
) -> str:
    """One lane's occupancy, rendered as ``width`` shaded cells.

    Each cell covers ``total / width`` cycles; its shade is the fraction
    of the cell covered by the lane's (already coalesced) windows.
    """
    if total <= 0:
        return " " * width
    return "".join(
        _LANE_LEVELS[min(len(_LANE_LEVELS) - 1, int(frac * len(_LANE_LEVELS)))]
        for frac in lane_cells(windows, total, width)
    )


def render_timeline(
    events,
    total_cycles: float,
    width: int = 72,
    max_lanes: int = 24,
) -> str:
    """Render timeline events as one occupancy lane per component+kind.

    ``events`` is an iterable of objects/dicts with ``component``,
    ``kind``, ``start`` and ``end``.  Lanes are sorted by total occupied
    cycles (busiest first) and truncated to ``max_lanes`` with an
    explicit "... N more lanes" marker — silent truncation would read as
    an idle GPU.
    """
    lanes = build_lanes(events)
    if not lanes:
        return "(no timeline events recorded)"
    shown = lanes[:max_lanes]
    label_width = max(len(lane.label) for lane in shown)
    lines = [
        f"timeline over {total_cycles:.0f} cycles "
        f"({len(lanes)} lanes; shade = occupancy per "
        f"{total_cycles / width:.0f}-cycle cell)"
    ]
    for lane in shown:
        lines.append(
            f"{lane.label.rjust(label_width)} "
            f"|{_lane_density(lane.windows, total_cycles, width)}| "
            f"{lane.busy / total_cycles:6.1%}"
        )
    hidden = len(lanes) - max_lanes
    if hidden > 0:
        lines.append(f"... {hidden} more lanes (quieter) not shown")
    return "\n".join(lines)


def render_interval_activity(deltas: list[dict[str, float]]) -> str:
    """Sparkline the per-interval deltas of a few headline counters.

    ``deltas`` is :meth:`TelemetryRecord.deltas` output (or the ``d``
    rows of a parsed ``.zperf``): one dict of counter increments per
    snapshot interval.
    """
    if not deltas:
        return "(no interval snapshots recorded)"
    rows = activity_series(deltas)
    lines = [f"per-interval activity ({len(deltas)} intervals)"]
    label_width = max(len(label) for label, _ in rows)
    for label, series in rows:
        if not any(series):
            continue
        lines.append(
            f"{label.rjust(label_width)} {sparkline(series)} "
            f"(total {sum(series):.0f})"
        )
    return "\n".join(lines)
