"""Terminal renderer for telemetry timelines and interval activity.

Turns a :class:`~repro.gpu.telemetry.TelemetryRecord` (or a parsed
``.zperf`` file) into fixed-width text: one occupancy lane per
(component, window-kind) pair, plus per-interval activity sparklines for
a few headline counters.  Pure text, no dependencies, same spirit as
:mod:`repro.viz.charts`.
"""

from __future__ import annotations

from collections import defaultdict

from .charts import sparkline

__all__ = ["render_timeline", "render_interval_activity"]

_LANE_LEVELS = " ░▒▓█"

#: Counters summarized per interval by :func:`render_interval_activity`,
#: as (display label, name prefix, name suffix); a counter named
#: ``component.statistic`` contributes when it matches both.
_ACTIVITY_ROWS = (
    ("instructions", "core.instructions", ""),
    ("issue slots", "core.issued_warp_instructions", ""),
    ("L1D misses", "sm", ".l1d.misses"),
    ("L2 misses", "l2.", ".misses"),
    ("DRAM requests", "dram.", ".requests"),
    ("RT steps", "sm", ".traversal_steps"),
)


def _lane_density(
    windows: list[tuple[float, float]], total: float, width: int
) -> str:
    """One lane's occupancy, rendered as ``width`` shaded cells.

    Each cell covers ``total / width`` cycles; its shade is the fraction
    of the cell covered by the lane's (already coalesced) windows.
    """
    if total <= 0:
        return " " * width
    cell = total / width
    chars = []
    for i in range(width):
        lo, hi = i * cell, (i + 1) * cell
        covered = sum(
            min(hi, end) - max(lo, start)
            for start, end in windows
            if end > lo and start < hi
        )
        frac = min(1.0, covered / cell)
        chars.append(_LANE_LEVELS[min(len(_LANE_LEVELS) - 1, int(frac * len(_LANE_LEVELS)))])
    return "".join(chars)


def render_timeline(
    events,
    total_cycles: float,
    width: int = 72,
    max_lanes: int = 24,
) -> str:
    """Render timeline events as one occupancy lane per component+kind.

    ``events`` is an iterable of objects/dicts with ``component``,
    ``kind``, ``start`` and ``end``.  Lanes are sorted by total occupied
    cycles (busiest first) and truncated to ``max_lanes`` with an
    explicit "... N more lanes" marker — silent truncation would read as
    an idle GPU.
    """
    lanes: dict[tuple[str, str], list[tuple[float, float]]] = defaultdict(list)
    for event in events:
        if isinstance(event, dict):
            key = (event["component"], event["kind"])
            lanes[key].append((event["start"], event["end"]))
        else:
            lanes[(event.component, event.kind)].append(
                (event.start, event.end)
            )
    if not lanes:
        return "(no timeline events recorded)"
    occupancy = {
        key: sum(end - start for start, end in windows)
        for key, windows in lanes.items()
    }
    ordered = sorted(lanes, key=lambda key: -occupancy[key])
    label_width = max(len(f"{c} {k}") for c, k in ordered[:max_lanes])
    lines = [
        f"timeline over {total_cycles:.0f} cycles "
        f"({len(lanes)} lanes; shade = occupancy per "
        f"{total_cycles / width:.0f}-cycle cell)"
    ]
    for component, kind in ordered[:max_lanes]:
        windows = lanes[(component, kind)]
        label = f"{component} {kind}".rjust(label_width)
        busy = occupancy[(component, kind)]
        lines.append(
            f"{label} |{_lane_density(windows, total_cycles, width)}| "
            f"{busy / total_cycles:6.1%}"
        )
    hidden = len(ordered) - max_lanes
    if hidden > 0:
        lines.append(f"... {hidden} more lanes (quieter) not shown")
    return "\n".join(lines)


def render_interval_activity(deltas: list[dict[str, float]]) -> str:
    """Sparkline the per-interval deltas of a few headline counters.

    ``deltas`` is :meth:`TelemetryRecord.deltas` output (or the ``d``
    rows of a parsed ``.zperf``): one dict of counter increments per
    snapshot interval.
    """
    if not deltas:
        return "(no interval snapshots recorded)"
    lines = [f"per-interval activity ({len(deltas)} intervals)"]
    label_width = max(len(label) for label, _, _ in _ACTIVITY_ROWS)
    for label, prefix, suffix in _ACTIVITY_ROWS:
        series = [
            sum(
                value
                for name, value in row.items()
                if name.startswith(prefix) and name.endswith(suffix)
            )
            for row in deltas
        ]
        if not any(series):
            continue
        lines.append(
            f"{label.rjust(label_width)} {sparkline(series)} "
            f"(total {sum(series):.0f})"
        )
    return "\n".join(lines)
