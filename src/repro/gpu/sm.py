"""Streaming multiprocessor model: issue port, L1D, MSHR, RT unit.

The SM is where the three contention effects Zatel's accuracy story depends
on come together:

* the **issue port** bounds compute throughput (1 warp-instruction/cycle,
  Table II's greedy-then-oldest scheduler is approximated by the
  simulator's oldest-ready-first event order);
* the **L1D + MSHR** bound outstanding memory traffic per SM;
* the **RT unit slots** bound concurrent traversals (4 warps, Table II).

When many warps are resident the SM is throughput-bound (cycles scale with
work — the regime where Zatel's linear extrapolation works); with few warps
it is latency-bound (cycles barely shrink when pixels are dropped — the
SPRNG failure mode the paper highlights).
"""

from __future__ import annotations

from .cache import Cache, MSHRTable, line_of
from .config import GPUConfig
from .memory import MemorySubsystem
from .rt_unit import RTUnit
from .telemetry import Counter, NULL_BUS, StatGroup, TelemetryBus
from .warp import ComputeOp, StoreOp, TraceOp

__all__ = ["SM", "SMStats"]

#: Base address of shader code in the synthetic address space; each warp-op
#: slot occupies one 16-byte instruction group for icache purposes.
_SHADER_CODE_BASE = 0xC100_0000


class SMStats(StatGroup):
    """Per-SM work counters (beyond the caches' own groups)."""

    mem_accesses = Counter("memory-system lookups issued (work proxy)")


class SM:
    """One streaming multiprocessor."""

    def __init__(
        self,
        index: int,
        config: GPUConfig,
        memory: MemorySubsystem,
        bus: TelemetryBus = NULL_BUS,
    ) -> None:
        self.index = index
        self.config = config
        self.memory = memory
        self._bus = bus
        self.component = f"sm{index}"
        self.l1d = Cache(config.l1d, name=f"l1d[{index}]")
        self.icache = Cache(config.icache, name=f"icache[{index}]")
        bus.register(f"{self.component}.l1d", self.l1d.stats)
        bus.register(f"{self.component}.icache", self.icache.stats)
        self.mshr = MSHRTable(config.rt_mshr_size)
        self.rt_units = [
            RTUnit(
                self,
                config.rt_max_warps,
                config.rt_step_cycles,
                bus=bus,
                component=f"{self.component}.rt{u}",
            )
            for u in range(config.rt_units_per_sm)
        ]
        self._next_issue_free = 0.0
        self._next_rt_unit = 0
        self.stats = bus.register(self.component, SMStats())
        # Warm-slot memo for fetch_instructions: op slots whose icache
        # line is resident and can never be evicted again (see below).
        self._warm_op_slots: set[int] = set()
        # A slot index below this bound touches one of the icache's first
        # ``num_lines`` code lines; consecutive lines map to consecutive
        # sets, so at most ``ways`` of them share a set and eviction is
        # impossible — the memo is then exactly equivalent to replaying
        # the guaranteed hit (counted, zero latency).
        self._warm_slot_limit = config.icache.num_lines * (
            config.icache.line_bytes // 16
        )

    @property
    def mem_accesses(self) -> int:
        """Count of memory-system lookups issued by this SM (work proxy)."""
        return self.stats.mem_accesses

    # ------------------------------------------------------------------
    # instruction fetch
    # ------------------------------------------------------------------

    def fetch_instructions(self, op_slot: int) -> float:
        """Fetch the instruction group for a warp-op slot.

        Returns the extra latency a cold icache line costs (shader code is
        tiny, so after the first warp touches a slot this is zero).  Warm
        slots are memoized: the access is still counted, but the LRU
        bookkeeping is skipped — byte-identical because the line provably
        cannot have been evicted (see ``_warm_slot_limit``).
        """
        if op_slot in self._warm_op_slots:
            self.icache.stats.accesses += 1
            return 0.0
        address = _SHADER_CODE_BASE + op_slot * 16
        line = line_of(address, self.config.icache.line_bytes)
        if op_slot < self._warm_slot_limit:
            self._warm_op_slots.add(op_slot)
        if self.icache.access(line):
            return 0.0
        return float(self.config.icache.latency)

    # ------------------------------------------------------------------
    # issue port
    # ------------------------------------------------------------------

    def reserve_issue(self, cycle: float, issue_cycles: int) -> float:
        """Reserve the issue port for ``issue_cycles``; returns grant cycle."""
        grant = max(cycle, self._next_issue_free)
        if grant > cycle:
            self._bus.window(self.component, "issue_stall", cycle, grant)
        self._next_issue_free = grant + issue_cycles / self.config.issue_width
        return grant

    # ------------------------------------------------------------------
    # memory path (L1 -> MSHR -> shared subsystem)
    # ------------------------------------------------------------------

    def mem_access(self, line_addr: int, cycle: float) -> float:
        """Load a line; returns the data-ready cycle."""
        self.stats.mem_accesses += 1
        if self.l1d.access(line_addr):
            return cycle + self.config.l1d.latency
        # L1 miss detected after the tag-check latency.
        miss_cycle = cycle + self.config.l1d.latency
        pending = self.mshr.lookup(line_addr, miss_cycle)
        if pending is not None:
            return max(pending, miss_cycle)
        completion = self.memory.access(line_addr, miss_cycle)
        alloc_cycle = self.mshr.allocate(line_addr, miss_cycle, completion)
        return completion + (alloc_cycle - miss_cycle)

    def prefetch(self, line_addr: int, cycle: float) -> bool:
        """Issue a non-blocking prefetch for a line.

        The fetch goes through the real memory path (occupying interconnect,
        L2 and DRAM like any miss) and lands in the MSHR, where a later
        demand access merges with it — so a prefetch hides latency without
        teleporting data.  Lines already resident or in flight are skipped.
        Demand L1 hit/miss statistics are untouched (prefetches are not
        demand accesses).

        Returns True if a fetch was actually issued.
        """
        if self.l1d.probe(line_addr):
            return False
        if self.mshr.lookup(line_addr, cycle) is not None:
            return False
        self.stats.mem_accesses += 1
        completion = self.memory.access(line_addr, cycle)
        self.mshr.allocate(line_addr, cycle, completion)
        return True

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------

    def execute_compute(self, op: ComputeOp, ready: float, op_slot: int = 0) -> float:
        """Issue a compute op; returns the warp's next-ready cycle."""
        issue_cycles = op.issue_cycles()
        if issue_cycles == 0:  # fully masked (shouldn't normally happen)
            return ready
        fetch = self.fetch_instructions(op_slot)
        grant = self.reserve_issue(ready + fetch, issue_cycles)
        return grant + issue_cycles + self.config.alu_latency

    def pick_rt_unit(self) -> "RTUnit":
        """Round-robin RT-unit selection for the next traceRayEXT."""
        unit = self.rt_units[self._next_rt_unit]
        self._next_rt_unit = (self._next_rt_unit + 1) % len(self.rt_units)
        return unit

    def make_trace_job(self, unit, op: TraceOp, address_map):
        """Build the traversal job for an op on ``unit`` (slot already held)."""
        return unit.start_job(
            op,
            address_map.node_address,
            address_map.triangle_address,
            self.config.l1d.line_bytes,
        )

    def execute_store(self, op: StoreOp, ready: float) -> float:
        """Issue framebuffer stores (write-through, fire-and-forget)."""
        if op.active_lanes() == 0:
            return ready
        grant = self.reserve_issue(ready, 1)
        line_bytes = self.config.l1d.line_bytes
        lines = {
            line_of(addr, line_bytes)
            for addr in op.per_thread_addresses
            if addr is not None
        }
        for line in lines:
            self.memory.store(line, grant)
            self.stats.mem_accesses += 1
        return grant + 1
