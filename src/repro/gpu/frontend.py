"""Kernel front-end: compile pixel traces into warp op streams.

This is the bridge between the functional tracer and the timing simulator.
Given an ordered pixel list (the partitioner's output), it groups pixels
into warps of 32 consecutive entries — matching Zatel's choice of 32-wide
chunks/section blocks "so it maps nicely to a warp" — and lowers each
thread's trace into the lock-step slot structure::

    slot 0:        COMPUTE  (ray-gen setup [+ filter_shader overhead])
    slot 2k+1:     TRACE    (segment k traversal; lanes without segment k
                             are masked)
    slot 2k+2:     COMPUTE  (segment k's shader continuation)
    last slot:     STORE    (framebuffer write-back at reconvergence)

Filtered-out pixels (Zatel's ``filter_shader``, paper Listing 1) execute
only :data:`~repro.tracer.ptx.FILTER_EXIT_INSTRUCTIONS` in slot 0 and are
masked everywhere else.
"""

from __future__ import annotations

from ..scene.scene import AddressMap
from ..tracer.ptx import FILTER_EXIT_INSTRUCTIONS
from ..tracer.trace import FrameTrace
from .warp import ComputeOp, StoreOp, TraceOp, WarpTask

__all__ = ["compile_kernel"]


def compile_kernel(
    frame: FrameTrace,
    pixels: list[tuple[int, int]],
    address_map: AddressMap,
    selected: set[tuple[int, int]] | None = None,
    warp_size: int = 32,
) -> list[WarpTask]:
    """Compile a pixel list into warp tasks.

    Args:
        frame: functional traces covering at least every *selected* pixel.
        pixels: the launch's pixels, in thread order; consecutive runs of
            ``warp_size`` become one warp.
        address_map: scene address layout for framebuffer stores.
        selected: if given, pixels outside this set are *filtered*: their
            threads run the two filter/exit instructions and retire (the
            paper's PTX injection).  ``None`` disables filtering (full run).
        warp_size: threads per warp.

    Returns:
        Warp tasks in launch order.

    Raises:
        KeyError: if a selected pixel has no trace in ``frame``.
    """
    filtering = selected is not None
    warps: list[WarpTask] = []
    for warp_id, base in enumerate(range(0, len(pixels), warp_size)):
        chunk = pixels[base : base + warp_size]
        warps.append(
            _compile_warp(
                frame, chunk, address_map, selected, warp_size, warp_id, filtering
            )
        )
    return warps


def _compile_warp(
    frame: FrameTrace,
    chunk: list[tuple[int, int]],
    address_map: AddressMap,
    selected: set[tuple[int, int]] | None,
    warp_size: int,
    warp_id: int,
    filtering: bool,
) -> WarpTask:
    """Lower one warp's pixels into the lock-step op-slot structure."""
    lanes = len(chunk)
    traces = []
    for pixel in chunk:
        if selected is not None and pixel not in selected:
            traces.append(None)  # filtered lane
        else:
            traces.append(frame.pixels[pixel])

    # Slot 0: ray-gen setup.  Filtered lanes execute just the injected
    # filter/exit pair; live lanes additionally pay that overhead when
    # filtering is enabled.
    overhead = FILTER_EXIT_INSTRUCTIONS if filtering else 0
    setup = [0] * warp_size
    for lane in range(lanes):
        trace = traces[lane]
        if trace is None:
            setup[lane] = FILTER_EXIT_INSTRUCTIONS
        else:
            setup[lane] = trace.raygen_instructions + overhead
    ops: list = [ComputeOp(tuple(setup))]

    max_segments = max(
        (len(t.segments) for t in traces if t is not None), default=0
    )
    for seg_index in range(max_segments):
        nodes: list[list[int] | None] = [None] * warp_size
        tris: list[list[int] | None] = [None] * warp_size
        shade = [0] * warp_size
        for lane in range(lanes):
            trace = traces[lane]
            if trace is None or seg_index >= len(trace.segments):
                continue
            segment = trace.segments[seg_index]
            nodes[lane] = segment.nodes
            tris[lane] = segment.tris
            shade[lane] = segment.shade_instructions
        ops.append(TraceOp(tuple(nodes), tuple(tris)))
        ops.append(ComputeOp(tuple(shade)))

    # Reconvergence point: every live lane writes its pixel.
    stores: list[int | None] = [None] * warp_size
    for lane in range(lanes):
        if traces[lane] is not None:
            px, py = chunk[lane]
            stores[lane] = address_map.pixel_address(px, py, frame.width)
    ops.append(StoreOp(tuple(stores)))

    live = sum(1 for t in traces if t is not None)
    return WarpTask(
        warp_id=warp_id,
        pixels=tuple(chunk),
        ops=ops,
        live_pixels=live,
        filtered_pixels=lanes - live,
    )
