"""The shared memory subsystem: interconnect, L2 slices, DRAM channels.

One instance is shared by every SM in a simulation — which is exactly what
Zatel's group-splitting breaks: each group's simulation instance owns a
*private* subsystem, so inter-group L2 sharing is lost and the predicted L2
miss rate inflates (the systematic bias Section III-G describes).
"""

from __future__ import annotations

from .cache import Cache, CacheStats
from .config import GPUConfig
from .dram import DRAMChannel, DRAMStats
from .interconnect import Interconnect
from .telemetry import NULL_BUS, TelemetryBus

__all__ = ["MemorySubsystem"]


class MemorySubsystem:
    """L2 + DRAM shared across SMs, reached through the interconnect."""

    def __init__(self, config: GPUConfig, bus: TelemetryBus = NULL_BUS) -> None:
        self.config = config
        self._bus = bus
        n = config.num_mem_partitions
        self.interconnect = Interconnect(
            n, config.interconnect_latency, config.l2_slice.line_bytes
        )
        self.l2_slices = [Cache(config.l2_slice, name=f"l2[{i}]") for i in range(n)]
        for i, slice_ in enumerate(self.l2_slices):
            bus.register(f"l2.{i}", slice_.stats)
        self._l2_busy = [0.0] * n
        self.dram_channels = [
            DRAMChannel(
                access_latency=config.dram_latency,
                service_cycles=config.dram_service_cycles_per_line,
                bus=bus,
                component=f"dram.{i}",
            )
            for i in range(n)
        ]

    def access(self, line_addr: int, cycle: float) -> float:
        """A read request from an SM (post-L1-miss).  Returns completion cycle.

        Path: interconnect -> L2 slice (bank occupancy + tag check) -> on
        miss, the slice's DRAM channel -> response over the interconnect.
        """
        partition, arrival = self.interconnect.deliver(line_addr, cycle)
        start = max(arrival, self._l2_busy[partition])
        if start > arrival:
            self._bus.window(
                f"l2.{partition}", "bank_contention", arrival, start
            )
        self._l2_busy[partition] = start + self.config.l2_service_cycles
        slice_ = self.l2_slices[partition]
        hit = slice_.access(line_addr)
        # Table II's 160-cycle L2 latency is load-to-use from the SM;
        # queueing (port + bank) adds on top of it.  A miss pays the same
        # slice pipeline to discover the miss, *then* goes to DRAM.
        tag_done = start + (
            self.config.l2_slice.latency - self.config.interconnect_latency
        )
        if hit:
            data_ready = tag_done
        else:
            data_ready = self.dram_channels[partition].request(tag_done)
        return data_ready + self.interconnect.return_latency()

    def store(self, line_addr: int, cycle: float) -> None:
        """A fire-and-forget write (framebuffer): touches the L2 slice only."""
        partition, arrival = self.interconnect.deliver(line_addr, cycle)
        start = max(arrival, self._l2_busy[partition])
        if start > arrival:
            self._bus.window(
                f"l2.{partition}", "bank_contention", arrival, start
            )
        self._l2_busy[partition] = start + self.config.l2_service_cycles
        self.l2_slices[partition].access(line_addr)

    def finalize(self) -> None:
        """Close open DRAM accounting intervals at end of simulation."""
        for channel in self.dram_channels:
            channel.finalize()

    def l2_stats(self) -> CacheStats:
        """Aggregated hit/miss counters over every slice."""
        return CacheStats.merged(slice_.stats for slice_ in self.l2_slices)

    def dram_stats(self) -> DRAMStats:
        """Aggregated DRAM counters over every channel."""
        return DRAMStats.merged(
            channel.stats for channel in self.dram_channels
        )
