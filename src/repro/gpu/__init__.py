"""Cycle-level GPU timing simulator (the Vulkan-Sim stand-in)."""

from .cache import Cache, CacheStats, MSHRTable, line_of
from .config import MOBILE_SOC, RTX_2060, CacheConfig, GPUConfig, preset
from .configfile import load_config, resolve_gpu, save_config
from .dram import DRAMChannel, DRAMStats
from .frontend import compile_kernel
from .interconnect import Interconnect
from .memory import MemorySubsystem
from .rt_unit import RTStats, RTUnit
from .parallel import ShardedCycleSimulator
from .simulator import CoreStats, CycleSimulator, SimEngine, make_simulator
from .sm import SM, SMStats
from .stats import (
    EXTENDED_METRICS,
    METRIC_DESCRIPTIONS,
    METRICS,
    MetricKind,
    SimulationStats,
    merge_simulation_stats,
)
from .telemetry import (
    METRIC_REGISTRY,
    METRIC_SPECS,
    SERVICE_LATENCY_EDGES,
    Counter,
    Histogram,
    IntervalSnapshot,
    MetricSpec,
    RatioGauge,
    ServiceStats,
    StatGroup,
    TelemetryBus,
    TelemetryRecord,
    TimelineEvent,
    aggregate_metrics,
    downsample_events,
    export_zperf,
    load_zperf,
    slice_events,
)
from .warp import ComputeOp, StoreOp, TraceOp, WarpState, WarpTask

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "ComputeOp",
    "CoreStats",
    "Counter",
    "CycleSimulator",
    "DRAMChannel",
    "DRAMStats",
    "GPUConfig",
    "Histogram",
    "Interconnect",
    "IntervalSnapshot",
    "MOBILE_SOC",
    "MSHRTable",
    "EXTENDED_METRICS",
    "METRICS",
    "METRIC_DESCRIPTIONS",
    "METRIC_REGISTRY",
    "METRIC_SPECS",
    "MemorySubsystem",
    "MetricKind",
    "MetricSpec",
    "RTStats",
    "RTUnit",
    "RTX_2060",
    "RatioGauge",
    "SERVICE_LATENCY_EDGES",
    "SM",
    "SMStats",
    "ServiceStats",
    "ShardedCycleSimulator",
    "SimEngine",
    "SimulationStats",
    "StatGroup",
    "StoreOp",
    "TelemetryBus",
    "TelemetryRecord",
    "TimelineEvent",
    "TraceOp",
    "WarpState",
    "WarpTask",
    "aggregate_metrics",
    "compile_kernel",
    "downsample_events",
    "export_zperf",
    "line_of",
    "load_config",
    "make_simulator",
    "load_zperf",
    "merge_simulation_stats",
    "preset",
    "resolve_gpu",
    "save_config",
    "slice_events",
]
