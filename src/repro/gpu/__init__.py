"""Cycle-level GPU timing simulator (the Vulkan-Sim stand-in)."""

from .cache import Cache, CacheStats, MSHRTable, line_of
from .config import MOBILE_SOC, RTX_2060, CacheConfig, GPUConfig, preset
from .configfile import load_config, resolve_gpu, save_config
from .dram import DRAMChannel, DRAMStats
from .frontend import compile_kernel
from .interconnect import Interconnect
from .memory import MemorySubsystem
from .rt_unit import RTStats, RTUnit
from .simulator import CycleSimulator
from .sm import SM
from .stats import EXTENDED_METRICS, METRIC_DESCRIPTIONS, METRICS, MetricKind, SimulationStats
from .warp import ComputeOp, StoreOp, TraceOp, WarpState, WarpTask

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "ComputeOp",
    "CycleSimulator",
    "DRAMChannel",
    "DRAMStats",
    "GPUConfig",
    "Interconnect",
    "MOBILE_SOC",
    "MSHRTable",
    "EXTENDED_METRICS",
    "METRICS",
    "METRIC_DESCRIPTIONS",
    "MemorySubsystem",
    "MetricKind",
    "RTStats",
    "RTUnit",
    "RTX_2060",
    "SM",
    "SimulationStats",
    "StoreOp",
    "TraceOp",
    "WarpState",
    "WarpTask",
    "compile_kernel",
    "line_of",
    "load_config",
    "preset",
    "resolve_gpu",
    "save_config",
]
