"""Sharded parallel cycle-simulator backend with epoch-synchronized shards.

The exact serial engine interleaves every SM's events on one heap, which
is inherently sequential.  This backend trades a *bounded, documented*
timing drift for parallelism:

* the GPU is partitioned into ``S`` **shards**, each owning a contiguous
  block of SMs plus the matching block of L2 slices and DRAM channels
  (``S`` is clamped to a divisor of ``gcd(num_sms, num_mem_partitions)``
  so the partition is always exact — a config with coprime counts, like
  the downscaled predict GPUs, degenerates to ``S = 1`` and is then
  byte-identical to the serial backend);
* each shard runs the same :class:`~repro.gpu.simulator.SimEngine` as the
  serial backend over its own warps (warp *i* keeps its global SM
  ``i % num_sms``, so per-SM warp placement matches the serial run);
* shards synchronize at fixed **epoch boundaries** (``sim_epoch_cycles``):
  every epoch each shard reports the DRAM requests it issued, and a
  deterministic, bounded queueing penalty for the *other* shards' excess
  traffic is injected into its channels via
  :meth:`~repro.gpu.dram.DRAMChannel.add_external_delay` — recovering the
  first-order cross-shard bandwidth contention the private partitions
  lost.

What drifts and what doesn't: per-shard event interleavings, cache
contents and all additive counters that don't depend on timing
(instructions, cache accesses, traversal steps, work units) are exact;
*timing* (cycles, and everything derived from it: IPC, occupancy,
bandwidth utilization) drifts because intra-epoch request interleaving
across shards is approximated by the boundary penalty.  The measured
envelope over all scenes and both schedulers is asserted by
``tests/test_sharded_backend.py`` and recorded in
``benchmarks/baselines/BENCH_sim.baseline.json``.

Workers are ``fork``-started processes exchanging only tiny epoch
messages and one final :class:`~repro.gpu.stats.SimulationStats` per
shard, so the warp streams never re-pickle.  Where ``fork`` is
unavailable the same epoch loop runs in-process over the engines
sequentially — by construction this produces *identical* results, which
is also what makes the backend deterministic and testable on one CPU.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import replace

from ..scene.scene import AddressMap
from .config import GPUConfig
from .simulator import CycleSimulator, SimEngine
from .stats import SimulationStats, merge_simulation_stats
from .warp import WarpTask

__all__ = [
    "DRIFT_TOLERANCE",
    "ShardedCycleSimulator",
    "epoch_penalty",
    "plan_shards",
]

#: Documented relative-drift tolerance for timing-derived metrics versus
#: the exact serial backend, with headroom over the measured envelope:
#: all eight paper scenes x {gto, lrr} at 48x48 (the test matrix) and
#: SPRNG/BUNNY/SPNZA at 128x128 at two and four shards (the benchmark
#: matrix).  Cycle/IPC drift shrinks as planes grow (epoch boundaries
#: get finer relative to the run: ~0.8% cycles at 128x128 on SPRNG vs
#: up to 64% at 48x48), while the DRAM ratios (efficiency, bandwidth
#: utilization) stay noisy at any scale because private channel
#: partitions reshape queueing wholesale.  Additive counters
#: (instructions, work units, traversal steps, L1 accesses) carry no
#: tolerance because sharding keeps them exact.
DRIFT_TOLERANCE = {
    "cycles": 0.80,
    "ipc": 0.50,
    "l1d_miss_rate": 0.05,
    "l2_miss_rate": 2.60,
    "dram_efficiency": 2.00,
    "bw_utilization": 2.75,
    "warp_occupancy": 0.35,
}

#: Counters sharding keeps exact (additive and timing-independent) —
#: asserted equal, never toleranced.
EXACT_COUNTERS = (
    "instructions",
    "issued_warp_instructions",
    "warps",
    "rt_traversal_steps",
    "rt_active_ray_steps",
    "pixels_traced",
    "l1d_accesses",
    "work_units",
)

#: Upper bound on the per-epoch contention penalty, as a fraction of the
#: epoch length.  Keeps a pathological imbalance from stalling a shard's
#: channels longer than the interval the imbalance was observed over.
MAX_PENALTY_FRACTION = 0.25


def plan_shards(config: GPUConfig) -> int:
    """Effective shard count for a config.

    The largest divisor of ``gcd(num_sms, num_mem_partitions)`` that does
    not exceed the requested ``sim_shards`` — every shard must own whole
    SMs *and* whole memory partitions so the serial engine can run it
    unmodified.
    """
    cap = math.gcd(config.num_sms, config.num_mem_partitions)
    shards = min(config.sim_shards, cap)
    while cap % shards:
        shards -= 1
    return shards


def epoch_penalty(
    own_requests: int,
    foreign_requests: int,
    shards: int,
    channels_per_shard: int,
    service_cycles: float,
    epoch_cycles: int,
) -> float:
    """Deterministic cross-shard DRAM queueing penalty for one epoch.

    Under a truly shared memory system a shard's requests queue behind
    other shards' traffic.  Balanced traffic needs no correction: each
    private channel partition is exactly the share of the full system the
    shard would have competed for.  Only the *excess* of foreign traffic
    over the balanced expectation (``(shards - 1) * own``) represents
    queueing the private partition never saw; it is charged at the
    channel service rate, spread over the shard's channels, and capped at
    :data:`MAX_PENALTY_FRACTION` of the epoch.
    """
    imbalance = foreign_requests - (shards - 1) * own_requests
    if imbalance <= 0:
        return 0.0
    penalty = imbalance * service_cycles / max(1, channels_per_shard)
    return min(penalty, epoch_cycles * MAX_PENALTY_FRACTION)


def _shard_config(config: GPUConfig, shards: int) -> GPUConfig:
    """The per-shard GPU slice (name preserved so shard stats merge)."""
    return replace(
        config,
        num_sms=config.num_sms // shards,
        num_mem_partitions=config.num_mem_partitions // shards,
        sim_backend="serial",
    )


def _partition_warps(
    warps: list[WarpTask], num_sms: int, shards: int
) -> list[tuple[list[WarpTask], list[int]]]:
    """Split warps by owning shard, preserving the serial SM placement.

    Warp ``i`` runs on global SM ``i % num_sms`` (the serial round-robin);
    shard ``s`` owns global SMs ``[s * per, (s + 1) * per)``.  Returns one
    ``(tasks, local_sm_of_task)`` pair per shard, tasks in global order.
    """
    per = num_sms // shards
    parts: list[tuple[list[WarpTask], list[int]]] = [
        ([], []) for _ in range(shards)
    ]
    for i, task in enumerate(warps):
        sm = i % num_sms
        shard = sm // per
        parts[shard][0].append(task)
        parts[shard][1].append(sm - shard * per)
    return parts


class _EpochStepper:
    """Drives one shard's engine epoch by epoch (runs in the worker)."""

    def __init__(
        self,
        config: GPUConfig,
        address_map: AddressMap,
        tasks: list[WarpTask],
        sm_of_task: list[int],
    ) -> None:
        self.engine = SimEngine(config, address_map, tasks, sm_of_task)
        self._last_requests = 0

    def step(self, boundary: float, limit: float, penalty: float) -> tuple:
        """Apply last epoch's penalty, simulate one epoch, report traffic."""
        engine = self.engine
        if penalty > 0.0:
            for channel in engine.memory.dram_channels:
                channel.add_external_delay(boundary, penalty)
        engine.run_until(limit)
        total = engine.memory.dram_stats().requests
        delta = total - self._last_requests
        self._last_requests = total
        return delta, engine.done

    def finish(self) -> SimulationStats:
        return self.engine.finish()


def _shard_worker(conn, config, address_map, tasks, sm_of_task) -> None:
    """Worker-process loop: lock-step epochs until told to finish."""
    try:
        stepper = _EpochStepper(config, address_map, tasks, sm_of_task)
        while True:
            message = conn.recv()
            if message[0] == "step":
                _, boundary, limit, penalty = message
                conn.send(stepper.step(boundary, limit, penalty))
            elif message[0] == "finish":
                conn.send(("stats", stepper.finish()))
                return
            else:  # pragma: no cover - protocol is closed
                raise RuntimeError(f"unknown message {message[0]!r}")
    except Exception as error:  # surface worker crashes to the parent
        try:
            conn.send(("error", repr(error)))
        finally:
            raise
    finally:
        conn.close()


class _ForkShards:
    """Fork-backed shard transport: one worker process per shard."""

    def __init__(self, ctx, config, address_map, partitions) -> None:
        self.conns = []
        self.procs = []
        for tasks, sm_of_task in partitions:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, config, address_map, tasks, sm_of_task),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def step(self, boundary, limit, penalties):
        for conn, penalty in zip(self.conns, penalties):
            conn.send(("step", boundary, limit, penalty))
        return [self._receive(conn) for conn in self.conns]

    def finish(self):
        for conn in self.conns:
            conn.send(("finish",))
        replies = [self._receive(conn) for conn in self.conns]
        for proc in self.procs:
            proc.join()
        return [stats for _, stats in replies]

    def _receive(self, conn):
        reply = conn.recv()
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            self.close()
            raise RuntimeError(f"sharded simulation worker failed: {reply[1]}")
        return reply

    def close(self):
        for conn in self.conns:
            conn.close()
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()


class _InProcessShards:
    """Sequential shard transport: the deterministic fallback/reference.

    Runs the exact same lock-step epoch protocol over local engines, so
    its results are identical to the fork transport's — asserted by the
    determinism tests.
    """

    def __init__(self, config, address_map, partitions) -> None:
        self.steppers = [
            _EpochStepper(config, address_map, tasks, sm_of_task)
            for tasks, sm_of_task in partitions
        ]

    def step(self, boundary, limit, penalties):
        return [
            stepper.step(boundary, limit, penalty)
            for stepper, penalty in zip(self.steppers, penalties)
        ]

    def finish(self):
        return [stepper.finish() for stepper in self.steppers]

    def close(self):
        pass


class ShardedCycleSimulator:
    """Drop-in ``run(warps)`` provider backed by epoch-synchronized shards.

    Selected via ``GPUConfig.sim_backend = "sharded"`` (CLI:
    ``--sim-backend sharded``).  :attr:`last_run` exposes the shard plan
    and per-shard work of the most recent run for benchmarking.
    """

    def __init__(
        self,
        config: GPUConfig,
        address_map: AddressMap,
        in_process: bool | None = None,
    ) -> None:
        self.config = config
        self.address_map = address_map
        if in_process is None:
            in_process = "fork" not in multiprocessing.get_all_start_methods()
        self.in_process = in_process
        #: Plan + per-shard accounting of the most recent :meth:`run`.
        self.last_run: dict | None = None

    def run(self, warps: list[WarpTask]) -> SimulationStats:
        start_time = time.perf_counter()
        config = self.config
        shards = plan_shards(config)
        if shards <= 1 or not warps:
            # Degenerate plan (coprime component counts, or nothing to
            # simulate): the serial engine IS the sharded result.
            stats = CycleSimulator(config, self.address_map).run(warps)
            stats.sim_backend = "sharded"
            self.last_run = {
                "shards": 1,
                "epochs": 0,
                "mode": "serial-fallback",
                "shard_work_units": [stats.work_units],
                "shard_cycles": [stats.cycles],
            }
            return stats

        shard_config = _shard_config(config, shards)
        partitions = _partition_warps(warps, config.num_sms, shards)
        mode = "inprocess" if self.in_process else "fork"
        if self.in_process:
            transport = _InProcessShards(
                shard_config, self.address_map, partitions
            )
        else:
            ctx = multiprocessing.get_context("fork")
            transport = _ForkShards(
                ctx, shard_config, self.address_map, partitions
            )

        epoch_cycles = config.sim_epoch_cycles
        channels_per_shard = shard_config.num_mem_partitions
        service_cycles = config.dram_service_cycles_per_line
        try:
            epoch = 0
            penalties = [0.0] * shards
            while True:
                boundary = float(epoch * epoch_cycles)
                limit = float((epoch + 1) * epoch_cycles)
                replies = transport.step(boundary, limit, penalties)
                epoch += 1
                if all(done for _, done in replies):
                    break
                requests = [delta for delta, _ in replies]
                total = sum(requests)
                penalties = [
                    epoch_penalty(
                        own,
                        total - own,
                        shards,
                        channels_per_shard,
                        service_cycles,
                        epoch_cycles,
                    )
                    for own in requests
                ]
            shard_stats = transport.finish()
        finally:
            transport.close()

        total = merge_simulation_stats(shard_stats)
        total.sim_backend = "sharded"
        total.host_seconds = time.perf_counter() - start_time
        self.last_run = {
            "shards": shards,
            "epochs": epoch,
            "mode": mode,
            "shard_work_units": [s.work_units for s in shard_stats],
            "shard_cycles": [s.cycles for s in shard_stats],
        }
        return total
