"""SM <-> memory-partition interconnect.

The paper notes the interconnect "changes automatically with the number of
SMs and memory controllers" under downscaling, so the model keys everything
off the partition count: line addresses interleave across partitions, and
each partition-side port is a serial resource (requests occupy it briefly,
creating backpressure when many SMs hammer one slice).
"""

from __future__ import annotations

__all__ = ["Interconnect"]


class Interconnect:
    """Fixed-latency crossbar with per-partition port occupancy."""

    #: Cycles one request occupies a partition-side port (flit time).
    PORT_OCCUPANCY = 1.0

    def __init__(self, num_partitions: int, latency: int, line_bytes: int) -> None:
        if num_partitions <= 0:
            raise ValueError("need at least one memory partition")
        self.num_partitions = num_partitions
        self.latency = latency
        self.line_bytes = line_bytes
        self._port_busy = [0.0] * num_partitions
        self.requests = 0

    def partition_of(self, line_addr: int) -> int:
        """Home partition of a line (line-interleaved address mapping)."""
        return (line_addr // self.line_bytes) % self.num_partitions

    def deliver(self, line_addr: int, cycle: float) -> tuple[int, float]:
        """Route a request to its home partition.

        Returns ``(partition_index, arrival_cycle)`` where the arrival
        accounts for wire latency plus any port queueing at the destination.
        """
        partition = self.partition_of(line_addr)
        arrival = cycle + self.latency
        start = max(arrival, self._port_busy[partition])
        self._port_busy[partition] = start + self.PORT_OCCUPANCY
        self.requests += 1
        return partition, start

    def return_latency(self) -> float:
        """Latency of the response path back to the SM."""
        return float(self.latency)
