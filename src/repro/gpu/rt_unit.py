"""Ray-tracing accelerator unit model.

Each SM hosts ``rt_units_per_sm`` RT units (Table II: 1) with
``rt_max_warps`` concurrent warp slots and an MSHR bounding outstanding node
fetches.  A warp's :class:`~repro.gpu.warp.TraceOp` is processed as a
sequence of lock-step *traversal steps*: at step *s* every lane still alive
fetches its *s*-th BVH node; the step's latency is the slowest fetch plus a
fixed box/intersection-test cost.  Triangle tests in the leaves follow the
same pattern over triangle records.

Steps execute as individual simulator events (:class:`TraversalJob`), so
concurrent warps' memory traffic interleaves in time — vital for modelling
bandwidth contention instead of falsely serializing whole traversals.

Two properties of this model carry the paper's story:

* **Divergence costs bandwidth** — a step fetches the *distinct* cache
  lines its lanes need, so coherent warps (coarse-grained groups, tall
  section blocks) touch few lines per step while divergent warps
  (fine-grained chunks) touch many.
* **RT efficiency** — Table I's "average # of active rays per warp" is the
  mean lane-liveness over traversal steps, measured here.
"""

from __future__ import annotations

from collections import deque

from .telemetry import Counter, Histogram, NULL_BUS, StatGroup, TelemetryBus
from .warp import TraceOp

__all__ = ["RTUnit", "RTStats", "TraversalJob"]

#: Histogram buckets for per-step live-lane counts: 0..32 lanes inclusive.
ACTIVE_LANE_BUCKETS = 33


class RTStats(StatGroup):
    """Counters for Table I's RT-unit metrics."""

    warps_processed = Counter("traversal jobs started")
    traversal_steps = Counter("lock-step node steps executed")
    active_ray_steps = Counter("sum over steps of live-lane count")
    node_fetches = Counter("distinct node cache lines fetched")
    tri_fetches = Counter("distinct triangle cache lines fetched")
    prefetches_issued = Counter("treelet prefetches sent to memory")
    active_lane_hist = Histogram(
        ACTIVE_LANE_BUCKETS, "node steps by live-lane count (bucket = lanes)"
    )

    def average_efficiency(self) -> float:
        """Average active rays per warp per traversal step."""
        if self.traversal_steps == 0:
            return 0.0
        return self.active_ray_steps / self.traversal_steps


class RTUnit:
    """One RT unit: bounded warp slots dispatching step-wise traversal jobs.

    Slot arbitration is cooperative with the simulator: a warp that finds
    no free slot parks itself on :attr:`waiters`; when a job completes, the
    simulator releases the slot and wakes the queue head.
    """

    def __init__(
        self,
        sm,
        max_warps: int,
        step_cycles: int,
        bus: TelemetryBus = NULL_BUS,
        component: str = "rt",
    ) -> None:
        self._sm = sm  # back-reference for the L1/L2 access path
        self.max_warps = max_warps
        self.free_slots = max_warps
        #: Warps waiting for a slot (FIFO of WarpState, managed by the
        #: simulator's event loop).  A deque: the head is popped on every
        #: slot release, and ``list.pop(0)`` is O(n) in queue depth.
        self.waiters: deque = deque()
        self.step_cycles = step_cycles
        self._bus = bus
        self.component = component
        self.stats = bus.register(component, RTStats())

    def try_acquire_slot(self) -> bool:
        """Claim a slot if one is free."""
        if self.free_slots > 0:
            self.free_slots -= 1
            return True
        return False

    def release_slot(self) -> None:
        """Return a slot to the pool (the simulator then wakes waiters)."""
        if self.free_slots >= self.max_warps:
            raise RuntimeError("RT unit slot over-release")
        self.free_slots += 1

    def start_job(
        self,
        op: TraceOp,
        node_address,
        triangle_address,
        line_bytes: int,
    ) -> "TraversalJob":
        """Create the stepping job for a warp's traversal."""
        self.stats.warps_processed += 1
        return TraversalJob(self, op, node_address, triangle_address, line_bytes)


class TraversalJob:
    """One warp's in-flight traversal, advanced one lock-step at a time.

    The simulator calls :meth:`advance` once per event; each call performs
    one traversal step's memory fetches and returns the cycle at which the
    step's results are available.  ``done`` flips after the final step.
    """

    def __init__(
        self,
        unit: RTUnit,
        op: TraceOp,
        node_address,
        triangle_address,
        line_bytes: int,
    ) -> None:
        self.unit = unit
        self._node_address = node_address
        self._triangle_address = triangle_address
        self._line_bytes = line_bytes
        self._node_lists = [n for n in op.per_thread_nodes if n is not None]
        self._tri_lists = [t for t in op.per_thread_tris if t is not None]
        self._node_steps = op.max_node_steps()
        self._tri_steps = op.max_tri_steps()
        self._step = 0
        self.done = self._node_steps + self._tri_steps == 0
        # Hoisted per-step constants (advance() is the simulator's hottest
        # function; attribute chains through unit/sm/config add up).
        config = unit._sm.config
        self._prefetch_depth = config.rt_prefetch_depth
        self._pipeline_depth = config.rt_fetch_pipeline

    def advance(self, cycle: float) -> float:
        """Run the next traversal step starting at ``cycle``.

        Returns the step's completion cycle; sets :attr:`done` when this
        was the last step.
        """
        if self.done:
            raise RuntimeError("advance() called on a finished traversal job")
        unit = self.unit
        sm = unit._sm
        stats = unit.stats
        line_bytes = self._line_bytes
        mem_access = sm.mem_access
        # line address -> data-ready cycle, deduplicated within the step
        # (lanes converging on the same node fetch it once).  Fetches
        # issue in lane order at first touch — the memory subsystem is
        # stateful, so the dedup must not reorder them.
        line_ready: dict[int, float] = {}
        if self._step < self._node_steps:
            step = self._step
            active = 0
            node_address = self._node_address
            for nodes in self._node_lists:
                if step < len(nodes):
                    active += 1
                    addr = node_address(nodes[step])
                    line = addr - (addr % line_bytes)
                    if line not in line_ready:
                        line_ready[line] = mem_access(line, cycle)
            stats.traversal_steps += 1
            stats.active_ray_steps += active
            stats.active_lane_hist[
                min(active, ACTIVE_LANE_BUCKETS - 1)
            ] += 1
            stats.node_fetches += len(line_ready)
        else:
            step = self._step - self._node_steps
            triangle_address = self._triangle_address
            for tris in self._tri_lists:
                if step < len(tris):
                    addr = triangle_address(tris[step])
                    line = addr - (addr % line_bytes)
                    if line not in line_ready:
                        line_ready[line] = mem_access(line, cycle)
            stats.tri_fetches += len(line_ready)

        # Treelet-style prefetch: warm the lines the rays will need
        # ``rt_prefetch_depth`` steps from now (0 disables).  Prefetches
        # go through the real memory path and land in the MSHR, so later
        # demand fetches merge with them.
        depth = self._prefetch_depth
        if depth > 0:
            ahead = self._step + depth
            if ahead < self._node_steps:
                line_bytes_ = self._line_bytes
                for nodes in self._node_lists:
                    if ahead < len(nodes):
                        addr = self._node_address(nodes[ahead])
                        if sm.prefetch(addr - (addr % line_bytes_), cycle):
                            unit.stats.prefetches_issued += 1

        # The RT unit's fetch pipeline hides cache-hit latency: a step only
        # stalls the warp for the portion of its slowest fetch exceeding
        # the pipeline depth (DRAM fills, queueing storms).  Stalling the
        # *warp clock* matters: the next steps' fetches then issue after
        # the stall, so a cold-start bandwidth storm delays a warp once
        # instead of taxing its every subsequent fetch.
        pipeline_depth = self._pipeline_depth
        stall = 0.0
        for ready in line_ready.values():
            extra = ready - cycle - pipeline_depth
            if extra > stall:
                stall = extra
        self._step += 1
        self.done = self._step >= self._node_steps + self._tri_steps
        completion = cycle + unit.step_cycles + stall
        unit._bus.window(unit.component, "rt_busy", cycle, completion)
        return completion
