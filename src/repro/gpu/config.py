"""GPU configurations (paper Table II) and downscaling-aware derivation.

Two presets mirror the paper's evaluation targets:

* :data:`MOBILE_SOC` — 8 SMs, 4 memory partitions (downscale factor K=4);
* :data:`RTX_2060` — 30 SMs, 12 memory partitions (downscale factor K=6).

:meth:`GPUConfig.downscale` implements Section III-C: divide SMs and memory
partitions by ``K``; the L2 (one slice per partition), DRAM bandwidth (one
channel per partition) and interconnect shrink automatically because they
are expressed per-partition.  Per-SM resources are untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["CacheConfig", "GPUConfig", "MOBILE_SOC", "RTX_2060", "preset"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    ``associativity = 0`` means fully associative (paper's L1D).
    """

    size_bytes: int
    line_bytes: int
    associativity: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.size_bytes % self.line_bytes != 0:
            raise ValueError("cache size must be a multiple of the line size")
        lines = self.size_bytes // self.line_bytes
        ways = lines if self.associativity == 0 else self.associativity
        if lines % ways != 0:
            raise ValueError("line count must be divisible by associativity")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        ways = self.num_lines if self.associativity == 0 else self.associativity
        return self.num_lines // ways


@dataclass(frozen=True)
class GPUConfig:
    """A (possibly downscaled) GPU configuration.

    All timing fields are in compute-core cycles; the paper's core,
    interconnect and L2 clocks are equal (1365 MHz) so a single clock domain
    loses nothing, and the faster memory clock is folded into
    ``dram_bytes_per_cycle_per_channel``.
    """

    name: str
    num_sms: int
    num_mem_partitions: int
    registers_per_sm: int
    max_warps_per_sm: int
    warp_size: int = 32
    #: Registers one thread of the ray-gen shader occupies; together with
    #: ``registers_per_sm`` it bounds resident warps (occupancy).
    registers_per_thread: int = 64
    # --- RT unit (per SM) ---
    rt_units_per_sm: int = 1
    rt_max_warps: int = 4
    rt_mshr_size: int = 64
    #: Cycles the RT unit spends on box/triangle tests per traversal step,
    #: on top of the node fetch latency.
    rt_step_cycles: int = 4
    #: Fetch-latency tolerance of the RT unit's traversal pipeline, in
    #: cycles: a ray only stalls for the portion of a node fetch exceeding
    #: this depth.  Sized to cover an uncontended fetch all the way to
    #: DRAM (interconnect + L2 pipeline + DRAM access), so traversal
    #: throughput is set by box-test rate and *bandwidth* behaviour —
    #: stalls appear only when queues build up.  RT cores are engineered
    #: to tolerate memory latency via deep ray queues; without this the
    #: slowest warp's latency chain would dwarf the throughput effects
    #: Zatel's extrapolation relies on.
    rt_fetch_pipeline: int = 360
    #: Treelet-style node prefetching (an *early-stage proposal* in the
    #: spirit of Chou et al., which the paper cites as the kind of change
    #: Zatel evaluates): at each traversal step the RT unit prefetches the
    #: node lines this many steps ahead, hiding part of the fetch latency
    #: at the cost of extra memory traffic.  0 disables the feature
    #: (the Table II baseline).
    rt_prefetch_depth: int = 0
    # --- memory hierarchy ---
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 128, 0, 20)
    )
    #: One L2 slice lives in each memory partition; ``l2_slice`` is that
    #: slice (total L2 = slice * partitions).
    l2_slice: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 128, 16, 160)
    )
    #: Interconnect traversal latency SM -> partition (one way).
    interconnect_latency: int = 20
    #: L2 slice serves one request per this many cycles (bank occupancy).
    l2_service_cycles: int = 2
    #: DRAM first-word latency beyond the L2.
    dram_latency: int = 120
    #: Sustained DRAM bandwidth per channel, bytes per core cycle.  One
    #: channel per memory partition.  16 B/cycle at 1365 MHz ~ 21.8 GB/s,
    #: matching a 14 Gbps GDDR6 16-bit channel.
    dram_bytes_per_cycle_per_channel: int = 16
    # --- pipeline ---
    #: Warp instructions the SM can issue per cycle (per-SM issue width).
    issue_width: int = 1
    #: ALU result latency after issue.
    alu_latency: int = 4
    #: Warp scheduling policy: ``"gto"`` (greedy-then-oldest, Table II) or
    #: ``"lrr"`` (loose round-robin) — ready warps are prioritized by age
    #: or by least-recently-issued respectively.
    warp_scheduler: str = "gto"
    #: Per-SM instruction cache (Table II: 128KB, 16-way, 20 cycles).
    #: Shader code is tiny so this almost always hits; it exists for
    #: Table II completeness and costs its latency on cold fetches.
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, 128, 16, 20)
    )
    # --- telemetry (observability only: never affects any metric) ---
    #: Cycles between telemetry-bus interval snapshots; 0 disables
    #: snapshotting.
    telemetry_interval: int = 0
    #: Record component timeline windows (issue stalls, RT occupancy, L2
    #: bank and DRAM channel contention) for ``.zperf`` export.
    timeline_trace: bool = False
    # --- simulator backend selection ---
    #: Which cycle-simulator implementation runs this config: ``"serial"``
    #: (exact, the default) or ``"sharded"`` (SM shards simulated in
    #: parallel worker processes with epoch-synchronized contention —
    #: deterministic, bounded timing drift; see docs/architecture.md).
    sim_backend: str = "serial"
    #: Shard count the sharded backend aims for.  Clamped down to the
    #: largest divisor of gcd(num_sms, num_mem_partitions) so every shard
    #: owns whole SMs and whole memory partitions; 1 falls back to the
    #: exact serial engine.
    sim_shards: int = 4
    #: Cycles between cross-shard synchronization points of the sharded
    #: backend.  Smaller epochs track contention more closely; larger
    #: epochs synchronize (and message) less often.
    sim_epoch_cycles: int = 2048

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.num_mem_partitions <= 0:
            raise ValueError("SM and memory partition counts must be positive")
        if self.telemetry_interval < 0:
            raise ValueError("telemetry_interval must be >= 0")
        if self.warp_size <= 0 or self.max_warps_per_sm <= 0:
            raise ValueError("warp parameters must be positive")
        if self.warp_scheduler not in ("gto", "lrr"):
            raise ValueError(
                f"unknown warp scheduler {self.warp_scheduler!r}; "
                "use 'gto' or 'lrr'"
            )
        if self.sim_backend not in ("serial", "sharded"):
            raise ValueError(
                f"unknown sim backend {self.sim_backend!r}; "
                "use 'serial' or 'sharded'"
            )
        if self.sim_shards < 1:
            raise ValueError("sim_shards must be >= 1")
        if self.sim_epoch_cycles < 1:
            raise ValueError("sim_epoch_cycles must be >= 1")

    @property
    def resident_warps_per_sm(self) -> int:
        """Warps an SM can host at once: schedule-slot and register limits."""
        reg_limit = self.registers_per_sm // (
            self.registers_per_thread * self.warp_size
        )
        return max(1, min(self.max_warps_per_sm, reg_limit))

    @property
    def l2_total_bytes(self) -> int:
        return self.l2_slice.size_bytes * self.num_mem_partitions

    @property
    def dram_service_cycles_per_line(self) -> float:
        """Core cycles one channel needs to transfer a cache line."""
        return self.l2_slice.line_bytes / self.dram_bytes_per_cycle_per_channel

    def downscale_factor(self) -> int:
        """The paper's K: gcd of SM count and memory partition count."""
        return math.gcd(self.num_sms, self.num_mem_partitions)

    def downscale(self, k: int) -> "GPUConfig":
        """Downscaled configuration per Section III-C.

        SMs and memory partitions are divided by ``k``; everything expressed
        per-SM or per-partition (L1D, RT units, L2 slice, DRAM channel
        bandwidth) is kept, so total LLC capacity and peak DRAM bandwidth
        shrink by ``k`` automatically — no explicit shared-resource edits,
        exactly as the paper argues.

        Raises:
            ValueError: if ``k`` does not evenly divide both component
                counts (the paper only uses divisors of the gcd).
        """
        if k <= 0:
            raise ValueError("downscale factor must be positive")
        if self.num_sms % k or self.num_mem_partitions % k:
            raise ValueError(
                f"factor {k} does not evenly divide {self.num_sms} SMs / "
                f"{self.num_mem_partitions} partitions"
            )
        return replace(
            self,
            name=f"{self.name}/K{k}",
            num_sms=self.num_sms // k,
            num_mem_partitions=self.num_mem_partitions // k,
        )

    def describe(self) -> str:
        """Multi-line summary in the spirit of the paper's Table II."""
        lines = [
            f"GPU config {self.name}",
            f"  SMs: {self.num_sms}   memory partitions: {self.num_mem_partitions}",
            f"  registers/SM: {self.registers_per_sm}   "
            f"max warps/SM: {self.max_warps_per_sm} "
            f"(resident: {self.resident_warps_per_sm})",
            f"  RT units/SM: {self.rt_units_per_sm} "
            f"(max warps {self.rt_max_warps}, MSHR {self.rt_mshr_size})",
            f"  L1D: {self.l1d.size_bytes // 1024}KB "
            f"{'fully-assoc' if self.l1d.associativity == 0 else f'{self.l1d.associativity}-way'}, "
            f"{self.l1d.latency} cyc",
            f"  L2: {self.l2_total_bytes // 1024}KB total "
            f"({self.l2_slice.size_bytes // 1024}KB/slice, "
            f"{self.l2_slice.associativity}-way, {self.l2_slice.latency} cyc)",
            f"  DRAM: {self.num_mem_partitions} channels x "
            f"{self.dram_bytes_per_cycle_per_channel} B/cyc",
        ]
        return "\n".join(lines)


#: Paper Table II, Mobile SoC column.  3MB L2 over 4 partitions = 768KB/slice.
MOBILE_SOC = GPUConfig(
    name="MobileSoC",
    num_sms=8,
    num_mem_partitions=4,
    registers_per_sm=32768,
    max_warps_per_sm=32,
    l2_slice=CacheConfig(768 * 1024, 128, 16, 160),
)

#: Paper Table II, Turing RTX 2060 column.  3MB L2 over 12 partitions =
#: 256KB/slice.
RTX_2060 = GPUConfig(
    name="RTX2060",
    num_sms=30,
    num_mem_partitions=12,
    registers_per_sm=65536,
    max_warps_per_sm=32,
    l2_slice=CacheConfig(256 * 1024, 128, 16, 160),
)

_PRESETS = {"mobile": MOBILE_SOC, "rtx2060": RTX_2060}


def preset(name: str) -> GPUConfig:
    """Look up a configuration preset by short name (``mobile``/``rtx2060``)."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown GPU preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None
