"""Simulation statistics: the metrics of paper Table I.

:class:`SimulationStats` is the simulator's entire observable output; Zatel
and the baselines only ever manipulate these numbers (extrapolate, combine,
compare).  :data:`METRICS` fixes the canonical metric names/order used by
every experiment report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "SimulationStats",
    "METRICS",
    "EXTENDED_METRICS",
    "METRIC_DESCRIPTIONS",
    "MetricKind",
]

#: Canonical metric keys, in the paper's Table I order.
METRICS = (
    "ipc",
    "cycles",
    "l1d_miss_rate",
    "l2_miss_rate",
    "rt_efficiency",
    "dram_efficiency",
    "bw_utilization",
)

#: Supplementary metrics beyond Table I ("Zatel ... can estimate any
#: metric that Vulkan-Sim provides, as desired by the user" — these are
#: the extra ones our simulator provides).  They are not part of the
#: paper's evaluation tables, but they carry through extrapolation and
#: combination like any other rate metric, so a full ``predict`` reports
#: them alongside Table I.
EXTENDED_METRICS = (
    "simd_efficiency",
    "warp_occupancy",
)

#: Table I descriptions, keyed by metric.
METRIC_DESCRIPTIONS = {
    "ipc": "# of instructions executed per cycle",
    "cycles": "# of cycles required to ray trace the scene",
    "l1d_miss_rate": "Total cache miss rate over all L1D instances",
    "l2_miss_rate": "Total cache miss rate over all L2 instances",
    "rt_efficiency": (
        "Average # of active rays per warp over all ray tracing "
        "accelerator units"
    ),
    "dram_efficiency": (
        "DRAM bandwidth utilization with pending requests waiting to be "
        "processed"
    ),
    "bw_utilization": (
        "DRAM bandwidth utilization without pending requests waiting to "
        "be processed"
    ),
}


class MetricKind:
    """How a metric behaves under Zatel's extrapolation and combination.

    ``ABSOLUTE`` metrics (cycles, instructions) scale with the amount of
    work simulated and are linearly extrapolated (Section III-G);
    ``RATE`` metrics (miss rates, efficiencies) are already normalized and
    are passed through per group, then averaged across groups;
    ``THROUGHPUT`` metrics (IPC) are *summed* across groups because the
    groups' GPUs run concurrently (Section III-H's 20+50 = 70 IPC example).
    """

    ABSOLUTE = "absolute"
    RATE = "rate"
    THROUGHPUT = "throughput"

    BY_METRIC = {
        "ipc": THROUGHPUT,
        "cycles": ABSOLUTE,
        "l1d_miss_rate": RATE,
        "l2_miss_rate": RATE,
        "rt_efficiency": RATE,
        "dram_efficiency": RATE,
        "bw_utilization": RATE,
        # extended metrics: both are normalized utilizations, i.e. rates
        "simd_efficiency": RATE,
        "warp_occupancy": RATE,
    }


@dataclass
class SimulationStats:
    """Raw counters of one simulation instance plus derived Table I metrics."""

    config_name: str = ""
    cycles: float = 0.0
    instructions: int = 0
    # caches
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    # RT units
    rt_traversal_steps: int = 0
    rt_active_ray_steps: int = 0
    # DRAM
    dram_requests: int = 0
    dram_data_cycles: float = 0.0
    dram_pending_cycles: float = 0.0
    dram_channels: int = 1
    # extended pipeline counters (beyond Table I)
    #: Warp-level instruction issue slots consumed (lock-step maxima).
    issued_warp_instructions: int = 0
    #: Integral of resident warps over time: sum over warps of
    #: (completion - activation) cycles.
    warp_resident_cycles: float = 0.0
    warp_size: int = 32
    sm_count: int = 1
    resident_limit: int = 1
    # bookkeeping
    warps: int = 0
    pixels_traced: int = 0
    pixels_filtered: int = 0
    #: Tracing backend that produced the replayed frame trace ("scalar"
    #: or "packet").  Provenance only — backends are byte-identical, so
    #: it never affects any metric.
    backend: str = ""
    #: Deterministic simulation-work proxy (events processed); stands in
    #: for host wall-clock when computing speedups reproducibly.
    work_units: int = 0
    host_seconds: float = 0.0

    # ------------------------------------------------------------------
    # derived metrics (Table I)
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Thread-instructions per cycle over the whole GPU."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def rt_efficiency(self) -> float:
        """Average active rays per warp per traversal step."""
        if self.rt_traversal_steps == 0:
            return 0.0
        return self.rt_active_ray_steps / self.rt_traversal_steps

    @property
    def dram_efficiency(self) -> float:
        if self.dram_pending_cycles <= 0:
            return 0.0
        return min(1.0, self.dram_data_cycles / self.dram_pending_cycles)

    @property
    def bw_utilization(self) -> float:
        if self.cycles <= 0 or self.dram_channels <= 0:
            return 0.0
        return min(
            1.0, self.dram_data_cycles / (self.cycles * self.dram_channels)
        )

    @property
    def simd_efficiency(self) -> float:
        """Active thread-instructions per issued warp-instruction slot,
        normalized by the warp width — 1.0 means every issued instruction
        had all lanes live (extended metric)."""
        if self.issued_warp_instructions <= 0 or self.warp_size <= 0:
            return 0.0
        return self.instructions / (
            self.issued_warp_instructions * self.warp_size
        )

    @property
    def warp_occupancy(self) -> float:
        """Average resident-warp slots in use across the run, in [0, 1]
        (extended metric)."""
        capacity = self.cycles * self.sm_count * self.resident_limit
        if capacity <= 0:
            return 0.0
        return min(1.0, self.warp_resident_cycles / capacity)

    def metric(self, name: str) -> float:
        """Look up a metric (Table I or extended) by canonical name."""
        if name not in METRICS and name not in EXTENDED_METRICS:
            raise KeyError(
                f"unknown metric {name!r}; known: {METRICS + EXTENDED_METRICS}"
            )
        return float(getattr(self, name))

    def metrics(self) -> dict[str, float]:
        """All Table I metrics as a dict (canonical order)."""
        return {name: self.metric(name) for name in METRICS}

    def extended_metrics(self) -> dict[str, float]:
        """The supplementary (non-Table-I) metrics."""
        return {name: self.metric(name) for name in EXTENDED_METRICS}

    def summary(self) -> str:
        """Human-readable one-run report."""
        backend = f", {self.backend} trace" if self.backend else ""
        rows = [
            f"simulation of {self.pixels_traced} pixels "
            f"({self.pixels_filtered} filtered) on {self.config_name}: "
            f"{self.warps} warps{backend}"
        ]
        for name, value in self.metrics().items():
            rows.append(f"  {name:16s} {value:12.4f}")
        for name, value in self.extended_metrics().items():
            rows.append(f"  {name:16s} {value:12.4f}  (extended)")
        rows.append(f"  {'work_units':16s} {self.work_units:12d}")
        return "\n".join(rows)


def _validate_metric_tables() -> None:
    """Keep METRICS, descriptions and kinds in lock-step."""
    assert set(METRIC_DESCRIPTIONS) == set(METRICS)
    assert set(MetricKind.BY_METRIC) == set(METRICS) | set(EXTENDED_METRICS)
    assert all(
        isinstance(getattr(SimulationStats, name), property)
        for name in METRICS + EXTENDED_METRICS
        if name != "cycles"
    )


_validate_metric_tables()
