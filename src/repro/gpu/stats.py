"""Simulation statistics: the metrics of paper Table I.

:class:`SimulationStats` is the simulator's entire observable output; Zatel
and the baselines only ever manipulate these numbers (extrapolate, combine,
compare).  The canonical metric names, order, descriptions and
extrapolation/combination kinds all derive from the single instrument
registry in :mod:`repro.gpu.telemetry` (:data:`~repro.gpu.telemetry.
METRIC_SPECS`); this module re-exports the familiar views (:data:`METRICS`,
:data:`EXTENDED_METRICS`, :data:`METRIC_DESCRIPTIONS`, :class:`MetricKind`)
so downstream code keeps one import site.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .telemetry import (
    KIND_ABSOLUTE,
    KIND_RATE,
    KIND_THROUGHPUT,
    METRIC_REGISTRY,
    METRIC_SPECS,
    TelemetryRecord,
)

__all__ = [
    "SimulationStats",
    "METRICS",
    "EXTENDED_METRICS",
    "METRIC_DESCRIPTIONS",
    "MetricKind",
    "merge_simulation_stats",
]

#: Canonical metric keys, in the paper's Table I order (registry-derived).
METRICS = tuple(spec.name for spec in METRIC_SPECS if not spec.extended)

#: Supplementary metrics beyond Table I ("Zatel ... can estimate any
#: metric that Vulkan-Sim provides, as desired by the user" — these are
#: the extra ones our simulator provides).  They are not part of the
#: paper's evaluation tables, but they carry through extrapolation and
#: combination like any other rate metric, so a full ``predict`` reports
#: them alongside Table I.
EXTENDED_METRICS = tuple(spec.name for spec in METRIC_SPECS if spec.extended)

#: Table I descriptions, keyed by metric (registry-derived).
METRIC_DESCRIPTIONS = {
    spec.name: spec.description for spec in METRIC_SPECS if not spec.extended
}


class MetricKind:
    """How a metric behaves under Zatel's extrapolation and combination.

    ``ABSOLUTE`` metrics (cycles, instructions) scale with the amount of
    work simulated and are linearly extrapolated (Section III-G);
    ``RATE`` metrics (miss rates, efficiencies) are already normalized and
    are passed through per group, then averaged across groups;
    ``THROUGHPUT`` metrics (IPC) are *summed* across groups because the
    groups' GPUs run concurrently (Section III-H's 20+50 = 70 IPC example).

    This is a compatibility view over the telemetry metric registry — the
    kinds live on :data:`~repro.gpu.telemetry.METRIC_SPECS`.
    """

    ABSOLUTE = KIND_ABSOLUTE
    RATE = KIND_RATE
    THROUGHPUT = KIND_THROUGHPUT

    BY_METRIC = {spec.name: spec.kind for spec in METRIC_SPECS}


@dataclass
class SimulationStats:
    """Raw counters of one simulation instance plus derived Table I metrics."""

    config_name: str = ""
    cycles: float = 0.0
    instructions: int = 0
    # caches
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    # RT units
    rt_traversal_steps: int = 0
    rt_active_ray_steps: int = 0
    # DRAM
    dram_requests: int = 0
    dram_data_cycles: float = 0.0
    dram_pending_cycles: float = 0.0
    dram_channels: int = 1
    # extended pipeline counters (beyond Table I)
    #: Warp-level instruction issue slots consumed (lock-step maxima).
    issued_warp_instructions: int = 0
    #: Integral of resident warps over time: sum over warps of
    #: (completion - activation) cycles.
    warp_resident_cycles: float = 0.0
    warp_size: int = 32
    sm_count: int = 1
    resident_limit: int = 1
    # bookkeeping
    warps: int = 0
    pixels_traced: int = 0
    pixels_filtered: int = 0
    #: Tracing backend that produced the replayed frame trace ("scalar"
    #: or "packet").  Provenance only — backends are byte-identical, so
    #: it never affects any metric.
    backend: str = ""
    #: Simulator backend that produced this run ("serial" or "sharded").
    #: Provenance only, like ``backend`` — the serial backend is exact and
    #: the sharded backend's drift is bounded and documented.
    sim_backend: str = ""
    #: Deterministic simulation-work proxy (events processed); stands in
    #: for host wall-clock when computing speedups reproducibly.
    work_units: int = 0
    host_seconds: float = 0.0
    #: Interval snapshots + timeline events captured by the telemetry bus,
    #: or None when the producing config left telemetry off.  Excluded
    #: from equality: telemetry is observability, not a metric.
    telemetry: TelemetryRecord | None = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    # derived metrics (Table I)
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Thread-instructions per cycle over the whole GPU."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def rt_efficiency(self) -> float:
        """Average active rays per warp per traversal step."""
        if self.rt_traversal_steps == 0:
            return 0.0
        return self.rt_active_ray_steps / self.rt_traversal_steps

    @property
    def dram_efficiency(self) -> float:
        if self.dram_pending_cycles <= 0:
            return 0.0
        return min(1.0, self.dram_data_cycles / self.dram_pending_cycles)

    @property
    def bw_utilization(self) -> float:
        if self.cycles <= 0 or self.dram_channels <= 0:
            return 0.0
        return min(
            1.0, self.dram_data_cycles / (self.cycles * self.dram_channels)
        )

    @property
    def simd_efficiency(self) -> float:
        """Active thread-instructions per issued warp-instruction slot,
        normalized by the warp width — 1.0 means every issued instruction
        had all lanes live (extended metric)."""
        if self.issued_warp_instructions <= 0 or self.warp_size <= 0:
            return 0.0
        return self.instructions / (
            self.issued_warp_instructions * self.warp_size
        )

    @property
    def warp_occupancy(self) -> float:
        """Average resident-warp slots in use across the run, in [0, 1]
        (extended metric)."""
        capacity = self.cycles * self.sm_count * self.resident_limit
        if capacity <= 0:
            return 0.0
        return min(1.0, self.warp_resident_cycles / capacity)

    def metric(self, name: str) -> float:
        """Look up a metric (Table I or extended) by canonical name."""
        if name not in METRIC_REGISTRY:
            raise KeyError(
                f"unknown metric {name!r}; known: {METRICS + EXTENDED_METRICS}"
            )
        return float(getattr(self, name))

    def metrics(self) -> dict[str, float]:
        """All Table I metrics as a dict (canonical order)."""
        return {name: self.metric(name) for name in METRICS}

    def extended_metrics(self) -> dict[str, float]:
        """The supplementary (non-Table-I) metrics."""
        return {name: self.metric(name) for name in EXTENDED_METRICS}

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------

    def merge_from(self, other: "SimulationStats") -> "SimulationStats":
        """Fold another instance's raw counters into this one.

        Models the merged instances as *concurrently running partitions of
        the same workload* (the Section III-H picture): additive counters
        sum, ``cycles`` takes the slowest partition, and the hardware
        extents (``sm_count``, ``dram_channels``) add up.

        Mismatched provenance is rejected rather than silently combined —
        mixing configs or tracing backends produces numbers that *look*
        like one run's statistics but mean nothing.

        Raises:
            ValueError: if ``config_name``, ``backend`` / ``sim_backend``
                (when both are set), ``warp_size`` or ``resident_limit``
                disagree.
        """
        for attr in ("config_name", "warp_size", "resident_limit"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if mine != theirs:
                raise ValueError(
                    f"cannot merge SimulationStats with mismatched {attr}: "
                    f"{mine!r} != {theirs!r}"
                )
        if self.backend and other.backend and self.backend != other.backend:
            raise ValueError(
                "cannot merge SimulationStats from different tracing "
                f"backends: {self.backend!r} != {other.backend!r}"
            )
        if (
            self.sim_backend
            and other.sim_backend
            and self.sim_backend != other.sim_backend
        ):
            raise ValueError(
                "cannot merge SimulationStats from different simulator "
                f"backends: {self.sim_backend!r} != {other.sim_backend!r}"
            )
        self.cycles = max(self.cycles, other.cycles)
        for attr in (
            "instructions",
            "l1d_accesses",
            "l1d_misses",
            "l2_accesses",
            "l2_misses",
            "rt_traversal_steps",
            "rt_active_ray_steps",
            "dram_requests",
            "dram_data_cycles",
            "dram_pending_cycles",
            "dram_channels",
            "issued_warp_instructions",
            "warp_resident_cycles",
            "sm_count",
            "warps",
            "pixels_traced",
            "pixels_filtered",
            "work_units",
            "host_seconds",
        ):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        if not self.backend:
            self.backend = other.backend
        if not self.sim_backend:
            self.sim_backend = other.sim_backend
        self.telemetry = None  # interval timelines don't merge meaningfully
        return self

    def summary(self) -> str:
        """Human-readable one-run report."""
        backend = f", {self.backend} trace" if self.backend else ""
        rows = [
            f"simulation of {self.pixels_traced} pixels "
            f"({self.pixels_filtered} filtered) on {self.config_name}: "
            f"{self.warps} warps{backend}"
        ]
        for name, value in self.metrics().items():
            rows.append(f"  {name:16s} {value:12.4f}")
        for name, value in self.extended_metrics().items():
            rows.append(f"  {name:16s} {value:12.4f}  (extended)")
        rows.append(f"  {'work_units':16s} {self.work_units:12d}")
        return "\n".join(rows)


def merge_simulation_stats(runs: list[SimulationStats]) -> SimulationStats:
    """Merge same-provenance runs into one aggregate (see ``merge_from``).

    Raises:
        ValueError: for an empty list or mismatched provenance.
    """
    if not runs:
        raise ValueError("cannot merge zero SimulationStats")
    total = SimulationStats(
        config_name=runs[0].config_name,
        warp_size=runs[0].warp_size,
        resident_limit=runs[0].resident_limit,
        sm_count=0,
        dram_channels=0,
    )
    for run in runs:
        total.merge_from(run)
    return total


def _validate_metric_tables() -> None:
    """Keep METRICS, descriptions and kinds in lock-step with the registry."""
    assert set(METRIC_DESCRIPTIONS) == set(METRICS)
    assert set(MetricKind.BY_METRIC) == set(METRICS) | set(EXTENDED_METRICS)
    assert all(
        isinstance(getattr(SimulationStats, name), property)
        for name in METRICS + EXTENDED_METRICS
        if name != "cycles"
    )
    counter_fields = {f.name for f in fields(SimulationStats)}
    assert "cycles" in counter_fields


_validate_metric_tables()
