"""The cycle-level GPU timing simulator (Vulkan-Sim stand-in).

Event-driven rather than tick-by-tick: a heap orders warps by their
next-ready cycle, each pop executes one warp op inline against resource
timelines (issue ports, RT-unit slots, L2 banks, DRAM channels), and the
warp is re-queued at its completion cycle.  Oldest-ready-first pop order
approximates Table II's greedy-then-oldest scheduler.  See DESIGN.md for
the fidelity discussion.

The event loop lives in :class:`SimEngine`, a *resumable* engine: the
default serial backend drives it to completion in one call, while the
sharded parallel backend (:mod:`repro.gpu.parallel`) steps it epoch by
epoch.  The engine's per-pop path is deliberately lean:

* each warp's op stream is pre-compiled into a dispatch table of
  ``(kind, op, scalar, scalar)`` rows, so no ``isinstance`` chain or
  per-pop lane reduction runs;
* heap entries are ``(cycle, age, state)`` — ages are globally unique
  among live warps under both schedulers (GTO never reassigns them, LRR
  reassigns from the same monotonic counter), so no tiebreak sequence
  number is needed and the state is never compared;
* the telemetry clock advances once per distinct event cycle (same-cycle
  bursts share one boundary check), and a disabled bus's ``advance`` /
  ``window`` are no-op functions.

:meth:`CycleSimulator.run_reference` preserves the original
straight-line loop; both produce byte-identical statistics (pinned by
``tests/data/golden_predict.json`` and the A/B suite in
``tests/test_simulator_fastpath.py``), and the reference is what the
simulator benchmark reports as "exact serial".

Usage::

    warps = compile_kernel(frame, pixels, scene.addresses, selected)
    stats = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)
"""

from __future__ import annotations

import heapq
import time
from collections import deque

from ..scene.scene import AddressMap
from .config import GPUConfig
from .memory import MemorySubsystem
from .rt_unit import RTStats
from .sm import SM
from .stats import SimulationStats
from .telemetry import Counter, CycleCounter, StatGroup, TelemetryBus
from .warp import ComputeOp, StoreOp, TraceOp, WarpState, WarpTask

__all__ = ["CycleSimulator", "CoreStats", "SimEngine", "make_simulator"]

#: Op-kind codes of the pre-compiled dispatch table (ints compare faster
#: than an ``isinstance`` chain and never miss).
OP_TRACE, OP_COMPUTE, OP_STORE = 0, 1, 2


def compile_program(task: WarpTask) -> tuple:
    """Pre-compile a warp's op stream into the fast loop's dispatch rows.

    Each row is ``(kind, op, a, b)`` where the two scalars are the only
    derived quantities the event loop needs, precomputed once instead of
    re-reduced over the 32-lane tuples on every pop:

    * ``OP_TRACE``:   ``a`` = active lanes, ``b`` = instruction count;
    * ``OP_COMPUTE``: ``a`` = issue cycles, ``b`` = instruction count;
    * ``OP_STORE``:   ``a`` = instruction count, ``b`` = issue slots (0/1).
    """
    rows = []
    for op in task.ops:
        if isinstance(op, TraceOp):
            rows.append((OP_TRACE, op, op.active_lanes(), op.instruction_count()))
        elif isinstance(op, ComputeOp):
            rows.append(
                (OP_COMPUTE, op, op.issue_cycles(), op.instruction_count())
            )
        elif isinstance(op, StoreOp):
            rows.append(
                (OP_STORE, op, op.instruction_count(), 1 if op.active_lanes() else 0)
            )
        else:  # pragma: no cover - op types are closed
            raise TypeError(f"unknown warp op {type(op).__name__}")
    return tuple(rows)


class CoreStats(StatGroup):
    """Whole-GPU event-loop counters (the bus's ``core`` component)."""

    instructions = Counter("thread-instructions executed")
    issued_warp_instructions = Counter("warp-instruction issue slots used")
    ops_executed = Counter("warp ops completed (work proxy)")
    warp_resident_cycles = CycleCounter(
        "integral of resident warps over time"
    )


class SimEngine:
    """Resumable event-driven core of the cycle simulator.

    Owns the per-run component state (telemetry bus, memory subsystem,
    SM array, warp queues, event heap) and exposes :meth:`run_until` so a
    driver can either run to completion (serial backend) or step in
    fixed-cycle epochs (sharded backend).  Repeated ``run_until`` calls
    continue exactly where the previous one stopped.
    """

    def __init__(
        self,
        config: GPUConfig,
        address_map: AddressMap,
        warps: list[WarpTask],
        sm_of_task: list[int] | None = None,
    ) -> None:
        self._start_time = time.perf_counter()
        self.config = config
        self.address_map = address_map
        self.warps = warps
        bus = TelemetryBus(
            interval=config.telemetry_interval,
            timeline=config.timeline_trace,
        )
        self.bus = bus
        self.memory = MemorySubsystem(config, bus)
        self.sms = [SM(i, config, self.memory, bus) for i in range(config.num_sms)]
        self.core = bus.register("core", CoreStats())

        # Distribute warps across SMs (block scheduler): round-robin by
        # default; an explicit placement lets the sharded backend
        # reproduce the whole-GPU round-robin on an SM subset.
        self.queues: list[deque] = [deque() for _ in self.sms]
        for i, task in enumerate(warps):
            sm_index = (
                sm_of_task[i] if sm_of_task is not None else i % len(self.sms)
            )
            self.queues[sm_index].append((task, compile_program(task)))

        # Heap entries: (ready cycle, scheduler priority, warp).  Priority
        # implements the warp scheduler among same-cycle warps: GTO uses
        # the (static) age so older warps win; LRR bumps a warp's priority
        # past its peers every time it issues.  Ages are unique among live
        # warps, so entries never tie and the state is never compared.
        self.heap: list[tuple[float, int, WarpState]] = []
        self.age = 0
        self.lrr = config.warp_scheduler == "lrr"
        self.max_completion = 0.0

        # Core counters accumulate in locals inside the loop and flush to
        # the stat group right before any telemetry snapshot can observe
        # them (and at finish), keeping interval snapshots byte-identical
        # to the per-pop accounting of the reference loop.
        self._instructions = 0
        self._issued = 0
        self._ops = 0
        self._resident_cycles = 0.0
        self._advance = bus.advance if bus.interval else None
        self._last_advance = -1.0

        resident = config.resident_warps_per_sm
        for sm_index in range(len(self.sms)):
            for _ in range(resident):
                self._activate(sm_index, 0.0)

    # ------------------------------------------------------------------

    def _activate(self, sm_index: int, cycle: float) -> None:
        """Admit the next queued warp of an SM (if any) at ``cycle``."""
        queue = self.queues[sm_index]
        if queue:
            task, program = queue.popleft()
            state = WarpState(
                task=task,
                sm_index=sm_index,
                ready_cycle=cycle,
                age=self.age,
                program=program,
            )
            state.activated_cycle = cycle
            heapq.heappush(self.heap, (cycle, self.age, state))
            self.age += 1

    def _flush_core(self) -> None:
        """Publish the loop's local counter mirrors to the stat group."""
        core = self.core
        if self._instructions:
            core.instructions += self._instructions
            self._instructions = 0
        if self._issued:
            core.issued_warp_instructions += self._issued
            self._issued = 0
        if self._ops:
            core.ops_executed += self._ops
            self._ops = 0
        if self._resident_cycles:
            core.warp_resident_cycles += self._resident_cycles
            self._resident_cycles = 0.0

    @property
    def done(self) -> bool:
        """Whether every warp has retired (no pending events remain)."""
        return not self.heap

    def next_event_cycle(self) -> float:
        """Ready cycle of the earliest pending event (``inf`` when done)."""
        return self.heap[0][0] if self.heap else float("inf")

    # ------------------------------------------------------------------

    def run_until(self, limit: float) -> None:
        """Process every event with a ready cycle strictly below ``limit``.

        Pass ``float("inf")`` to drain the simulation; the sharded
        backend passes successive epoch boundaries.  Events pushed at or
        past the limit stay queued for the next call.
        """
        heap = self.heap
        heappush, heappop = heapq.heappush, heapq.heappop
        sms = self.sms
        lrr = self.lrr
        alu_latency = self.config.alu_latency
        address_map = self.address_map
        window = self.bus.window
        advance = self._advance
        instructions = self._instructions
        issued = self._issued
        ops = self._ops

        while heap and heap[0][0] < limit:
            entry = heappop(heap)
            ready = entry[0]
            state = entry[2]
            if advance is not None and ready > self._last_advance:
                # One boundary check per distinct cycle: same-cycle event
                # bursts share it.  Snapshots must see the counters of
                # every event processed so far, so flush first.
                self._instructions, self._issued, self._ops = (
                    instructions, issued, ops,
                )
                self._flush_core()
                instructions = issued = ops = 0
                advance(ready)
                self._last_advance = ready
            sm = sms[state.sm_index]
            kind, op, a, b = state.program[state.op_index]
            if lrr:
                # Loose round-robin: a warp that just issued falls behind
                # its same-cycle peers next time.
                state.age = self.age
                self.age += 1
            if kind == OP_COMPUTE:
                # a = issue cycles, b = instruction count
                if a == 0:  # fully masked (shouldn't normally happen)
                    completion = ready
                else:
                    fetch = sm.fetch_instructions(state.op_index)
                    grant = sm.reserve_issue(ready + fetch, a)
                    completion = grant + a + alu_latency
                instructions += b
                issued += a
                ops += 1
            elif kind == OP_TRACE:
                # a = active lanes, b = instruction count
                if state.job is None:
                    # First attempt (or woken after parking): claim a slot.
                    if not state.trace_issued:
                        if a == 0:
                            # Fully masked op: completes in zero time.
                            state.op_index += 1
                            heappush(heap, (ready, state.age, state))
                            continue
                        ready = sm.reserve_issue(ready, 1) + 1
                        state.trace_issued = True
                        state.rt_unit = sm.pick_rt_unit()
                        instructions += b
                        issued += 1
                        ops += 1
                    unit = state.rt_unit
                    if not unit.try_acquire_slot():
                        state.parked_cycle = ready
                        unit.waiters.append(state)  # parked; woken on release
                        continue
                    job = sm.make_trace_job(unit, op, address_map)
                    if not job.done:
                        state.job = job
                        heappush(heap, (ready, state.age, state))
                        continue
                    # Degenerate zero-step traversal: free the slot now.
                    unit.release_slot()
                    if unit.waiters:
                        woken = unit.waiters.popleft()
                        window(
                            unit.component, "rt_wait",
                            woken.parked_cycle, ready,
                        )
                        heappush(heap, (ready, woken.age, woken))
                    completion = ready
                    state.trace_issued = False
                    state.rt_unit = None
                else:
                    completion = state.job.advance(ready)
                    unit = state.job.unit
                    if not state.job.done:
                        heappush(heap, (completion, state.age, state))
                        continue
                    state.job = None
                    state.trace_issued = False
                    state.rt_unit = None
                    unit.release_slot()
                    # Wake one parked warp; it re-attempts acquisition.
                    if unit.waiters:
                        woken = unit.waiters.popleft()
                        window(
                            unit.component, "rt_wait",
                            woken.parked_cycle, completion,
                        )
                        heappush(heap, (completion, woken.age, woken))
            else:  # OP_STORE: a = instruction count, b = issue slots
                completion = sm.execute_store(op, ready)
                instructions += a
                issued += b
                ops += 1
            state.op_index += 1
            state.ready_cycle = completion
            if state.op_index >= len(state.program):
                if completion > self.max_completion:
                    self.max_completion = completion
                self._resident_cycles += completion - state.activated_cycle
                # The warp's resources free up: admit the next queued warp.
                self._activate(state.sm_index, completion)
            else:
                heappush(heap, (completion, state.age, state))

        self._instructions = instructions
        self._issued = issued
        self._ops = ops

    # ------------------------------------------------------------------

    def finish(self) -> SimulationStats:
        """Close the run and collect its statistics.

        Call exactly once, after :attr:`done` is true.
        """
        config = self.config
        self._flush_core()
        core = self.core
        self.memory.finalize()
        self.bus.finalize(self.max_completion)

        stats = SimulationStats(config_name=config.name)
        stats.cycles = self.max_completion
        stats.instructions = core.instructions
        stats.issued_warp_instructions = core.issued_warp_instructions
        stats.warp_resident_cycles = core.warp_resident_cycles
        stats.warp_size = config.warp_size
        stats.sm_count = config.num_sms
        stats.resident_limit = config.resident_warps_per_sm
        stats.warps = len(self.warps)
        stats.pixels_traced = sum(t.live_pixels for t in self.warps)
        stats.pixels_filtered = sum(t.filtered_pixels for t in self.warps)

        for sm in self.sms:
            stats.l1d_accesses += sm.l1d.stats.accesses
            stats.l1d_misses += sm.l1d.stats.misses
        l2 = self.memory.l2_stats()
        stats.l2_accesses = l2.accesses
        stats.l2_misses = l2.misses

        rt_total = RTStats.merged(
            unit.stats for sm in self.sms for unit in sm.rt_units
        )
        stats.rt_traversal_steps = rt_total.traversal_steps
        stats.rt_active_ray_steps = rt_total.active_ray_steps

        dram = self.memory.dram_stats()
        stats.dram_requests = dram.requests
        stats.dram_data_cycles = dram.data_cycles
        stats.dram_pending_cycles = dram.pending_cycles
        stats.dram_channels = config.num_mem_partitions

        stats.work_units = (
            core.ops_executed
            + sum(sm.mem_accesses for sm in self.sms)
            + rt_total.traversal_steps
        )
        stats.sim_backend = "serial"
        stats.host_seconds = time.perf_counter() - self._start_time
        stats.telemetry = self.bus.record()
        return stats


class CycleSimulator:
    """Simulates one kernel launch on one GPU configuration."""

    def __init__(self, config: GPUConfig, address_map: AddressMap) -> None:
        self.config = config
        self.address_map = address_map

    def run(self, warps: list[WarpTask]) -> SimulationStats:
        """Execute the warp tasks; returns the run's statistics.

        A fresh memory subsystem and SM array are created per run, so
        repeated calls are independent — this is what makes Zatel's
        per-group instances cold-share nothing (the L2 bias of §III-G).
        A fresh telemetry bus is created per run too: components register
        their stat groups at construction and the event loop drives the
        interval-snapshot clock.
        """
        engine = SimEngine(self.config, self.address_map, warps)
        engine.run_until(float("inf"))
        return engine.finish()

    def run_reference(self, warps: list[WarpTask]) -> SimulationStats:
        """The original straight-line event loop, kept as the oracle.

        Byte-identical to :meth:`run` (asserted by the fast-path A/B
        tests); the simulator benchmark times it as "exact serial" so
        fast-path gains stay measured against a fixed implementation.
        """
        start_time = time.perf_counter()
        config = self.config
        bus = TelemetryBus(
            interval=config.telemetry_interval,
            timeline=config.timeline_trace,
        )
        memory = MemorySubsystem(config, bus)
        sms = [SM(i, config, memory, bus) for i in range(config.num_sms)]
        core = bus.register("core", CoreStats())

        # Distribute warps round-robin across SMs (block scheduler).
        queues: list[deque[WarpTask]] = [deque() for _ in sms]
        for i, task in enumerate(warps):
            queues[i % len(sms)].append(task)

        heap: list[tuple[float, int, int, WarpState]] = []
        age = 0
        push_seq = 0
        lrr = config.warp_scheduler == "lrr"

        def push(state: WarpState, cycle: float) -> None:
            nonlocal push_seq
            heapq.heappush(heap, (cycle, state.age, push_seq, state))
            push_seq += 1

        def activate(sm_index: int, cycle: float) -> None:
            nonlocal age
            if queues[sm_index]:
                task = queues[sm_index].popleft()
                state = WarpState(
                    task=task, sm_index=sm_index, ready_cycle=cycle, age=age
                )
                state.activated_cycle = cycle
                push(state, cycle)
                age += 1

        resident = config.resident_warps_per_sm
        for sm_index in range(len(sms)):
            for _ in range(resident):
                activate(sm_index, 0.0)

        stats = SimulationStats(config_name=config.name)
        max_completion = 0.0

        while heap:
            ready, _, _, state = heapq.heappop(heap)
            # Heap pops are nondecreasing in cycle, so boundary crossings
            # checked here capture all work completed before the boundary.
            bus.advance(ready)
            sm = sms[state.sm_index]
            op = state.next_op()
            if lrr:
                # Loose round-robin: a warp that just issued falls behind
                # its same-cycle peers next time.
                state.age = age
                age += 1
            if isinstance(op, TraceOp):
                if state.job is None:
                    # First attempt (or woken after parking): claim a slot.
                    if not state.trace_issued:
                        if op.active_lanes() == 0:
                            # Fully masked op: completes in zero time.
                            state.op_index += 1
                            push(state, ready)
                            continue
                        ready = sm.reserve_issue(ready, 1) + 1
                        state.trace_issued = True
                        state.rt_unit = sm.pick_rt_unit()
                        core.instructions += op.instruction_count()
                        core.issued_warp_instructions += 1
                        core.ops_executed += 1
                    unit = state.rt_unit
                    if not unit.try_acquire_slot():
                        state.parked_cycle = ready
                        unit.waiters.append(state)  # parked; woken on release
                        continue
                    job = sm.make_trace_job(unit, op, self.address_map)
                    if not job.done:
                        state.job = job
                        push(state, ready)
                        continue
                    # Degenerate zero-step traversal: free the slot now.
                    unit.release_slot()
                    if unit.waiters:
                        woken = unit.waiters.popleft()
                        bus.window(
                            unit.component, "rt_wait",
                            woken.parked_cycle, ready,
                        )
                        push(woken, ready)
                    completion = ready
                    state.trace_issued = False
                    state.rt_unit = None
                else:
                    completion = state.job.advance(ready)
                    unit = state.job.unit
                    if not state.job.done:
                        push(state, completion)
                        continue
                    state.job = None
                    state.trace_issued = False
                    state.rt_unit = None
                    unit.release_slot()
                    # Wake one parked warp; it re-attempts acquisition.
                    if unit.waiters:
                        woken = unit.waiters.popleft()
                        bus.window(
                            unit.component, "rt_wait",
                            woken.parked_cycle, completion,
                        )
                        push(woken, completion)
            elif isinstance(op, ComputeOp):
                completion = sm.execute_compute(op, ready, op_slot=state.op_index)
                core.instructions += op.instruction_count()
                core.issued_warp_instructions += op.issue_cycles()
                core.ops_executed += 1
            elif isinstance(op, StoreOp):
                completion = sm.execute_store(op, ready)
                core.instructions += op.instruction_count()
                core.issued_warp_instructions += 1 if op.active_lanes() else 0
                core.ops_executed += 1
            else:  # pragma: no cover - op types are closed
                raise TypeError(f"unknown warp op {type(op).__name__}")
            state.op_index += 1
            state.ready_cycle = completion
            if state.done():
                if completion > max_completion:
                    max_completion = completion
                core.warp_resident_cycles += completion - state.activated_cycle
                # The warp's resources free up: admit the next queued warp.
                activate(state.sm_index, completion)
            else:
                push(state, completion)

        memory.finalize()
        bus.finalize(max_completion)
        stats.cycles = max_completion
        stats.instructions = core.instructions
        stats.issued_warp_instructions = core.issued_warp_instructions
        stats.warp_resident_cycles = core.warp_resident_cycles
        stats.warp_size = config.warp_size
        stats.sm_count = config.num_sms
        stats.resident_limit = config.resident_warps_per_sm
        stats.warps = len(warps)
        stats.pixels_traced = sum(t.live_pixels for t in warps)
        stats.pixels_filtered = sum(t.filtered_pixels for t in warps)

        for sm in sms:
            stats.l1d_accesses += sm.l1d.stats.accesses
            stats.l1d_misses += sm.l1d.stats.misses
        l2 = memory.l2_stats()
        stats.l2_accesses = l2.accesses
        stats.l2_misses = l2.misses

        rt_total = RTStats.merged(
            unit.stats for sm in sms for unit in sm.rt_units
        )
        stats.rt_traversal_steps = rt_total.traversal_steps
        stats.rt_active_ray_steps = rt_total.active_ray_steps

        dram = memory.dram_stats()
        stats.dram_requests = dram.requests
        stats.dram_data_cycles = dram.data_cycles
        stats.dram_pending_cycles = dram.pending_cycles
        stats.dram_channels = config.num_mem_partitions

        stats.work_units = (
            core.ops_executed
            + sum(sm.mem_accesses for sm in sms)
            + rt_total.traversal_steps
        )
        stats.sim_backend = "serial"
        stats.host_seconds = time.perf_counter() - start_time
        stats.telemetry = bus.record()
        return stats


def make_simulator(config: GPUConfig, address_map: AddressMap):
    """The simulator :attr:`~repro.gpu.config.GPUConfig.sim_backend` selects.

    ``"serial"`` (the default) returns the exact :class:`CycleSimulator`;
    ``"sharded"`` returns a :class:`~repro.gpu.parallel.
    ShardedCycleSimulator`, which trades bounded timing drift for
    epoch-synchronized parallel shards.  Both expose ``run(warps)``.
    """
    if config.sim_backend == "sharded":
        from .parallel import ShardedCycleSimulator

        return ShardedCycleSimulator(config, address_map)
    return CycleSimulator(config, address_map)
