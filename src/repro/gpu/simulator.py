"""The cycle-level GPU timing simulator (Vulkan-Sim stand-in).

Event-driven rather than tick-by-tick: a heap orders warps by their
next-ready cycle, each pop executes one warp op inline against resource
timelines (issue ports, RT-unit slots, L2 banks, DRAM channels), and the
warp is re-queued at its completion cycle.  Oldest-ready-first pop order
approximates Table II's greedy-then-oldest scheduler.  See DESIGN.md for
the fidelity discussion.

Usage::

    warps = compile_kernel(frame, pixels, scene.addresses, selected)
    stats = CycleSimulator(MOBILE_SOC, scene.addresses).run(warps)
"""

from __future__ import annotations

import heapq
import time
from collections import deque

from ..scene.scene import AddressMap
from .config import GPUConfig
from .memory import MemorySubsystem
from .rt_unit import RTStats
from .sm import SM
from .stats import SimulationStats
from .telemetry import Counter, CycleCounter, StatGroup, TelemetryBus
from .warp import ComputeOp, StoreOp, TraceOp, WarpState, WarpTask

__all__ = ["CycleSimulator", "CoreStats"]


class CoreStats(StatGroup):
    """Whole-GPU event-loop counters (the bus's ``core`` component)."""

    instructions = Counter("thread-instructions executed")
    issued_warp_instructions = Counter("warp-instruction issue slots used")
    ops_executed = Counter("warp ops completed (work proxy)")
    warp_resident_cycles = CycleCounter(
        "integral of resident warps over time"
    )


class CycleSimulator:
    """Simulates one kernel launch on one GPU configuration."""

    def __init__(self, config: GPUConfig, address_map: AddressMap) -> None:
        self.config = config
        self.address_map = address_map

    def run(self, warps: list[WarpTask]) -> SimulationStats:
        """Execute the warp tasks; returns the run's statistics.

        A fresh memory subsystem and SM array are created per run, so
        repeated calls are independent — this is what makes Zatel's
        per-group instances cold-share nothing (the L2 bias of §III-G).
        A fresh telemetry bus is created per run too: components register
        their stat groups at construction and the event loop drives the
        interval-snapshot clock.
        """
        start_time = time.perf_counter()
        config = self.config
        bus = TelemetryBus(
            interval=config.telemetry_interval,
            timeline=config.timeline_trace,
        )
        memory = MemorySubsystem(config, bus)
        sms = [SM(i, config, memory, bus) for i in range(config.num_sms)]
        core = bus.register("core", CoreStats())

        # Distribute warps round-robin across SMs (block scheduler).
        queues: list[deque[WarpTask]] = [deque() for _ in sms]
        for i, task in enumerate(warps):
            queues[i % len(sms)].append(task)

        # Heap entries: (ready cycle, scheduler priority, unique seq, warp).
        # Priority implements the warp scheduler among same-cycle warps:
        # GTO uses the (static) age so older warps win; LRR bumps a warp's
        # priority past its peers every time it issues.
        heap: list[tuple[float, int, int, WarpState]] = []
        age = 0
        push_seq = 0
        lrr = config.warp_scheduler == "lrr"

        def push(state: WarpState, cycle: float) -> None:
            nonlocal push_seq
            heapq.heappush(heap, (cycle, state.age, push_seq, state))
            push_seq += 1

        def activate(sm_index: int, cycle: float) -> None:
            nonlocal age
            if queues[sm_index]:
                task = queues[sm_index].popleft()
                state = WarpState(
                    task=task, sm_index=sm_index, ready_cycle=cycle, age=age
                )
                state.activated_cycle = cycle
                push(state, cycle)
                age += 1

        resident = config.resident_warps_per_sm
        for sm_index in range(len(sms)):
            for _ in range(resident):
                activate(sm_index, 0.0)

        stats = SimulationStats(config_name=config.name)
        max_completion = 0.0

        while heap:
            ready, _, _, state = heapq.heappop(heap)
            # Heap pops are nondecreasing in cycle, so boundary crossings
            # checked here capture all work completed before the boundary.
            bus.advance(ready)
            sm = sms[state.sm_index]
            op = state.next_op()
            if lrr:
                # Loose round-robin: a warp that just issued falls behind
                # its same-cycle peers next time.
                state.age = age
                age += 1
            if isinstance(op, TraceOp):
                if state.job is None:
                    # First attempt (or woken after parking): claim a slot.
                    if not state.trace_issued:
                        if op.active_lanes() == 0:
                            # Fully masked op: completes in zero time.
                            state.op_index += 1
                            push(state, ready)
                            continue
                        ready = sm.reserve_issue(ready, 1) + 1
                        state.trace_issued = True
                        state.rt_unit = sm.pick_rt_unit()
                        core.instructions += op.instruction_count()
                        core.issued_warp_instructions += 1
                        core.ops_executed += 1
                    unit = state.rt_unit
                    if not unit.try_acquire_slot():
                        state.parked_cycle = ready
                        unit.waiters.append(state)  # parked; woken on release
                        continue
                    job = sm.make_trace_job(unit, op, self.address_map)
                    if not job.done:
                        state.job = job
                        push(state, ready)
                        continue
                    # Degenerate zero-step traversal: free the slot now.
                    unit.release_slot()
                    if unit.waiters:
                        woken = unit.waiters.pop(0)
                        bus.window(
                            unit.component, "rt_wait",
                            woken.parked_cycle, ready,
                        )
                        push(woken, ready)
                    completion = ready
                    state.trace_issued = False
                    state.rt_unit = None
                else:
                    completion = state.job.advance(ready)
                    unit = state.job.unit
                    if not state.job.done:
                        push(state, completion)
                        continue
                    state.job = None
                    state.trace_issued = False
                    state.rt_unit = None
                    unit.release_slot()
                    # Wake one parked warp; it re-attempts acquisition.
                    if unit.waiters:
                        woken = unit.waiters.pop(0)
                        bus.window(
                            unit.component, "rt_wait",
                            woken.parked_cycle, completion,
                        )
                        push(woken, completion)
            elif isinstance(op, ComputeOp):
                completion = sm.execute_compute(op, ready, op_slot=state.op_index)
                core.instructions += op.instruction_count()
                core.issued_warp_instructions += op.issue_cycles()
                core.ops_executed += 1
            elif isinstance(op, StoreOp):
                completion = sm.execute_store(op, ready)
                core.instructions += op.instruction_count()
                core.issued_warp_instructions += 1 if op.active_lanes() else 0
                core.ops_executed += 1
            else:  # pragma: no cover - op types are closed
                raise TypeError(f"unknown warp op {type(op).__name__}")
            state.op_index += 1
            state.ready_cycle = completion
            if state.done():
                if completion > max_completion:
                    max_completion = completion
                core.warp_resident_cycles += completion - state.activated_cycle
                # The warp's resources free up: admit the next queued warp.
                activate(state.sm_index, completion)
            else:
                push(state, completion)

        memory.finalize()
        bus.finalize(max_completion)
        stats.cycles = max_completion
        stats.instructions = core.instructions
        stats.issued_warp_instructions = core.issued_warp_instructions
        stats.warp_resident_cycles = core.warp_resident_cycles
        stats.warp_size = config.warp_size
        stats.sm_count = config.num_sms
        stats.resident_limit = config.resident_warps_per_sm
        stats.warps = len(warps)
        stats.pixels_traced = sum(t.live_pixels for t in warps)
        stats.pixels_filtered = sum(t.filtered_pixels for t in warps)

        for sm in sms:
            stats.l1d_accesses += sm.l1d.stats.accesses
            stats.l1d_misses += sm.l1d.stats.misses
        l2 = memory.l2_stats()
        stats.l2_accesses = l2.accesses
        stats.l2_misses = l2.misses

        rt_total = RTStats.merged(
            unit.stats for sm in sms for unit in sm.rt_units
        )
        stats.rt_traversal_steps = rt_total.traversal_steps
        stats.rt_active_ray_steps = rt_total.active_ray_steps

        dram = memory.dram_stats()
        stats.dram_requests = dram.requests
        stats.dram_data_cycles = dram.data_cycles
        stats.dram_pending_cycles = dram.pending_cycles
        stats.dram_channels = config.num_mem_partitions

        stats.work_units = (
            core.ops_executed
            + sum(sm.mem_accesses for sm in sms)
            + rt_total.traversal_steps
        )
        stats.host_seconds = time.perf_counter() - start_time
        stats.telemetry = bus.record()
        return stats
