"""Warp-level operation stream and warp execution state.

The GPU executes *warps* of 32 threads in lock-step.  A warp's program is a
list of warp-level ops compiled from its threads' pixel traces
(:mod:`repro.gpu.frontend`):

* :class:`ComputeOp` — shader ALU work; each lane carries its own dynamic
  instruction count (0 = lane masked off), the warp occupies the issue port
  for the *maximum* lane count (SIMT lock-step), and the instruction
  statistic adds the *sum* (per-thread instruction counting).
* :class:`TraceOp` — a ``traceRayEXT`` hand-off to the SM's RT unit; each
  lane carries the BVH node / triangle index sequences its ray will touch.
* :class:`StoreOp` — the framebuffer write-back at shader exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComputeOp", "TraceOp", "StoreOp", "WarpOp", "WarpTask", "WarpState"]


@dataclass
class ComputeOp:
    """Warp-wide ALU work; ``per_thread_instructions[i] == 0`` = masked lane."""

    per_thread_instructions: tuple[int, ...]

    def issue_cycles(self) -> int:
        """Cycles the warp occupies the issue port (lock-step maximum)."""
        return max(self.per_thread_instructions, default=0)

    def instruction_count(self) -> int:
        """Dynamic thread-instructions executed (per-thread sum)."""
        return sum(self.per_thread_instructions)

    def active_lanes(self) -> int:
        return sum(1 for n in self.per_thread_instructions if n > 0)


@dataclass
class TraceOp:
    """A warp's ray-traversal op; ``None`` lanes have no ray this bounce."""

    per_thread_nodes: tuple[list[int] | None, ...]
    per_thread_tris: tuple[list[int] | None, ...]

    def active_lanes(self) -> int:
        return sum(1 for n in self.per_thread_nodes if n is not None)

    def max_node_steps(self) -> int:
        """Traversal steps the RT unit runs (lock-step over the longest ray)."""
        return max(
            (len(n) for n in self.per_thread_nodes if n is not None), default=0
        )

    def max_tri_steps(self) -> int:
        return max(
            (len(t) for t in self.per_thread_tris if t is not None), default=0
        )

    def instruction_count(self) -> int:
        """One ``traceRayEXT`` instruction per lane with a ray."""
        return self.active_lanes()


@dataclass
class StoreOp:
    """Framebuffer write-back; ``None`` lanes store nothing."""

    per_thread_addresses: tuple[int | None, ...]

    def active_lanes(self) -> int:
        return sum(1 for a in self.per_thread_addresses if a is not None)

    def instruction_count(self) -> int:
        return self.active_lanes()


WarpOp = ComputeOp | TraceOp | StoreOp


@dataclass
class WarpTask:
    """A compiled warp: its pixels and the op stream they execute."""

    warp_id: int
    pixels: tuple[tuple[int, int], ...]
    ops: list[WarpOp] = field(default_factory=list)
    #: Lanes that trace a ray vs. lanes filtered out by ``filter_shader``.
    live_pixels: int = 0
    filtered_pixels: int = 0

    def instruction_count(self) -> int:
        """Total dynamic thread-instructions in the warp's program."""
        return sum(op.instruction_count() for op in self.ops)


@dataclass
class WarpState:
    """Runtime state of a warp inside the simulator."""

    task: WarpTask
    sm_index: int
    #: Position in the op stream; the warp completes when this reaches
    #: ``len(task.ops)``.
    op_index: int = 0
    #: Cycle at which the warp's next op may issue.
    ready_cycle: float = 0.0
    #: Activation order, used as the age key for greedy-then-oldest issue.
    age: int = 0
    #: In-flight RT traversal (set while the current op is a TraceOp being
    #: stepped through the RT unit).
    job: object | None = None
    #: Whether the current TraceOp already paid its issue cycle and was
    #: counted (set on the first slot-acquisition attempt; survives parking
    #: in an RT unit's wait queue).
    trace_issued: bool = False
    #: RT unit chosen for the current TraceOp (pinned across parking).
    rt_unit: object | None = None
    #: Cycle this warp became resident on its SM (occupancy accounting).
    activated_cycle: float = 0.0
    #: Cycle this warp parked in an RT unit's wait queue (telemetry:
    #: the park-to-wake span becomes an ``rt_wait`` timeline window).
    parked_cycle: float = 0.0
    #: Precomputed per-op dispatch table (kind code + derived scalars),
    #: attached by the fast event loop so the per-pop path neither walks
    #: an ``isinstance`` chain nor recomputes lane reductions.
    program: tuple = ()

    def done(self) -> bool:
        return self.op_index >= len(self.task.ops)

    def next_op(self) -> WarpOp:
        return self.task.ops[self.op_index]
