"""INI config files for GPU configurations.

Cycle-level simulators are conventionally driven by config files
(GPGPU-Sim/Accel-Sim style) rather than code edits; this module gives
:class:`~repro.gpu.config.GPUConfig` the same surface::

    [gpu]
    name = MobileSoC
    num_sms = 8
    ...
    [l1d]
    size_kb = 64
    ...

``configs/`` at the repository root ships the two Table II presets in
this format; ``python -m repro simulate PARK --gpu configs/mobile_soc.ini``
loads one directly.
"""

from __future__ import annotations

import configparser
import dataclasses
from pathlib import Path

from .config import CacheConfig, GPUConfig

__all__ = ["save_config", "load_config", "resolve_gpu"]

#: GPUConfig scalar fields serialized under ``[gpu]`` (in file order).
_GPU_FIELDS = (
    "name",
    "num_sms",
    "num_mem_partitions",
    "registers_per_sm",
    "max_warps_per_sm",
    "warp_size",
    "registers_per_thread",
    "rt_units_per_sm",
    "rt_max_warps",
    "rt_mshr_size",
    "rt_step_cycles",
    "rt_fetch_pipeline",
    "rt_prefetch_depth",
    "interconnect_latency",
    "l2_service_cycles",
    "dram_latency",
    "dram_bytes_per_cycle_per_channel",
    "issue_width",
    "alu_latency",
    "warp_scheduler",
    "telemetry_interval",
    "timeline_trace",
    "sim_backend",
    "sim_shards",
    "sim_epoch_cycles",
)

#: ``[gpu]`` keys parsed as strings / booleans (everything else is int).
_STR_FIELDS = ("name", "warp_scheduler", "sim_backend")
_BOOL_FIELDS = ("timeline_trace",)

#: Cache-valued fields, each serialized as its own section.
_CACHE_FIELDS = ("l1d", "l2_slice", "icache")

#: Keys every cache section must carry.
_CACHE_KEYS = ("size_bytes", "line_bytes", "associativity", "latency")

_KNOWN_SECTIONS = ("gpu",) + _CACHE_FIELDS


def _parse_int(path: Path, section: str, key: str, raw: str) -> int:
    """``int(raw)`` with a one-line actionable error naming the file,
    section and key — a typo in an INI must not surface as a bare
    ``invalid literal for int()``."""
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{path}: [{section}] key {key!r} must be an integer, "
            f"got {raw!r}"
        ) from None


def _parse_bool(path: Path, section: str, key: str, raw: str) -> bool:
    """INI-style boolean parse (``bool("False")`` would be True, and the
    stage-graph fingerprint distinguishes bool from int tokens, so the
    value must round-trip as a real bool)."""
    lowered = raw.strip().lower()
    if lowered in ("true", "yes", "on", "1"):
        return True
    if lowered in ("false", "no", "off", "0"):
        return False
    raise ValueError(
        f"{path}: [{section}] key {key!r} must be a boolean "
        f"(true/false), got {raw!r}"
    )


def save_config(config: GPUConfig, path: str | Path) -> Path:
    """Write ``config`` as an INI file; returns the path."""
    parser = configparser.ConfigParser()
    parser["gpu"] = {
        field: str(getattr(config, field)) for field in _GPU_FIELDS
    }
    for field in _CACHE_FIELDS:
        cache: CacheConfig = getattr(config, field)
        parser[field] = {
            "size_bytes": str(cache.size_bytes),
            "line_bytes": str(cache.line_bytes),
            "associativity": str(cache.associativity),
            "latency": str(cache.latency),
        }
    path = Path(path)
    with path.open("w") as f:
        f.write("; GPU configuration for the Zatel reproduction simulator\n")
        f.write("; (see src/repro/gpu/config.py for field documentation)\n")
        parser.write(f)
    return path


def load_config(path: str | Path) -> GPUConfig:
    """Parse an INI file back into a :class:`GPUConfig`.

    Unknown sections and keys are rejected (typos should fail loudly, not
    silently use a default); missing keys fall back to the dataclass
    defaults.  Every parse failure is a one-line, actionable
    ``ValueError`` naming the file, section, and key.

    Raises:
        ValueError: on malformed INI syntax, a missing ``[gpu]`` section,
            unknown sections or keys, non-numeric values, missing cache
            keys, or values the :class:`GPUConfig` validators refuse.
        FileNotFoundError: if ``path`` does not exist.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    parser = configparser.ConfigParser()
    try:
        parser.read(path)
    except configparser.Error as error:
        raise ValueError(
            f"{path}: malformed INI: {error.message.splitlines()[0]}"
        ) from None
    if "gpu" not in parser:
        raise ValueError(f"{path}: missing [gpu] section")
    for section in parser.sections():
        if section not in _KNOWN_SECTIONS:
            known = ", ".join(f"[{s}]" for s in _KNOWN_SECTIONS)
            raise ValueError(
                f"{path}: unknown section [{section}]; expected one of "
                f"{known}"
            )

    kwargs: dict = {}
    for key, raw in parser["gpu"].items():
        if key not in _GPU_FIELDS:
            raise ValueError(f"{path}: unknown [gpu] key {key!r}")
        if key in _STR_FIELDS:
            kwargs[key] = raw
        elif key in _BOOL_FIELDS:
            kwargs[key] = _parse_bool(path, "gpu", key, raw)
        else:
            kwargs[key] = _parse_int(path, "gpu", key, raw)

    for section in _CACHE_FIELDS:
        if section not in parser:
            continue
        values = parser[section]
        extra = set(values) - set(_CACHE_KEYS)
        if extra:
            raise ValueError(f"{path}: unknown [{section}] keys {sorted(extra)}")
        missing = [key for key in _CACHE_KEYS if key not in values]
        if missing:
            raise ValueError(
                f"{path}: [{section}] missing required key(s) "
                f"{', '.join(repr(k) for k in missing)}"
            )
        kwargs[section] = CacheConfig(
            **{
                key: _parse_int(path, section, key, values[key])
                for key in _CACHE_KEYS
            }
        )
    missing = [
        field.name
        for field in dataclasses.fields(GPUConfig)
        if field.default is dataclasses.MISSING
        and field.default_factory is dataclasses.MISSING
        and field.name not in kwargs
    ]
    if missing:
        raise ValueError(
            f"{path}: [gpu] missing required key(s) "
            f"{', '.join(repr(k) for k in missing)}"
        )
    return GPUConfig(**kwargs)


def resolve_gpu(name_or_path: str) -> GPUConfig:
    """A preset short name (``mobile``/``rtx2060``) or an INI file path."""
    from .config import preset

    candidate = Path(name_or_path)
    if candidate.suffix == ".ini" or candidate.exists():
        return load_config(candidate)
    return preset(name_or_path)
