"""Unified telemetry bus: typed instruments, interval stats, timelines.

Every GPU component (caches, RT units, DRAM channels, the event loop
itself) emits statistics through one substrate instead of bespoke stat
classes with hand-written merge code:

* **Instruments** are class-level declarations on a :class:`StatGroup`
  subclass — :class:`Counter`, :class:`CycleCounter`, :class:`MaxGauge`,
  :class:`Histogram`, plus the derived :class:`RatioGauge` — each
  carrying its merge semantics (sum / max / element-wise sum /
  weighted mean).  :meth:`StatGroup.merge` is then *generic*: it folds
  another instance in according to the declared semantics, replacing the
  per-class ``merge`` methods the simulator used to hand-maintain.

* The **metric registry** (:data:`METRIC_SPECS`) is the single table of
  derived Table-I/extended metrics: canonical order, description, and
  the extrapolation/combination kind (absolute / rate / throughput) that
  ``gpu.stats``, ``core.combine``, ``core.extrapolate`` and
  ``harness.metrics`` previously each encoded separately.

* The **telemetry bus** (:class:`TelemetryBus`) registers each
  component's stat group under a hierarchical name (``sm0.l1d``,
  ``dram.2``), captures cumulative **interval snapshots** every N cycles
  (N from ``GPUConfig.telemetry_interval``), and coalesces contention
  **timeline windows** (issue stalls, RT-unit occupancy, L2-bank and
  DRAM-channel queueing) into :class:`TimelineEvent`\\ s.  The per-run
  result is a picklable :class:`TelemetryRecord` attached to
  ``SimulationStats.telemetry`` and exportable as a ``.zperf``
  JSON-lines file (:func:`export_zperf` / :func:`load_zperf`).

Telemetry is off by default (interval 0, no timeline) and is designed so
that enabling it never changes any metric: instruments accumulate the
exact arithmetic the legacy stat classes performed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "KIND_ABSOLUTE",
    "KIND_RATE",
    "KIND_THROUGHPUT",
    "MetricSpec",
    "METRIC_SPECS",
    "METRIC_REGISTRY",
    "aggregate_metrics",
    "aggregate_variances",
    "Instrument",
    "Counter",
    "CycleCounter",
    "MaxGauge",
    "Histogram",
    "RatioGauge",
    "StatGroup",
    "SERVICE_LATENCY_EDGES",
    "FleetStats",
    "ServiceStats",
    "latency_bucket",
    "TimelineEvent",
    "IntervalSnapshot",
    "TelemetryRecord",
    "TelemetryBus",
    "NULL_BUS",
    "ZPERF_VERSION",
    "export_zperf",
    "load_zperf",
    "slice_events",
    "downsample_events",
]


# ----------------------------------------------------------------------
# metric registry (single source of the rate/absolute/throughput tables)
# ----------------------------------------------------------------------

#: Metric kinds: how a derived metric behaves under Zatel's
#: extrapolation (Section III-G) and cross-group combination (III-H).
KIND_ABSOLUTE = "absolute"  # scales with work simulated; extrapolates linearly
KIND_RATE = "rate"  # normalized; passes through, averages across groups
KIND_THROUGHPUT = "throughput"  # sums across concurrently-running groups


@dataclass(frozen=True)
class MetricSpec:
    """One derived metric's canonical identity.

    ``kind`` drives extrapolation and combination; ``point_error`` marks
    the [0, 1] metrics whose benchmark errors are reported in percentage
    points rather than relative percent (the harness convention).
    """

    name: str
    kind: str
    description: str
    extended: bool = False
    point_error: bool = False


#: The registry, in the paper's Table I order followed by the extended
#: (non-Table-I) metrics.  Everything downstream — ``METRICS``,
#: ``EXTENDED_METRICS``, ``METRIC_DESCRIPTIONS``, ``MetricKind`` and the
#: harness ``RATE_METRICS`` — derives from this one table.
METRIC_SPECS: tuple[MetricSpec, ...] = (
    MetricSpec("ipc", KIND_THROUGHPUT, "# of instructions executed per cycle"),
    MetricSpec(
        "cycles", KIND_ABSOLUTE, "# of cycles required to ray trace the scene"
    ),
    MetricSpec(
        "l1d_miss_rate",
        KIND_RATE,
        "Total cache miss rate over all L1D instances",
        point_error=True,
    ),
    MetricSpec(
        "l2_miss_rate",
        KIND_RATE,
        "Total cache miss rate over all L2 instances",
        point_error=True,
    ),
    MetricSpec(
        "rt_efficiency",
        KIND_RATE,
        "Average # of active rays per warp over all ray tracing "
        "accelerator units",
    ),
    MetricSpec(
        "dram_efficiency",
        KIND_RATE,
        "DRAM bandwidth utilization with pending requests waiting to be "
        "processed",
        point_error=True,
    ),
    MetricSpec(
        "bw_utilization",
        KIND_RATE,
        "DRAM bandwidth utilization without pending requests waiting to "
        "be processed",
        point_error=True,
    ),
    MetricSpec(
        "simd_efficiency",
        KIND_RATE,
        "Active thread-instructions per issued warp-instruction slot",
        extended=True,
    ),
    MetricSpec(
        "warp_occupancy",
        KIND_RATE,
        "Average resident-warp slots in use across the run",
        extended=True,
    ),
)

#: Name -> spec lookup.
METRIC_REGISTRY: dict[str, MetricSpec] = {s.name: s for s in METRIC_SPECS}


def aggregate_metrics(
    group_metrics: list[dict[str, float]],
    throughput_divisor: float = 1.0,
    mean_divisor: float | None = None,
) -> dict[str, float]:
    """Fold per-group metric dicts by each metric's declared semantics.

    ``THROUGHPUT`` metrics sum (divided by ``throughput_divisor`` — 1.0
    for a plain sum, the survivors' plane coverage for a degraded run);
    everything else averages over ``mean_divisor`` groups (default: the
    number of groups given).  Only metrics present in *every* group are
    aggregated, in registry order — tolerating callers that build
    Table-I-only dicts.

    Raises:
        ValueError: for an empty group list or a non-positive divisor.
    """
    if not group_metrics:
        raise ValueError("cannot aggregate zero metric groups")
    if mean_divisor is None:
        mean_divisor = float(len(group_metrics))
    if throughput_divisor <= 0.0 or mean_divisor <= 0.0:
        raise ValueError("aggregation divisors must be positive")
    combined: dict[str, float] = {}
    for spec in METRIC_SPECS:
        if not all(spec.name in metrics for metrics in group_metrics):
            continue
        total = sum(metrics[spec.name] for metrics in group_metrics)
        if spec.kind == KIND_THROUGHPUT:
            combined[spec.name] = (
                total if throughput_divisor == 1.0 else total / throughput_divisor
            )
        else:
            combined[spec.name] = total / mean_divisor
    return combined


def aggregate_variances(
    group_variances: list[dict[str, float]],
    throughput_divisor: float = 1.0,
    mean_divisor: float | None = None,
) -> dict[str, float]:
    """Variance of :func:`aggregate_metrics`' output under independence.

    Each group's dict holds the variance of *that group's* metric
    estimate (replicate-based, see :mod:`repro.core.samplers`).  Groups
    are simulated independently, so variances of a sum add; the linear
    scalings ``aggregate_metrics`` applies enter squared:

    * ``THROUGHPUT``: ``Var(Σ m_g / d) = Σ var_g / d²``;
    * everything else: ``Var(Σ m_g / K) = Σ var_g / K²``.

    The same divisor conventions apply (``throughput_divisor`` is the
    survivors' coverage for degraded runs, ``mean_divisor`` defaults to
    the group count), and only metrics present in every group aggregate,
    in registry order.

    Raises:
        ValueError: for an empty group list or a non-positive divisor.
    """
    if not group_variances:
        raise ValueError("cannot aggregate zero variance groups")
    if mean_divisor is None:
        mean_divisor = float(len(group_variances))
    if throughput_divisor <= 0.0 or mean_divisor <= 0.0:
        raise ValueError("aggregation divisors must be positive")
    combined: dict[str, float] = {}
    for spec in METRIC_SPECS:
        if not all(spec.name in variances for variances in group_variances):
            continue
        total = sum(variances[spec.name] for variances in group_variances)
        if spec.kind == KIND_THROUGHPUT:
            combined[spec.name] = total / throughput_divisor**2
        else:
            combined[spec.name] = total / mean_divisor**2
    return combined


# ----------------------------------------------------------------------
# instruments and stat groups
# ----------------------------------------------------------------------


class Instrument:
    """Class-level declaration of one raw statistic on a StatGroup.

    Subclasses fix the merge semantics; instances carry documentation
    and the initial value.  At runtime the statistic is a plain
    ``int``/``float`` instance attribute (components mutate it with
    ordinary ``+=``), so instrumented hot paths cost nothing beyond what
    the bespoke stat classes already paid.
    """

    semantics = "sum"

    def __init__(self, doc: str = "", default: Any = 0) -> None:
        self.doc = doc
        self.default = default
        self.name: str | None = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def initial(self) -> Any:
        return self.default

    def combine(self, mine: Any, theirs: Any) -> Any:
        return mine + theirs

    def scalars(self, name: str, value: Any) -> dict[str, float]:
        """Flatten this statistic into snapshot counters (name -> value)."""
        return {name: value}


class Counter(Instrument):
    """Monotonic integer count; merges by summation."""


class CycleCounter(Instrument):
    """Accumulated cycle (float) quantity; merges by summation."""

    def __init__(self, doc: str = "") -> None:
        super().__init__(doc, default=0.0)


class MaxGauge(Instrument):
    """High-water mark; merges by maximum."""

    semantics = "max"

    def __init__(self, doc: str = "", default: float = 0.0) -> None:
        super().__init__(doc, default=default)

    def combine(self, mine: Any, theirs: Any) -> Any:
        return mine if mine >= theirs else theirs


class Histogram(Instrument):
    """Fixed-bucket distribution; merges by element-wise summation.

    The instance value is a plain list of bucket counts, indexed by the
    component (``stats.hist[bucket] += 1``).  Histograms are end-of-run
    artifacts: they are excluded from interval snapshots to keep
    snapshot rows lean, but survive :meth:`StatGroup.merge` and the
    ``.zperf`` summary.
    """

    semantics = "elementwise-sum"

    def __init__(self, buckets: int, doc: str = "") -> None:
        if buckets <= 0:
            raise ValueError("histogram needs at least one bucket")
        super().__init__(doc, default=None)
        self.buckets = buckets

    def initial(self) -> list[int]:
        return [0] * self.buckets

    def combine(self, mine: list[int], theirs: list[int]) -> list[int]:
        return [a + b for a, b in zip(mine, theirs)]

    def scalars(self, name: str, value: list[int]) -> dict[str, float]:
        return {}


class RatioGauge:
    """Derived ratio of two sibling instruments (numerator / denominator).

    Reads as an ordinary attribute (``stats.miss_rate``); merging a
    group merges the underlying counters, so the merged ratio is the
    *weighted mean* of the inputs — the semantics hand-written merge
    code used to get right one class at a time.
    """

    semantics = "weighted-mean"

    def __init__(self, numerator: str, denominator: str, doc: str = "") -> None:
        self.numerator = numerator
        self.denominator = denominator
        self.doc = doc
        self.name: str | None = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        denominator = getattr(obj, self.denominator)
        if denominator == 0:
            return 0.0
        return getattr(obj, self.numerator) / denominator


class StatGroup:
    """Base class for a component's statistics.

    Subclasses declare instruments as class attributes::

        class CacheStats(StatGroup):
            accesses = Counter("lookups")
            misses = Counter("fills")
            miss_rate = RatioGauge("misses", "accesses")

    which yields a keyword constructor, a generic semantics-aware
    :meth:`merge`, equality, and snapshot flattening for free.
    """

    _instruments: dict[str, Instrument] = {}
    _ratios: dict[str, RatioGauge] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        instruments = dict(cls._instruments)
        ratios = dict(cls._ratios)
        for name, value in vars(cls).items():
            if isinstance(value, Instrument):
                instruments[name] = value
            elif isinstance(value, RatioGauge):
                ratios[name] = value
        cls._instruments = instruments
        cls._ratios = ratios

    def __init__(self, **values: Any) -> None:
        for name, instrument in self._instruments.items():
            setattr(self, name, instrument.initial())
        for name, value in values.items():
            if name not in self._instruments:
                raise TypeError(
                    f"{type(self).__name__} has no statistic {name!r}; "
                    f"known: {sorted(self._instruments)}"
                )
            setattr(self, name, value)

    def merge(self, other: "StatGroup") -> "StatGroup":
        """Fold ``other`` in, per-instrument declared semantics."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        for name, instrument in self._instruments.items():
            setattr(
                self,
                name,
                instrument.combine(getattr(self, name), getattr(other, name)),
            )
        return self

    @classmethod
    def merged(cls, groups: Iterable["StatGroup"]) -> "StatGroup":
        """A fresh instance aggregating every group in ``groups``."""
        total = cls()
        for group in groups:
            total.merge(group)
        return total

    def scalars(self) -> dict[str, float]:
        """Snapshot-able counters (histograms excluded) as a flat dict."""
        out: dict[str, float] = {}
        for name, instrument in self._instruments.items():
            out.update(instrument.scalars(name, getattr(self, name)))
        return out

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self._instruments
        )

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._instruments
        )
        return f"{type(self).__name__}({fields})"


# ----------------------------------------------------------------------
# service stat group (the prediction service's observability surface)
# ----------------------------------------------------------------------

#: Upper edges (seconds) of the service latency histograms; the last
#: bucket is open-ended.  Roughly logarithmic 1-2-5 steps from 1 ms to
#: 60 s — cached hits land in the first buckets, cold full predictions
#: in the last.
SERVICE_LATENCY_EDGES: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, float("inf"),
)


def latency_bucket(seconds: float) -> int:
    """Histogram bucket index for a latency observation."""
    for index, edge in enumerate(SERVICE_LATENCY_EDGES):
        if seconds < edge:
            return index
    return len(SERVICE_LATENCY_EDGES) - 1


class ServiceStats(StatGroup):
    """The prediction service's counters and latency histograms.

    Registered on the service's :class:`TelemetryBus` under the
    ``service`` component, so ``GET /metrics`` is a plain dump of
    telemetry-bus counters — the same substrate the simulator's
    components report through.  The latency histograms use the
    :data:`SERVICE_LATENCY_EDGES` buckets; record into them with
    :meth:`observe`.
    """

    requests = Counter("HTTP requests received, all endpoints")
    predicts = Counter("POST /predict requests that passed validation")
    cache_hits = Counter("predictions served from the result cache")
    cache_misses = Counter("predictions that had to consult the queue")
    coalesced = Counter("requests coalesced onto an in-flight identical job")
    rejected = Counter("requests rejected with 429 (queue at capacity)")
    invalid = Counter("requests rejected with 400 (validation failure)")
    completed = Counter("jobs that finished successfully")
    failed = Counter("jobs that raised an execution error")
    abandoned = Counter("hung jobs force-failed at the shutdown drain deadline")
    campaigns = Counter("POST /campaigns requests that passed validation")
    campaign_points = Counter("campaign points executed across all campaigns")
    seq_cache_lookups = Counter(
        "path-prediction cache lookups during sequence carry-over passes"
    )
    seq_cache_carried_hits = Counter(
        "validated hits served by cache entries carried from a previous frame"
    )
    dashboard_hits = Counter("GET /dashboard page loads")
    api_hits = Counter("dashboard JSON API requests (any /api/* route)")
    queue_peak = MaxGauge("high-water mark of queued + running jobs")
    cache_hit_rate = RatioGauge(
        "cache_hits", "predicts", "fraction of accepted predictions served from cache"
    )
    #: Per-stage latency histograms of the request lifecycle.
    queue_seconds = Histogram(
        len(SERVICE_LATENCY_EDGES), "time jobs spent queued before a worker"
    )
    trace_seconds = Histogram(
        len(SERVICE_LATENCY_EDGES), "functional frame-trace stage wall-clock"
    )
    predict_seconds = Histogram(
        len(SERVICE_LATENCY_EDGES), "Zatel pipeline stage wall-clock"
    )
    total_seconds = Histogram(
        len(SERVICE_LATENCY_EDGES), "end-to-end job wall-clock"
    )

    def observe(self, histogram: str, seconds: float) -> None:
        """Record ``seconds`` into the named latency histogram."""
        getattr(self, histogram)[latency_bucket(seconds)] += 1

    def histograms(self) -> dict[str, list[int]]:
        """The latency histograms (bucket counts) by name."""
        return {
            name: list(getattr(self, name))
            for name, instrument in self._instruments.items()
            if isinstance(instrument, Histogram)
        }


class FleetStats(StatGroup):
    """The distributed fleet's counters (coordinator-side).

    Registered on the service's :class:`TelemetryBus` under the
    ``fleet`` component, so ``GET /metrics`` exposes failover behaviour
    (re-dispatches, lost workers, open circuit breakers) through the
    same substrate as everything else.
    """

    workers_connected = Counter("workers that completed registration")
    workers_lost = Counter("workers declared dead (EOF, missed heartbeats)")
    workers_ejected = Counter("workers ejected by the circuit breaker")
    workers_drained = Counter("workers that said goodbye cleanly")
    heartbeats = Counter("heartbeat messages received")
    leases_dispatched = Counter("lease dispatch attempts sent to workers")
    leases_completed = Counter("leases that returned a validated result")
    leases_failed = Counter("leases permanently failed (dispatches exhausted)")
    leases_expired = Counter("assigned leases revoked past their deadline")
    redispatches = Counter("leases re-queued after a failure or expiry")
    results_corrupt = Counter("worker results rejected by validation")
    workers_peak = MaxGauge("high-water mark of simultaneously live workers")
    leases_inflight_peak = MaxGauge("high-water mark of assigned leases")


# ----------------------------------------------------------------------
# timeline events and interval snapshots
# ----------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class TimelineEvent:
    """One contention/occupancy window on a component's timeline."""

    start: float
    end: float
    component: str
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class IntervalSnapshot:
    """Cumulative counter values captured at one interval boundary.

    ``counters`` maps ``"component.statistic"`` to the value accumulated
    since cycle 0 — cumulative rather than per-interval so the final
    snapshot reconciles *exactly* with the run's end-of-run statistics;
    per-interval deltas are derived (:meth:`TelemetryRecord.deltas`).
    """

    index: int
    start: float
    end: float
    counters: dict[str, float]


@dataclass(frozen=True)
class TelemetryRecord:
    """A run's full telemetry: interval snapshots plus timeline events.

    Picklable and cheap (tuples of frozen dataclasses), so it rides
    along on ``SimulationStats.telemetry`` through the artifact store
    and across worker processes.
    """

    interval: int
    snapshots: tuple[IntervalSnapshot, ...]
    events: tuple[TimelineEvent, ...]

    def final_counters(self) -> dict[str, float]:
        """Cumulative counters at end of run (empty if no snapshots)."""
        return dict(self.snapshots[-1].counters) if self.snapshots else {}

    def deltas(self) -> list[dict[str, float]]:
        """Per-interval counter increments (one dict per snapshot)."""
        rows: list[dict[str, float]] = []
        previous: dict[str, float] = {}
        for snapshot in self.snapshots:
            rows.append(
                {
                    name: value - previous.get(name, 0)
                    for name, value in snapshot.counters.items()
                }
            )
            previous = snapshot.counters
        return rows


class _WindowTracker:
    """Coalesces overlapping/adjacent [start, end) windows per lane."""

    __slots__ = ("_start", "_end", "closed")

    def __init__(self) -> None:
        self._start = 0.0
        self._end = -1.0  # empty sentinel
        self.closed: list[tuple[float, float]] = []

    def add(self, start: float, end: float) -> None:
        if self._end < self._start:  # first window
            self._start, self._end = start, end
            return
        if start <= self._end:  # overlaps/abuts the open window: extend
            if end > self._end:
                self._end = end
            return
        self.closed.append((self._start, self._end))
        self._start, self._end = start, end

    def flush(self) -> list[tuple[float, float]]:
        if self._end >= self._start:
            self.closed.append((self._start, self._end))
            self._end = self._start - 1.0
        return self.closed


def _noop_advance(cycle: float) -> None:
    """Zero-cost :meth:`TelemetryBus.advance` for a bus without snapshots."""


def _noop_window(component: str, kind: str, start: float, end: float) -> None:
    """Zero-cost :meth:`TelemetryBus.window` for a bus without a timeline."""


class TelemetryBus:
    """Per-simulation hub: component registry, snapshots, timelines.

    One bus is created per :meth:`~repro.gpu.simulator.CycleSimulator.
    run` call; components register their stat groups at construction
    time and the event loop drives :meth:`advance`/:meth:`finalize`.
    A disabled bus (interval 0, no timeline) is inert: registration and
    window recording are no-ops, so the module-level :data:`NULL_BUS`
    can safely back components constructed outside a simulation.

    :meth:`advance` and :meth:`window` sit on the event loop's per-pop
    hot path, so when their feature is off they are swapped for
    module-level no-op functions at construction time — the disabled
    cost is one instance-attribute lookup and an empty call, with no
    boundary arithmetic or tracker lookups behind it.
    """

    def __init__(self, interval: int = 0, timeline: bool = False) -> None:
        if interval < 0:
            raise ValueError("telemetry interval must be >= 0")
        self.interval = int(interval)
        self.timeline = bool(timeline)
        self._groups: dict[str, StatGroup] = {}
        self._snapshots: list[IntervalSnapshot] = []
        self._trackers: dict[tuple[str, str], _WindowTracker] = {}
        self._next_boundary = float(interval) if interval else float("inf")
        self._last_boundary = 0.0
        if not self.interval:
            self.advance = _noop_advance
        if not self.timeline:
            self.window = _noop_window

    @property
    def enabled(self) -> bool:
        return self.interval > 0 or self.timeline

    # -- registration ---------------------------------------------------

    def register(self, component: str, group: StatGroup) -> StatGroup:
        """Attach a component's stat group under a hierarchical name.

        Returns the group (so registration can wrap construction).  On a
        disabled bus this is a no-op, which keeps the shared
        :data:`NULL_BUS` from accumulating state across instances.
        """
        if not self.enabled:
            return group
        if component in self._groups:
            raise ValueError(f"component {component!r} already registered")
        self._groups[component] = group
        return group

    def counters(self) -> dict[str, float]:
        """Cumulative counters over all registered components, flat."""
        out: dict[str, float] = {}
        for component, group in self._groups.items():
            for name, value in group.scalars().items():
                out[f"{component}.{name}"] = value
        return out

    # -- interval snapshots --------------------------------------------

    def advance(self, cycle: float) -> None:
        """Called by the event loop: snapshot any crossed boundaries.

        The simulator processes events in nondecreasing cycle order, so
        a snapshot taken when the first event at/after a boundary pops
        reflects all work completed before that boundary.
        """
        while cycle >= self._next_boundary:
            self._snapshot(self._next_boundary)
            self._next_boundary += self.interval

    def _snapshot(self, cycle: float) -> None:
        self._snapshots.append(
            IntervalSnapshot(
                index=len(self._snapshots),
                start=self._last_boundary,
                end=cycle,
                counters=self.counters(),
            )
        )
        self._last_boundary = cycle

    # -- timeline windows ----------------------------------------------

    def window(self, component: str, kind: str, start: float, end: float) -> None:
        """Record a contention window (coalesced per component+kind lane)."""
        if not self.timeline or end <= start:
            return
        key = (component, kind)
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = self._trackers[key] = _WindowTracker()
        tracker.add(start, end)

    # -- lifecycle ------------------------------------------------------

    def finalize(self, cycle: float) -> None:
        """Close the run at ``cycle``: trailing snapshot, flush windows."""
        if self.enabled and (
            not self._snapshots or self._snapshots[-1].end < cycle
        ):
            self._snapshot(cycle)

    def events(self) -> tuple[TimelineEvent, ...]:
        """All coalesced windows as time-ordered events."""
        events = [
            TimelineEvent(start=start, end=end, component=component, kind=kind)
            for (component, kind), tracker in self._trackers.items()
            for start, end in tracker.flush()
        ]
        return tuple(sorted(events))

    def record(self) -> TelemetryRecord | None:
        """The run's telemetry, or ``None`` for a disabled bus."""
        if not self.enabled:
            return None
        return TelemetryRecord(
            interval=self.interval,
            snapshots=tuple(self._snapshots),
            events=self.events(),
        )


#: Shared inert bus backing components constructed without telemetry.
NULL_BUS = TelemetryBus()


# ----------------------------------------------------------------------
# .zperf export (JSON lines)
# ----------------------------------------------------------------------

ZPERF_VERSION = 1


def export_zperf(path: str | Path, stats, meta: dict | None = None) -> Path:
    """Write a run's telemetry as a ``.zperf`` JSON-lines file.

    Line 1 is a header (format version, snapshot interval, run
    provenance); then one ``interval`` row per snapshot carrying the
    per-interval counter *deltas*; one ``event`` row per timeline
    window; and a trailing ``summary`` row with the cumulative counters
    and the run's derived Table I + extended metrics.

    Args:
        path: output file path.
        stats: a :class:`~repro.gpu.stats.SimulationStats` whose
            ``telemetry`` field is populated (i.e. the producing
            ``GPUConfig`` enabled telemetry).
        meta: extra provenance merged into the header (scene, GPU, ...).

    Raises:
        ValueError: if ``stats`` carries no telemetry record.
    """
    record: TelemetryRecord | None = getattr(stats, "telemetry", None)
    if record is None:
        raise ValueError(
            "simulation ran without telemetry; enable it via "
            "GPUConfig.telemetry_interval / GPUConfig.timeline_trace"
        )
    path = Path(path)
    header = {
        "type": "header",
        "version": ZPERF_VERSION,
        "interval": record.interval,
        "cycles": stats.cycles,
        "config": stats.config_name,
        "backend": stats.backend,
        "intervals": len(record.snapshots),
        "events": len(record.events),
    }
    if meta:
        header.update(meta)
    with path.open("w") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for snapshot, delta in zip(record.snapshots, record.deltas()):
            row = {
                "type": "interval",
                "i": snapshot.index,
                "start": snapshot.start,
                "end": snapshot.end,
                "d": delta,
            }
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        for event in record.events:
            row = {
                "type": "event",
                "component": event.component,
                "kind": event.kind,
                "start": event.start,
                "end": event.end,
            }
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        summary = {
            "type": "summary",
            "counters": record.final_counters(),
            "metrics": {**stats.metrics(), **stats.extended_metrics()},
        }
        handle.write(json.dumps(summary, sort_keys=True) + "\n")
    return path


def load_zperf(path: str | Path) -> dict[str, Any]:
    """Parse a ``.zperf`` file back into its sections.

    Returns ``{"header": dict, "intervals": [rows], "events": [rows],
    "summary": dict}``.

    Raises:
        ValueError: on malformed JSON lines, a missing/foreign header,
            or an unsupported format version.
    """
    path = Path(path)
    header: dict | None = None
    intervals: list[dict] = []
    events: list[dict] = []
    summary: dict = {}
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: malformed .zperf line: {error}"
                ) from None
            kind = row.get("type")
            if lineno == 1:
                if kind != "header":
                    raise ValueError(f"{path}: not a .zperf file (no header)")
                if row.get("version") != ZPERF_VERSION:
                    raise ValueError(
                        f"{path}: unsupported .zperf version "
                        f"{row.get('version')!r} (expected {ZPERF_VERSION})"
                    )
                header = row
            elif kind == "interval":
                intervals.append(row)
            elif kind == "event":
                events.append(row)
            elif kind == "summary":
                summary = row
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown .zperf row type {kind!r}"
                )
    if header is None:
        raise ValueError(f"{path}: empty .zperf file")
    return {
        "header": header,
        "intervals": intervals,
        "events": events,
        "summary": summary,
    }


# ----------------------------------------------------------------------
# timeline window slicing / downsampling (pagination support)
# ----------------------------------------------------------------------


def _window_fields(event) -> tuple[str, str, float, float]:
    if isinstance(event, dict):
        return event["component"], event["kind"], event["start"], event["end"]
    return event.component, event.kind, event.start, event.end


def slice_events(
    events, start: float = 0.0, end: float | None = None
) -> list[dict]:
    """Clip timeline events to the ``[start, end)`` cycle range.

    Windows straddling a boundary are truncated at it, not dropped —
    a paginated client stitching adjacent ranges back together sees
    exactly the original coverage, with no double counting and no gaps.
    Windows that end up empty after clipping are omitted.  Accepts
    :class:`TimelineEvent` instances or ``.zperf`` event dicts; always
    returns plain dicts sorted by ``(start, end, component, kind)``.

    Raises:
        ValueError: if ``start`` is negative or ``end <= start``.
    """
    if start < 0:
        raise ValueError("slice start must be >= 0")
    if end is not None and end <= start:
        raise ValueError("slice end must be greater than start")
    out: list[dict] = []
    for event in events:
        component, kind, lo, hi = _window_fields(event)
        lo = max(lo, start)
        if end is not None:
            hi = min(hi, end)
        if hi <= lo:
            continue
        out.append(
            {"component": component, "kind": kind, "start": lo, "end": hi}
        )
    out.sort(key=lambda e: (e["start"], e["end"], e["component"], e["kind"]))
    return out


def downsample_events(events, max_per_lane: int) -> list[dict]:
    """Cap each (component, kind) lane at ``max_per_lane`` windows.

    A lane over the cap is reduced by repeatedly bridging the *smallest*
    idle gap between consecutive windows (ties break toward the earlier
    gap), so the windows that disappear are the distinctions a client
    could least resolve anyway.  Merging only ever grows coverage — the
    lane's envelope and its busiest stretches survive — and the
    procedure is deterministic, so paginated requests downsample
    identically.  Returns plain dicts sorted like :func:`slice_events`.

    Raises:
        ValueError: if ``max_per_lane`` is not positive.
    """
    if max_per_lane <= 0:
        raise ValueError("max_per_lane must be positive")
    lanes: dict[tuple[str, str], list[tuple[float, float]]] = {}
    for event in events:
        component, kind, lo, hi = _window_fields(event)
        lanes.setdefault((component, kind), []).append((lo, hi))
    out: list[dict] = []
    for (component, kind), windows in lanes.items():
        windows.sort()
        while len(windows) > max_per_lane:
            gaps = [
                windows[i + 1][0] - windows[i][1]
                for i in range(len(windows) - 1)
            ]
            i = gaps.index(min(gaps))
            windows[i : i + 2] = [(windows[i][0], windows[i + 1][1])]
        out.extend(
            {"component": component, "kind": kind, "start": lo, "end": hi}
            for lo, hi in windows
        )
    out.sort(key=lambda e: (e["start"], e["end"], e["component"], e["kind"]))
    return out
