"""DRAM channel model with the paper's two bandwidth metrics.

Table I distinguishes:

* **DRAM efficiency** — bandwidth utilization *while requests are pending*
  (data cycles / cycles with at least one request outstanding);
* **Bandwidth utilization** — data cycles / all cycles.

Each memory partition owns one channel.  A channel is a serial resource:
requests occupy it for ``service_cycles`` each, FCFS, after a fixed access
latency.  Queueing time is implicit in the ``busy_until`` timeline.
"""

from __future__ import annotations

from .telemetry import Counter, CycleCounter, NULL_BUS, StatGroup, TelemetryBus

__all__ = ["DRAMChannel", "DRAMStats"]


class DRAMStats(StatGroup):
    """Aggregated counters over one or more channels."""

    requests = Counter("line fetches serviced")
    data_cycles = CycleCounter("cycles the data bus actively transferred")
    pending_cycles = CycleCounter("cycles with at least one request outstanding")

    def efficiency(self) -> float:
        """Data cycles over cycles with work outstanding (<= 1)."""
        if self.pending_cycles <= 0.0:
            return 0.0
        return min(1.0, self.data_cycles / self.pending_cycles)

    def bandwidth_utilization(self, total_cycles: float, channels: int) -> float:
        """Data cycles over the whole run, averaged across ``channels``."""
        if total_cycles <= 0.0 or channels <= 0:
            return 0.0
        return min(1.0, self.data_cycles / (total_cycles * channels))


class DRAMChannel:
    """One DRAM channel behind an L2 slice."""

    def __init__(
        self,
        access_latency: int,
        service_cycles: float,
        bus: TelemetryBus = NULL_BUS,
        component: str = "dram",
    ) -> None:
        if service_cycles <= 0:
            raise ValueError("service_cycles must be positive")
        self.access_latency = access_latency
        self.service_cycles = service_cycles
        self._busy_until = 0.0
        # Union-of-intervals accounting for "cycles with pending requests".
        self._pending_start = 0.0
        self._pending_end = -1.0  # empty interval sentinel
        self._bus = bus
        self.component = component
        self.stats = bus.register(component, DRAMStats())

    def request(self, cycle: float) -> float:
        """Issue a line fetch arriving at ``cycle``; returns completion cycle.

        The request first pays the fixed access latency, then waits for the
        channel data bus (FCFS behind earlier requests), then transfers for
        ``service_cycles``.
        """
        arrival = cycle + self.access_latency
        start = max(arrival, self._busy_until)
        if start > arrival:
            self._bus.window(self.component, "queue_contention", arrival, start)
        completion = start + self.service_cycles
        self._busy_until = completion
        self.stats.requests += 1
        self.stats.data_cycles += self.service_cycles

        # Extend or start the pending-interval union [cycle, completion].
        if cycle > self._pending_end:
            if self._pending_end >= self._pending_start:
                self.stats.pending_cycles += self._pending_end - self._pending_start
            self._pending_start = cycle
            self._pending_end = completion
        else:
            self._pending_end = max(self._pending_end, completion)
        return completion

    def add_external_delay(self, cycle: float, delay: float) -> None:
        """Push the data-bus busy horizon for traffic this channel never saw.

        The sharded simulator backend gives each shard a private channel
        partition, losing cross-shard queueing.  At every epoch boundary
        it reinjects a bounded penalty derived from the other shards'
        request counts by occupying the bus for ``delay`` cycles starting
        no earlier than ``cycle`` — local requests then queue behind it,
        exactly as they would behind foreign requests under shared-channel
        FCFS.  Only the busy horizon moves: the foreign traffic's data and
        pending cycles are accounted on its own shard's channels.
        """
        if delay <= 0:
            return
        self._busy_until = max(self._busy_until, cycle) + delay

    def finalize(self) -> None:
        """Close the open pending interval; call once at end of simulation."""
        if self._pending_end >= self._pending_start:
            self.stats.pending_cycles += self._pending_end - self._pending_start
            self._pending_start = 0.0
            self._pending_end = -1.0

    def busy_until(self) -> float:
        """Cycle at which the channel's data bus goes idle."""
        return self._busy_until
