"""Set-associative and fully-associative LRU caches, plus an MSHR table.

These are *timing* caches: they track tag state and hit/miss statistics but
carry no data.  Addresses are pre-aligned to line granularity by the caller
(:func:`line_of`).
"""

from __future__ import annotations

from collections import OrderedDict

from .config import CacheConfig
from .telemetry import Counter, RatioGauge, StatGroup

__all__ = ["CacheStats", "Cache", "MSHRTable", "line_of"]


def line_of(addr: int, line_bytes: int) -> int:
    """Line-aligned address for ``addr``."""
    return addr - (addr % line_bytes)


class CacheStats(StatGroup):
    """Hit/miss counters for one cache instance."""

    accesses = Counter("tag lookups (hit or miss)")
    misses = Counter("lookups that filled a new line")
    miss_rate = RatioGauge(
        "misses", "accesses", "miss rate in [0, 1]; 0 for an untouched cache"
    )

    @property
    def hits(self) -> int:
        return self.accesses - self.misses


class Cache:
    """An LRU cache of tags.

    Sets are ``OrderedDict`` instances used as LRU lists (most-recent at the
    end).  ``associativity = 0`` in the config means fully associative
    (a single set spanning every line), which is how the paper's L1D is
    specified.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = (
            config.num_lines if config.associativity == 0 else config.associativity
        )
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_bytes) % self.num_sets

    def access(self, line_addr: int) -> bool:
        """Look up a line, filling it on miss.  Returns True on hit."""
        lru = self._sets[self._set_index(line_addr)]
        self.stats.accesses += 1
        if line_addr in lru:
            lru.move_to_end(line_addr)
            return True
        self.stats.misses += 1
        lru[line_addr] = None
        if len(lru) > self.ways:
            lru.popitem(last=False)  # evict LRU
        return False

    def probe(self, line_addr: int) -> bool:
        """Check residency without updating LRU order or statistics."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        """Invalidate all lines (statistics are kept)."""
        for s in self._sets:
            s.clear()


class MSHRTable:
    """Miss-status holding registers: merge and bound outstanding misses.

    Behavioural model for an event-driven simulator: each outstanding miss
    is an entry ``line -> ready_cycle``.  A request to a line already
    outstanding *merges* (returns the pending completion instead of issuing
    a new fetch).  When all entries are busy, the requester stalls until the
    earliest entry retires.
    """

    #: Upper bound on the stall charged for a full table.  In hardware a
    #: full MSHR throttles the *producer* (the warp stops issuing), which
    #: spreads the pressure; charging the full queueing delay here instead
    #: creates a positive feedback loop (stall -> longer residence -> fuller
    #: table) that snowballs, so the charge is capped.
    MAX_STALL = 256

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR table needs at least one entry")
        self.num_entries = num_entries
        self._entries: dict[int, int] = {}
        self.merges = 0
        self.stall_cycles = 0

    def _retire_before(self, cycle: int) -> None:
        done = [line for line, ready in self._entries.items() if ready <= cycle]
        for line in done:
            del self._entries[line]

    def lookup(self, line_addr: int, cycle: int) -> int | None:
        """Pending completion cycle if the line's fetch is in flight."""
        self._retire_before(cycle)
        ready = self._entries.get(line_addr)
        if ready is not None:
            self.merges += 1
        return ready

    def allocate(self, line_addr: int, cycle: int, ready_cycle: int) -> int:
        """Reserve an entry for a new miss.

        Returns the cycle the allocation actually happened (later than
        ``cycle`` if the requester had to stall for a free entry); the
        caller should shift its completion accordingly.
        """
        self._retire_before(cycle)
        alloc_cycle = cycle
        if len(self._entries) >= self.num_entries:
            earliest = min(self._entries.values())
            stall = min(max(0, earliest - cycle), self.MAX_STALL)
            self.stall_cycles += stall
            alloc_cycle = cycle + stall
            self._retire_before(alloc_cycle)
            # If retiring by timestamp freed nothing (all entries complete
            # in the future), drop the earliest to keep the model moving.
            if len(self._entries) >= self.num_entries:
                victim = min(self._entries, key=self._entries.get)  # type: ignore[arg-type]
                del self._entries[victim]
        self._entries[line_addr] = ready_cycle + (alloc_cycle - cycle)
        return alloc_cycle

    def outstanding(self) -> int:
        return len(self._entries)
