"""Bounded job queue with single-flight coalescing and backpressure.

The service front-end is asyncio; the prediction work is synchronous
CPU-bound Python.  The queue is the boundary between the two: HTTP
handlers :meth:`~JobQueue.submit` jobs (from the event loop), worker
threads :meth:`~JobQueue.next` them, and everyone else observes.

Three properties the service relies on:

* **bounded** — at most ``capacity`` jobs queued + running; a submit
  beyond that raises :class:`QueueFullError`, which the front-end maps
  to ``429 Too Many Requests`` with a ``Retry-After`` hint.  Load the
  service cannot absorb is refused early instead of growing an
  unbounded backlog;
* **single-flight** — submits are keyed by the request's result
  fingerprint; a submit whose key is already queued or running returns
  the *existing* :class:`Job` (``created=False``), so N concurrent
  identical requests cost one stage execution and N waiters;
* **drainable** — :meth:`~JobQueue.close` stops intake,
  :meth:`~JobQueue.drain` blocks until in-flight jobs finish — the
  graceful-shutdown path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from ..core.stages.singleflight import SingleFlight

__all__ = [
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


class QueueFullError(RuntimeError):
    """The queue is at capacity; the caller should retry later."""

    def __init__(self, capacity: int, retry_after: float = 1.0) -> None:
        super().__init__(
            f"job queue at capacity ({capacity} queued + running); "
            f"retry in {retry_after:g}s"
        )
        self.capacity = capacity
        self.retry_after = retry_after


class QueueClosedError(RuntimeError):
    """The queue no longer accepts submissions (service shutting down)."""


class Job:
    """One prediction job's lifecycle: queued -> running -> done/failed."""

    __slots__ = (
        "id", "key", "spec", "status", "result", "error",
        "submitted_at", "started_at", "finished_at", "_done",
    )

    def __init__(self, job_id: str, key: str, spec: Any) -> None:
        self.id = job_id
        self.key = key
        self.spec = spec
        self.status = JOB_QUEUED
        self.result: dict | None = None
        self.error: str | None = None
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done = threading.Event()

    @property
    def finished(self) -> bool:
        return self.status in (JOB_DONE, JOB_FAILED)

    def queue_seconds(self) -> float:
        """Time spent waiting for a worker (up to now if still queued)."""
        started = self.started_at
        return (started if started is not None else time.monotonic()) - self.submitted_at

    def total_seconds(self) -> float | None:
        """Submit-to-finish wall clock, or ``None`` while unfinished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        return self._done.wait(timeout)

    def describe(self) -> dict:
        """JSON-able status (the ``GET /jobs/<id>`` body, sans result)."""
        return {
            "job": self.id,
            "status": self.status,
            "queue_seconds": round(self.queue_seconds(), 6),
            "total_seconds": (
                round(self.total_seconds(), 6) if self.finished_at else None
            ),
            "error": self.error,
        }

    # -- worker-side transitions (called with the queue lock held) ------

    def _start(self) -> None:
        self.status = JOB_RUNNING
        self.started_at = time.monotonic()

    def _finish(self, result: dict | None, error: BaseException | None) -> None:
        self.finished_at = time.monotonic()
        if error is None:
            self.status = JOB_DONE
            self.result = result
        else:
            self.status = JOB_FAILED
            self.error = f"{type(error).__name__}: {error}"
        self._done.set()


class JobQueue:
    """Thread-safe bounded queue of single-flight prediction jobs."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._cond = threading.Condition()
        self._pending: deque[Job] = deque()
        self._running_jobs: set[Job] = set()
        self._flights = SingleFlight()
        self._closed = False
        self._counter = 0

    # -- submission (front-end side) ------------------------------------

    def submit(self, key: str, spec: Any) -> tuple[Job, bool]:
        """Enqueue a job for ``key``, or coalesce onto the in-flight one.

        Returns ``(job, created)``.  ``created=False`` means an
        identical request is already queued or running and the caller
        should wait on that job instead.

        Raises:
            QueueClosedError: after :meth:`close`.
            QueueFullError: at capacity (counts queued + running).
        """
        with self._cond:
            if self._closed:
                raise QueueClosedError("service is shutting down")

            def make() -> Job:
                if self.depth >= self.capacity:
                    raise QueueFullError(
                        self.capacity, retry_after=self._retry_after()
                    )
                self._counter += 1
                return Job(f"j{self._counter:06d}", key, spec)

            job, created = self._flights.join(key, make)
            if created:
                self._pending.append(job)
                self._cond.notify()
            return job, created

    def _retry_after(self) -> float:
        """Back-of-envelope wait hint: one second per queued job, >= 1."""
        return float(max(1, len(self._pending)))

    # -- consumption (worker side) --------------------------------------

    def next(self, timeout: float | None = None) -> Job | None:
        """The next queued job (marked running), or ``None``.

        ``None`` means the queue closed and emptied (worker should
        exit), or ``timeout`` elapsed with nothing to do.
        """
        with self._cond:
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            while not self._pending:
                if self._closed:
                    return None
                remaining = (
                    deadline - time.monotonic() if deadline is not None else None
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            job = self._pending.popleft()
            self._running_jobs.add(job)
            job._start()
            return job

    def complete(
        self, job: Job, result: dict | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Mark ``job`` finished and release its single-flight key.

        Idempotent against :meth:`abandon`: a worker thread that was
        stuck past the drain deadline (its job already recorded as
        failed-degraded) completes here as a no-op instead of
        double-finishing.
        """
        with self._cond:
            self._running_jobs.discard(job)
            self._flights.finish(job.key)
            if not job.finished:
                job._finish(result, error)
            self._cond.notify_all()

    # -- observation ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs queued + running (the capacity denominator)."""
        return len(self._pending) + len(self._running_jobs)

    @property
    def queued(self) -> int:
        return len(self._pending)

    @property
    def running(self) -> int:
        return len(self._running_jobs)

    @property
    def closed(self) -> bool:
        return self._closed

    def inflight(self, key: str) -> Job | None:
        """The queued/running job for ``key``, if any."""
        return self._flights.get(key)

    # -- shutdown -------------------------------------------------------

    def close(self) -> None:
        """Stop accepting submissions; wake idle workers so they exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted job finishes; ``False`` on timeout.

        Call :meth:`close` first, or new submissions can extend the wait
        indefinitely.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._cond:
            while self._pending or self._running_jobs:
                remaining = (
                    deadline - time.monotonic() if deadline is not None else None
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def abandon(self, reason: str) -> int:
        """Force-finish every unfinished job as failed; returns how many.

        The graceful-shutdown watchdog calls this after :meth:`drain`
        times out: a job hung inside a simulation (or a wedged fleet
        gather) is recorded as failed — its waiters wake with an error
        instead of blocking forever — and the process can exit cleanly.
        The eventual ``complete()`` from the stuck worker thread, if it
        ever lands, is a no-op.
        """
        error = RuntimeError(reason)
        with self._cond:
            abandoned = 0
            for job in list(self._pending) + list(self._running_jobs):
                if not job.finished:
                    job._finish(None, error)
                    abandoned += 1
                self._flights.finish(job.key)
            self._pending.clear()
            self._running_jobs.clear()
            self._cond.notify_all()
            return abandoned
