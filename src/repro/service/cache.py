"""Fingerprint-keyed result cache for served predictions.

A thin, accounted layer over the content-addressed
:class:`~repro.core.stages.store.ArtifactStore`: keys are request
fingerprints (:func:`~repro.core.stages.requests.spec_fingerprint`
under the harness ``CACHE_VERSION``), values are the final JSON-able
result payloads.  Because the store persists to disk with atomic writes
and corrupt-entry recovery, repeat requests are served in milliseconds
— across restarts, and shared with whatever artifacts the CLI and
sweeps have already produced under the same cache root.

Hit/miss accounting lands on the service's
:class:`~repro.gpu.telemetry.ServiceStats`, so the ``/metrics``
endpoint exposes cache effectiveness without a separate code path.
"""

from __future__ import annotations

from ..core.stages.store import ArtifactStore

__all__ = ["ResultCache"]

#: Namespace prefix keeping result payloads distinct from stage
#: artifacts that might share a fingerprint input space.
_KEY_PREFIX = "served"


class ResultCache:
    """Result payloads by request fingerprint, with hit/miss counters."""

    def __init__(self, store: ArtifactStore, stats=None) -> None:
        self.store = store
        self.stats = stats

    @staticmethod
    def _key(fingerprint: str) -> str:
        return f"{_KEY_PREFIX}_{fingerprint}"

    def get(self, fingerprint: str) -> dict | None:
        """The cached payload, or ``None`` (accounted as hit/miss)."""
        payload = self.store.get(self._key(fingerprint))
        if self.stats is not None:
            if payload is None:
                self.stats.cache_misses += 1
            else:
                self.stats.cache_hits += 1
        return payload

    def put(self, fingerprint: str, payload: dict) -> None:
        """Store a payload (skips degraded results — execution noise
        from a faulty run must never be replayed to later callers)."""
        if payload.get("degraded"):
            return
        self.store.put(self._key(fingerprint), payload)

    def contains(self, fingerprint: str) -> bool:
        return self.store.contains(self._key(fingerprint))
