"""Request/response schemas of the prediction service.

One place defines what a ``POST /predict`` body means, so the server,
the :class:`~repro.cli.client.ZatelClient` and the tests cannot drift
apart.  The body is a flat JSON object mirroring the ``predict`` CLI
arguments::

    {
      "scene": "SPRNG",          // library name, or a recipe object:
                                 //   {"recipe": "saturation",
                                 //    "knobs": {"level": 0.4}, "seed": 1}
      "size": 64,                // image-plane side length (<= 512)
      "spp": 1, "seed": 0,
      "backend": "packet",       // or "scalar"
      "gpu": "mobile",           // preset name: mobile | rtx2060
      "division": "fine", "distribution": "uniform",
      "fraction": null,          // pin the traced fraction, (0, 1]
      "adaptive": false,
      "wait": true               // false: 202 + job id, poll /jobs/<id>
    }

``POST /campaigns`` takes a whole samplesheet document (the same
``{"campaign": {...}, "points": [...]}`` shape the TOML/JSON files
carry) plus the transport-level ``wait`` flag; everything else is
validated by :func:`~repro.core.stages.campaign.parse_samplesheet`.

Validation is strict — unknown keys are rejected, so a typo'd field
name fails loudly with a 400 instead of silently running defaults.  All
semantic checks live on :class:`~repro.core.stages.requests.PredictSpec`
itself; this module only adapts JSON to it.
"""

from __future__ import annotations

from typing import Any

from ..core.stages.campaign import Campaign, parse_samplesheet
from ..core.stages.requests import PredictSpec
from ..scene.spec import SceneSpec

__all__ = [
    "parse_campaign_payload",
    "parse_predict_payload",
    "SPEC_FIELDS",
    "READY_PREFIX",
    "format_ready_line",
    "parse_ready_line",
]

#: First token of the machine-readable startup line every server mode
#: prints once its socket is bound.  CI smokes launch with ``--port 0``
#: and read the kernel-chosen port from this line instead of racing to
#: pre-pick a free one; the format is part of the service contract
#: (tests pin it), so change it like any other schema.
READY_PREFIX = "ZATEL_SERVE_READY"


def format_ready_line(host: str, port: int) -> str:
    """The startup line: ``ZATEL_SERVE_READY host=127.0.0.1 port=8700``."""
    return f"{READY_PREFIX} host={host} port={port}"


def parse_ready_line(line: str) -> tuple[str, int] | None:
    """Parse a ready line back into ``(host, port)``; None if not one.

    Tolerates surrounding whitespace and extra trailing ``key=value``
    fields (forward compatibility), but rejects lines missing either
    required field or carrying a non-integer port.
    """
    parts = line.strip().split()
    if not parts or parts[0] != READY_PREFIX:
        return None
    fields = dict(
        part.split("=", 1) for part in parts[1:] if "=" in part
    )
    host, port = fields.get("host"), fields.get("port")
    if not host or port is None:
        return None
    try:
        return host, int(port)
    except ValueError:
        return None

#: Body keys forwarded to :class:`PredictSpec`, with their JSON types.
#: ``scene`` also accepts an object form (recipe/sequence-frame specs).
SPEC_FIELDS: dict[str, type | tuple[type, ...]] = {
    "scene": (str, dict),
    "size": int,
    "spp": int,
    "seed": int,
    "backend": str,
    "gpu": str,
    "division": str,
    "distribution": str,
    "fraction": (int, float),
    "adaptive": bool,
    "sampler": str,
    "replicates": int,
}


def parse_predict_payload(payload: Any) -> tuple[PredictSpec, bool]:
    """Validate a ``POST /predict`` JSON body.

    Returns ``(spec, wait)``.

    Raises:
        ValueError: on any malformed body — not an object, unknown
            keys, wrong field types, or a semantically invalid spec
            (unknown scene, out-of-range size, ...).  The message is
            safe to return verbatim in a 400 response.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(SPEC_FIELDS) - {"wait"})
    if unknown:
        raise ValueError(
            f"unknown field(s) {', '.join(map(repr, unknown))}; known: "
            f"{', '.join(sorted(SPEC_FIELDS))}, wait"
        )
    if "scene" not in payload:
        raise ValueError("missing required field 'scene'")

    kwargs: dict[str, Any] = {}
    for name, expected in SPEC_FIELDS.items():
        if name not in payload:
            continue
        value = payload[name]
        if name == "fraction" and value is None:
            continue
        # bool is an int subclass; reject True where an int is expected.
        if isinstance(value, bool) and expected is not bool:
            raise ValueError(f"field {name!r} must not be a boolean")
        if not isinstance(value, expected):
            wanted = (
                expected.__name__
                if isinstance(expected, type)
                else " or ".join(t.__name__ for t in expected)
            )
            raise ValueError(
                f"field {name!r} must be {wanted}, "
                f"got {type(value).__name__}"
            )
        kwargs[name] = float(value) if name == "fraction" else value

    if isinstance(kwargs["scene"], dict):
        # Object form: {"recipe"/"library": ..., "knobs": ..., "seed": ...}
        # (SceneSpec.from_value is as strict as this parser).
        kwargs["scene"] = SceneSpec.from_value(kwargs["scene"])
    wait = payload.get("wait", True)
    if not isinstance(wait, bool):
        raise ValueError(f"field 'wait' must be a boolean, got {wait!r}")
    return PredictSpec(**kwargs), wait


def parse_campaign_payload(payload: Any) -> tuple[Campaign, bool]:
    """Validate a ``POST /campaigns`` JSON body.

    Returns ``(campaign, wait)``.  The body is a samplesheet document —
    ``{"campaign": {...defaults...}, "points": [...]}`` — with one extra
    transport-level key, ``wait`` (default true), stripped before the
    samplesheet parser sees it.

    Raises:
        ValueError: on any malformed body; the message names the
            offending row and is safe to return verbatim in a 400.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    wait = payload.get("wait", True)
    if not isinstance(wait, bool):
        raise ValueError(f"field 'wait' must be a boolean, got {wait!r}")
    document = {key: value for key, value in payload.items() if key != "wait"}
    return parse_samplesheet(document), wait
