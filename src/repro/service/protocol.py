"""Request/response schemas of the prediction service.

One place defines what a ``POST /predict`` body means, so the server,
the :class:`~repro.cli.client.ZatelClient` and the tests cannot drift
apart.  The body is a flat JSON object mirroring the ``predict`` CLI
arguments::

    {
      "scene": "SPRNG",          // required; library scene name
      "size": 64,                // image-plane side length (<= 512)
      "spp": 1, "seed": 0,
      "backend": "packet",       // or "scalar"
      "gpu": "mobile",           // preset name: mobile | rtx2060
      "division": "fine", "distribution": "uniform",
      "fraction": null,          // pin the traced fraction, (0, 1]
      "adaptive": false,
      "wait": true               // false: 202 + job id, poll /jobs/<id>
    }

Validation is strict — unknown keys are rejected, so a typo'd field
name fails loudly with a 400 instead of silently running defaults.  All
semantic checks live on :class:`~repro.core.stages.requests.PredictSpec`
itself; this module only adapts JSON to it.
"""

from __future__ import annotations

from typing import Any

from ..core.stages.requests import PredictSpec

__all__ = ["parse_predict_payload", "SPEC_FIELDS"]

#: Body keys forwarded to :class:`PredictSpec`, with their JSON types.
SPEC_FIELDS: dict[str, type | tuple[type, ...]] = {
    "scene": str,
    "size": int,
    "spp": int,
    "seed": int,
    "backend": str,
    "gpu": str,
    "division": str,
    "distribution": str,
    "fraction": (int, float),
    "adaptive": bool,
    "sampler": str,
    "replicates": int,
}


def parse_predict_payload(payload: Any) -> tuple[PredictSpec, bool]:
    """Validate a ``POST /predict`` JSON body.

    Returns ``(spec, wait)``.

    Raises:
        ValueError: on any malformed body — not an object, unknown
            keys, wrong field types, or a semantically invalid spec
            (unknown scene, out-of-range size, ...).  The message is
            safe to return verbatim in a 400 response.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(SPEC_FIELDS) - {"wait"})
    if unknown:
        raise ValueError(
            f"unknown field(s) {', '.join(map(repr, unknown))}; known: "
            f"{', '.join(sorted(SPEC_FIELDS))}, wait"
        )
    if "scene" not in payload:
        raise ValueError("missing required field 'scene'")

    kwargs: dict[str, Any] = {}
    for name, expected in SPEC_FIELDS.items():
        if name not in payload:
            continue
        value = payload[name]
        if name == "fraction" and value is None:
            continue
        # bool is an int subclass; reject True where an int is expected.
        if isinstance(value, bool) and expected is not bool:
            raise ValueError(f"field {name!r} must not be a boolean")
        if not isinstance(value, expected):
            wanted = (
                expected.__name__
                if isinstance(expected, type)
                else " or ".join(t.__name__ for t in expected)
            )
            raise ValueError(
                f"field {name!r} must be {wanted}, "
                f"got {type(value).__name__}"
            )
        kwargs[name] = float(value) if name == "fraction" else value

    wait = payload.get("wait", True)
    if not isinstance(wait, bool):
        raise ValueError(f"field 'wait' must be a boolean, got {wait!r}")
    return PredictSpec(**kwargs), wait
